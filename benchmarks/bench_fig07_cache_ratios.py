"""Figure 7: G1/G0 cache access-time ratios over a 64-bit message.

Paper: ratios above 1 decode '1' (G1 sets missed), below 1 decode '0';
values span roughly 0.5-2. Reproduced shape: the same bimodal ratio
series around 1.0.
"""

from conftest import record

from repro.analysis.ascii_plot import render_series
from repro.analysis.figures import fig7_cache_ratios


def test_fig7_cache_ratios(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_cache_ratios(
            seed=1, n_bits=32, bandwidth_bps=100.0, n_sets=512
        ),
        rounds=1,
        iterations=1,
    )
    assert result.ber <= 1 / 32  # at most the cold-start bit
    assert result.mean_ratio_ones > 1.2
    assert result.mean_ratio_zeros < 0.9
    record(
        "Figure 7: cache channel G1/G0 access-time ratios",
        f"bits: {result.ratios.size}, BER: {result.ber:.3f}",
        f"mean ratio on '1' bits: {result.mean_ratio_ones:.2f} (paper: >1)",
        f"mean ratio on '0' bits: {result.mean_ratio_zeros:.2f} (paper: <1)",
        render_series(result.ratios, title="per-bit G1/G0 ratio"),
    )
