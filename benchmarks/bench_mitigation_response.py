"""Extension: the detect-then-respond loop (paper Sections I, VII).

The paper positions mitigation (bandwidth reduction, partitioning,
fuzzing) as the step after detection. This bench quantifies each
response against its channel: bit error rates before vs after, and
CC-Hunter's verdict flipping to clear.
"""

from conftest import record

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.channels.membus import MemoryBusCovertChannel
from repro.core.detector import AuditUnit, CCHunter
from repro.mitigation import (
    apply_bus_lock_throttle,
    apply_clock_fuzzing,
    partition_cache_ways,
)
from repro.sim.machine import Machine
from repro.util.bitstream import Message

# 64 bits at 200 bps spans four OS quanta (recurrence needs several).
MSG = Message.random(64, 5)


def bus_run(mitigation=None, seed=3):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    if mitigation == "throttle":
        apply_bus_lock_throttle(machine, min_period=100_000)
    elif mitigation == "fuzz":
        apply_clock_fuzzing(machine, fuzz_cycles=3000)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=MSG, bandwidth_bps=200.0)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)
    machine.run_quanta(channel.quanta_needed())
    return channel.bit_error_rate(), hunter.report().verdicts[0].detected


def cache_run(mitigation=None, seed=3):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.CACHE)
    channel = CacheCovertChannel(
        machine, ChannelConfig(message=MSG, bandwidth_bps=200.0),
        n_sets_total=128,
    )
    channel.deploy()
    if mitigation == "partition":
        partition_cache_ways(machine, suspect_contexts=(0, 2))
    machine.run_quanta(channel.quanta_needed())
    return channel.bit_error_rate(), hunter.report().verdicts[0].detected


def test_mitigation_response(benchmark):
    def sweep():
        return {
            "bus baseline": bus_run(),
            "bus + lock throttle": bus_run("throttle"),
            "bus + clock fuzzing": bus_run("fuzz"),
            "cache baseline": cache_run(),
            "cache + way partition": cache_run("partition"),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{name:<22} BER {ber:.2f}, CC-Hunter "
        f"{'DETECTS' if detected else 'clear'}"
        for name, (ber, detected) in results.items()
    ]
    assert results["bus baseline"] == (0.0, True)
    assert results["cache baseline"][1] is True
    assert results["bus + lock throttle"][0] > 0.2
    assert results["bus + clock fuzzing"][0] > 0.1
    assert results["cache + way partition"][0] > 0.2
    assert not results["cache + way partition"][1]
    record(
        "Extension: detect-then-respond (mitigations vs channels)", *lines,
        "each mitigation destroys its channel's decode; partitioning also "
        "silences the conflict train entirely",
    )
