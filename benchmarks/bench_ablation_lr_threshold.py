"""Ablation: the likelihood-ratio detection threshold (paper: 0.5).

The paper picks 0.5 as a conservative threshold between real channels
(LR >= 0.9) and benign programs (LR < 0.5). This ablation sweeps the
threshold and shows the operating window: everything in [0.2 .. 0.9]
separates the bus channel from the mailserver pair, so 0.5 sits in the
middle of a wide margin.
"""

from conftest import record

from repro.analysis.figures import aggregate_histogram, run_channel_session
from repro.core.burst import analyze_histogram
from repro.core.detector import AuditUnit, CCHunter
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.workloads.base import workload_process
from repro.workloads.filebench import mailserver


def measure_lrs():
    run = run_channel_session(
        "membus", Message.random(16, 1), bandwidth_bps=10.0, seed=1
    )
    covert = analyze_histogram(
        aggregate_histogram(run.hunter, AuditUnit.MEMORY_BUS)
    )

    machine = Machine(seed=9)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    machine.spawn(workload_process(mailserver, machine, 8, seed=1), ctx=0)
    machine.spawn(
        workload_process(mailserver, machine, 8, seed=2, instance=1), ctx=1
    )
    machine.run_quanta(8)
    benign = analyze_histogram(
        aggregate_histogram(hunter, AuditUnit.MEMORY_BUS)
    )
    return covert, benign


def test_ablation_lr_threshold(benchmark):
    covert, benign = benchmark.pedantic(measure_lrs, rounds=1, iterations=1)
    assert covert.likelihood_ratio > 0.9
    assert 0.0 < benign.likelihood_ratio < 0.5
    lines = [
        f"memory bus channel LR: {covert.likelihood_ratio:.3f}",
        f"mailserver pair LR:    {benign.likelihood_ratio:.3f}",
        "threshold sweep:",
    ]
    for threshold in (0.2, 0.35, 0.5, 0.7, 0.9):
        channel_flag = covert.likelihood_ratio >= threshold
        benign_flag = benign.likelihood_ratio >= threshold
        verdict = (
            "separates" if channel_flag and not benign_flag else "FAILS"
        )
        lines.append(
            f"  threshold {threshold:.2f}: channel "
            f"{'flagged' if channel_flag else 'missed'}, benign "
            f"{'flagged' if benign_flag else 'clear'} -> {verdict}"
        )
        if 0.2 <= threshold <= 0.9:
            assert channel_flag and not benign_flag
    lines.append("the paper's 0.5 sits mid-margin")
    record("Ablation: likelihood-ratio threshold", *lines)
