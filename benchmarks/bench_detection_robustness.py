"""Extension: detection robustness across seeds and message patterns.

The paper reports 100% detection over its tested configurations. This
bench replays each channel across independent seeds (fresh noise, fresh
messages, fresh cache set groups) and tallies the detection matrix —
every cell must hold.
"""

from conftest import record

from repro.analysis.figures import run_channel_session
from repro.util.bitstream import Message

SEEDS = (101, 202, 303, 404)


def run_matrix():
    results = {}
    for kind in ("membus", "divider", "cache"):
        hits = []
        for seed in SEEDS:
            message = Message.random(24, seed)
            kwargs = (
                {"n_sets_total": 128, "group_seed": seed}
                if kind == "cache"
                else {}
            )
            run = run_channel_session(
                kind, message, bandwidth_bps=100.0, seed=seed, **kwargs
            )
            verdict = run.hunter.report().verdicts[0]
            hits.append((seed, verdict.detected, run.ber))
        results[kind] = hits
    return results


def test_detection_robustness(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = []
    total = detected = 0
    for kind, hits in results.items():
        for seed, hit, ber in hits:
            total += 1
            detected += hit
            assert hit, (kind, seed)
            assert ber <= 0.1, (kind, seed)
        lines.append(
            f"{kind:<8}: {sum(h for _, h, _ in hits)}/{len(hits)} seeds "
            "detected"
        )
    lines.append(f"overall: {detected}/{total} sessions detected "
                 "(paper: 100% detection)")
    record("Extension: detection robustness across seeds", *lines)
