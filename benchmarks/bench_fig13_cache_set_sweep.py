"""Figure 13: cache channel with 256 / 128 / 64 sets.

Paper: all cases show significant periodicity with maximum peaks around
0.95; the wavelength sits at (or, with interference, slightly above) the
number of sets used for communication.
"""

from conftest import record

from repro.analysis.ascii_plot import render_correlogram
from repro.analysis.figures import fig13_cache_set_sweep


def test_fig13_cache_set_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: fig13_cache_set_sweep(
            seed=1, set_counts=(256, 128, 64), bandwidth_bps=1000.0,
            n_bits=16,
        ),
        rounds=1,
        iterations=1,
    )
    lines = []
    for r in results:
        assert r.analysis.significant, r.n_sets
        assert r.n_sets <= r.peak_lag <= int(r.n_sets * 1.3), r.n_sets
        assert r.peak_value > 0.75, r.n_sets
        lines.append(
            f"{r.n_sets:>3} sets: peak {r.peak_value:.3f} at lag "
            f"{r.peak_lag} (paper: ~0.95 at >= set count)"
        )
    lines.append(
        render_correlogram(
            results[-1].acf, title="64-set autocorrelogram",
            marker_lags=results[-1].analysis.peak_lags.tolist(),
        )
    )
    record("Figure 13: cache channel set-count sweep", *lines)
