"""Figure 11: finer observation windows for the 0.1 bps cache channel.

Paper: at 0.75x / 0.5x / 0.25x of the OS time quantum, the 0.1 bps cache
channel's autocorrelograms show increasingly clear repetitive peaks —
finer-grained analysis detects low-bandwidth channels more effectively.
Reproduced shape: best peak strength and number of significant windows
grow as the window shrinks.
"""

from conftest import record

from repro.analysis.figures import fig11_window_scaling


def test_fig11_window_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: fig11_window_scaling(
            seed=1, fractions=(1.0, 0.75, 0.5, 0.25), bandwidth_bps=0.1,
            n_bits=3,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"window = {p.fraction:.2f} x quantum: best peak {p.best_peak:.3f}, "
        f"{p.significant_windows} significant windows of {p.windows_analyzed}"
        for p in points
    ]
    full = points[0]
    quarter = points[-1]
    assert quarter.significant_windows >= full.significant_windows
    assert quarter.best_peak >= full.best_peak - 0.05
    record("Figure 11: 0.1 bps cache channel, window scaling", *lines)
