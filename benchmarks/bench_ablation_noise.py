"""Ablation: detection robustness vs interference level.

The threat model runs at least three other active processes. This
ablation sweeps the number of background noise processes (0, 3, 6 —
the machine has 8 hardware contexts, the channel uses 2) and shows the
bus channel's likelihood ratio degrading only mildly with interference.
"""

from conftest import record

from repro.analysis.figures import aggregate_histogram
from repro.channels.base import ChannelConfig
from repro.channels.membus import MemoryBusCovertChannel
from repro.core.burst import analyze_histogram
from repro.core.detector import AuditUnit, CCHunter
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.workloads.noise import background_noise_processes


def run_with_noise(count, seed=1):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    channel = MemoryBusCovertChannel(
        machine,
        ChannelConfig(message=Message.random(30, seed), bandwidth_bps=100.0),
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)
    quanta = channel.quanta_needed()
    if count:
        background_noise_processes(
            machine, n_quanta=quanta, count=count, avoid_contexts=(0, 2),
            seed=seed,
        )
    machine.run_quanta(quanta)
    verdict = hunter.report().verdicts[0]
    lr = analyze_histogram(
        aggregate_histogram(hunter, AuditUnit.MEMORY_BUS)
    ).likelihood_ratio
    return verdict.detected, lr, channel.bit_error_rate()


def test_ablation_noise_levels(benchmark):
    def sweep():
        return {count: run_with_noise(count) for count in (0, 3, 6)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for count, (detected, lr, ber) in results.items():
        label = " (paper's threat model)" if count == 3 else ""
        lines.append(
            f"{count} noise processes: LR {lr:.3f}, detected={detected}, "
            f"BER {ber:.2f}{label}"
        )
        assert detected
        assert lr > 0.8
    record("Ablation: interference level vs detection", *lines)
