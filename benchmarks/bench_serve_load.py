"""Extension: multi-tenant detection service under load.

The serve path (docs/SERVING.md) multiplexes many tenants' observation
streams into a sharded pool of detection sessions, trading latency for
bounded memory via credits and load-shedding. This bench sweeps the
tenant count over one service instance and records, per tier:

- **verdict latency** (p50/p95/p99 ms): wall time from the client
  sending the observation that triggers a verdict frame to that frame
  arriving back — fold queueing plus analysis plus notify.
- **shed rate**: fraction of attempted observations the service shed
  instead of folding (the small queues below make the ladder engage at
  the top tier instead of hiding behind the credit window).
- **throughput**: total observations folded per second across tenants.

One clean low-load tenant is also replayed through an in-process
:class:`DetectionSession`; the serve path must produce a bit-identical
final report (the degradation ladder may slow clean tenants down, never
change their answers).

The measured curves are committed to ``BENCH_serve.json`` at the repo
root; ``repro bench check serve_load`` gates against it (tier t16 needs
the full run — ``--quick`` stops at t8).
"""

import asyncio
import json
import os
import time

from conftest import record

from repro.pipeline import build_session_from_specs
from repro.serve import DetectionService, ServeConfig, ServeClient
from repro.serve.traffic import CHANNELS, covert_observations

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

TIERS = (2, 8) if QUICK else (2, 8, 16)
N_QUANTA = 24 if QUICK else 48
SEED = 11

#: Deliberately tight service: queue == credit window, so sampling shed
#: (not credits) is the binding mechanism once shards saturate.
CONFIG = dict(
    port=0,
    shards=2,
    queue_capacity=16,
    initial_credits=16,
    credit_batch=4,
    verdict_every=4,
    max_tenants=64,
    max_resident_sessions=64,
    overload_queue_fraction=0.5,
    shed_sample_every=2,
    fold_batch=8,
)

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve.json",
)


def _percentiles(values):
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(values)

    def at(fraction):
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


async def _stream_one(host, port, tenant, seed, latencies):
    """Stream covert traffic, timestamping verdict round-trips."""
    send_times = {}

    def on_verdict(frame):
        sent = send_times.get(frame.quantum)
        if sent is not None:
            latencies.append((time.perf_counter() - sent) * 1000.0)

    client = ServeClient(host, port, on_verdict=on_verdict)
    await client.connect(tenant, CHANNELS)
    attempted = 0
    try:
        for obs in covert_observations(N_QUANTA, seed=seed):
            send_times[obs.quantum] = time.perf_counter()
            await client.send(obs)
            attempted += 1
        goodbye = await client.finish()
    finally:
        await client.aclose()
    return attempted, goodbye


async def _run_tier(n_tenants):
    service = DetectionService(config=ServeConfig(**CONFIG))
    host, port = await service.start()
    latencies = []
    t0 = time.perf_counter()
    try:
        results = await asyncio.gather(*(
            _stream_one(host, port, f"tenant-{i:02d}", SEED + i, latencies)
            for i in range(n_tenants)
        ))
    finally:
        elapsed = time.perf_counter() - t0
        await service.stop()
    attempted = sum(a for a, _ in results)
    folded = sum(g.received for _, g in results)
    shed = sum(g.shed for _, g in results)
    return {
        "tenants": n_tenants,
        "attempted": attempted,
        "folded": folded,
        "shed": shed,
        "shed_rate": shed / attempted if attempted else 0.0,
        "all_detected": all(
            g.report.any_detected for _, g in results
        ),
        "verdict_latency_ms": _percentiles(latencies),
        "quanta_per_second": folded / elapsed if elapsed else 0.0,
    }


def _reference_report():
    """The same tenant-00 stream through an in-process session."""
    session = build_session_from_specs(CHANNELS)
    for obs in covert_observations(N_QUANTA, seed=SEED):
        session.push_quantum(obs)
    return session.close()


async def _clean_contract():
    """The clean-tenant contract: one uncontended tenant whose credit
    window sits below the sampling-shed threshold must come back
    unshed and bit-identical to the in-process pipeline. (The tier
    sweep above deliberately lets honest tenants shed; this run is the
    answer-preservation check.)"""
    config = ServeConfig(**{**CONFIG, "initial_credits": 6})
    service = DetectionService(config=config)
    host, port = await service.start()
    try:
        _attempted, goodbye = await _stream_one(
            host, port, "tenant-00", SEED, []
        )
    finally:
        await service.stop()
    return goodbye.shed == 0 and goodbye.report == _reference_report()


async def _measure():
    tiers = {}
    for n_tenants in TIERS:
        tiers[f"t{n_tenants}"] = await _run_tier(n_tenants)
    clean_identical = await _clean_contract()
    return {
        "n_quanta": N_QUANTA,
        "seed": SEED,
        "config": {k: v for k, v in CONFIG.items() if k != "port"},
        "quick": QUICK,
        "tiers": tiers,
        "clean_report_identical": clean_identical,
    }


def measure_serve_load():
    return asyncio.run(_measure())


def test_serve_load(benchmark):
    results = benchmark.pedantic(measure_serve_load, rounds=1, iterations=1)
    if not QUICK:  # quick CI smoke must not rewrite the committed JSON
        with open(_OUT_PATH, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    lines = []
    for key, tier in sorted(results["tiers"].items()):
        lat = tier["verdict_latency_ms"]
        lines.append(
            f"{key:>4}: p50={lat['p50']:7.2f}ms p95={lat['p95']:7.2f}ms "
            f"p99={lat['p99']:7.2f}ms shed={tier['shed_rate']:5.1%} "
            f"{tier['quanta_per_second']:7.1f} q/s "
            f"detected={tier['all_detected']}"
        )
    lines.append(
        f"clean tenant bit-identical to in-process session: "
        f"{results['clean_report_identical']}"
    )
    if not QUICK:
        lines.append(f"(written to {_OUT_PATH})")
    record("Extension: multi-tenant serve load", *lines)
    assert results["clean_report_identical"]
    assert all(t["all_detected"] for t in results["tiers"].values())
