"""Extension: wall-clock speedup of the parallel trial runner.

Drives a Figure-12-shaped message sweep (independent covert sessions,
one per random message, across the burst channels) through
``repro.exec.TrialRunner`` at ``jobs`` ∈ {1, 2, 4} and records the
wall-clock times and speedups to ``BENCH_parallel.json`` at the repo
root. The jobs=1 results are also compared against jobs=4 bit for bit —
the determinism contract holds at bench scale, not just in the unit
tests.

Process fan-out only pays when there are cores to fan out to, so the
speedup assertion is gated on the CPUs actually available to this
process (``os.sched_getaffinity``): with >= 4 usable CPUs, jobs=4 must
cut a sweep of this shape at least in half (the perfectly parallel
trials dominate; chunked submission amortizes spawn + pickle). On
smaller hosts the bench still runs, still checks determinism, and
records the honest numbers plus the core count so the JSON says exactly
what hardware produced it.
"""

import json
import os
from time import perf_counter

from conftest import record

from repro.analysis.figures import fig12_message_sweep

N_MESSAGES = 8
N_BITS = 16
JOB_COUNTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 2.0

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _sweep(jobs: int):
    return fig12_message_sweep(
        seed=1, n_messages=N_MESSAGES, n_bits=N_BITS,
        kinds=("membus", "divider"), jobs=jobs,
    )


def measure_speedup():
    results = {}
    timings = {}
    _sweep(1)  # warm imports/allocator outside the timed region
    for jobs in JOB_COUNTS:
        t0 = perf_counter()
        results[jobs] = _sweep(jobs)
        timings[jobs] = perf_counter() - t0
    # Determinism at bench scale: every job count returns identical LRs.
    serial_lrs = [r.likelihood_ratios for r in results[1]]
    for jobs in JOB_COUNTS[1:]:
        assert [r.likelihood_ratios for r in results[jobs]] == serial_lrs, (
            f"jobs={jobs} diverged from the serial sweep"
        )
    return {
        "shape": {
            "figure": "fig12_message_sweep",
            "n_messages": N_MESSAGES,
            "n_bits": N_BITS,
            "kinds": ["membus", "divider"],
        },
        "cpus_available": _usable_cpus(),
        "wall_seconds": {str(j): timings[j] for j in JOB_COUNTS},
        "speedup_vs_serial": {
            str(j): timings[1] / timings[j] for j in JOB_COUNTS
        },
        "bit_identical_across_jobs": True,
    }


def test_parallel_speedup(benchmark):
    results = benchmark.pedantic(measure_speedup, rounds=1, iterations=1)
    with open(_OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = [
        f"jobs={j}: {results['wall_seconds'][str(j)]:.2f}s "
        f"({results['speedup_vs_serial'][str(j)]:.2f}x vs serial)"
        for j in JOB_COUNTS
    ]
    cpus = results["cpus_available"]
    lines.append(f"cpus available: {cpus}; results bit-identical at every "
                 "job count")
    lines.append(f"(written to {_OUT_PATH})")
    record("Extension: parallel sweep speedup (fig12-shaped)", *lines)
    if cpus >= 4:
        assert results["speedup_vs_serial"]["4"] >= MIN_SPEEDUP_AT_4, results
    elif cpus >= 2:
        assert results["speedup_vs_serial"]["2"] >= 1.3, results
