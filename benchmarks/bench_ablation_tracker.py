"""Ablation: practical generation/bloom tracker vs the ideal LRU oracle.

DESIGN.md calls out the conflict-miss tracker approximation as a core
design choice (Figure 9). This ablation runs the same cache covert
session with both trackers and compares the channel's visibility: the
practical tracker must preserve the oscillation signal the ideal one
exposes.
"""

from conftest import record

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.core.detector import AuditUnit, CCHunter
from repro.hardware.conflict_tracker import (
    GenerationConflictTracker,
    IdealLRUConflictTracker,
)
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.workloads.noise import background_noise_processes


def run_with_tracker(tracker_factory, seed=1):
    machine = Machine(seed=seed)
    machine.tracker = tracker_factory(machine.config.l2.n_blocks)
    machine.l2.tracker = machine.tracker
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.CACHE)
    channel = CacheCovertChannel(
        machine,
        ChannelConfig(message=Message.random(16, seed), bandwidth_bps=200.0),
        n_sets_total=256,
    )
    channel.deploy()
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=seed
    )
    machine.run_quanta(quanta)
    verdict = hunter.report().verdicts[0]
    return verdict, machine.cache_miss_tap.count


def test_ablation_tracker(benchmark):
    def run_both():
        ideal = run_with_tracker(IdealLRUConflictTracker)
        practical = run_with_tracker(GenerationConflictTracker)
        return ideal, practical

    (ideal_v, ideal_events), (practical_v, practical_events) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    assert ideal_v.detected
    assert practical_v.detected
    # The approximation must not cost more than a modest peak reduction.
    assert practical_v.max_peak > ideal_v.max_peak - 0.2
    record(
        "Ablation: conflict-miss tracker (ideal LRU stack vs paper design)",
        f"ideal oracle : detected={ideal_v.detected}, peak "
        f"{ideal_v.max_peak:.3f}, {ideal_events} conflict events",
        f"generations+bloom: detected={practical_v.detected}, peak "
        f"{practical_v.max_peak:.3f}, {practical_events} conflict events",
        "(the practical design preserves the oscillation signal)",
    )
