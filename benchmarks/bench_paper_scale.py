"""Opt-in paper-scale runs (deselected by default; takes tens of minutes).

Run with::

    pytest benchmarks/bench_paper_scale.py --benchmark-only -m paper_scale

The default benchmark suite uses paper-shaped but smaller configurations
so it finishes in minutes; these re-run the two experiments whose paper
scale is largest — Figure 12's 256 random 64-bit messages and Figure 2's
full 64-bit credit-card transmission at the exact paper framing — without
any downsizing.
"""

import pytest
from conftest import record

from repro.analysis.figures import fig2_membus_latency, fig12_message_sweep

pytestmark = pytest.mark.paper_scale


def test_fig12_full_256_messages(benchmark):
    results = benchmark.pedantic(
        lambda: fig12_message_sweep(
            seed=1, n_messages=256, n_bits=64,
            kinds=("membus", "divider"), bandwidth_bps=100.0,
        ),
        rounds=1,
        iterations=1,
    )
    lines = []
    for r in results:
        assert r.min_likelihood_ratio > 0.9
        lines.append(
            f"{r.kind:<8}: min LR over 256 x 64-bit messages = "
            f"{r.min_likelihood_ratio:.3f} (paper: > 0.9)"
        )
    record("Paper scale: Figure 12 with 256 random 64-bit messages", *lines)


def test_fig2_full_credit_card(benchmark):
    result = benchmark.pedantic(
        lambda: fig2_membus_latency(seed=1, n_bits=64, bandwidth_bps=10.0),
        rounds=1,
        iterations=1,
    )
    assert result.ber == 0.0
    assert result.latencies.size == 64 * 55  # ~3500 samples as in Fig 2
    record(
        "Paper scale: Figure 2 with the 64-bit credit card number",
        f"{result.latencies.size} spy samples, BER {result.ber:.3f}",
    )
