"""Figure 2: spy-observed memory latency over a 64-bit message (bus channel).

Paper: the spy's average memory-access latency is visibly higher during
'1' bits (locked bus) than '0' bits, decoding the random 64-bit credit
card number. Reproduced shape: clear bimodal latency series with zero
decode errors.
"""

from conftest import record

from repro.analysis.ascii_plot import render_series
from repro.analysis.figures import fig2_membus_latency


def test_fig2_membus_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig2_membus_latency(seed=1, n_bits=64, bandwidth_bps=10.0),
        rounds=1,
        iterations=1,
    )
    assert result.ber == 0.0
    assert result.separation > 50
    record(
        "Figure 2: memory bus channel, spy latency per sample",
        f"samples: {result.latencies.size}",
        f"mean latency during '1' bits: {result.mean_when_one:.0f} cycles",
        f"mean latency during '0' bits: {result.mean_when_zero:.0f} cycles",
        f"decode threshold: {result.decode_threshold:.0f} cycles",
        f"bit error rate: {result.ber:.3f} (paper: reliable decode)",
        render_series(result.latencies, title="latency series"),
    )
