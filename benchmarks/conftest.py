"""Benchmark support: collect per-experiment result summaries.

pytest captures stdout, so benchmarks report their reproduced numbers
through :func:`record` and this plugin prints them in the terminal summary
(and appends them to ``benchmarks/results.txt``) after the timing table.
"""

from __future__ import annotations

import os
from typing import List

_RESULTS: List[str] = []


def record(title: str, *lines: str) -> None:
    """Register a result block to be shown in the terminal summary."""
    block = [f"--- {title} ---"]
    block.extend(lines)
    _RESULTS.append("\n".join(block))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced experiment results")
    for block in _RESULTS:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
    out_path = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out_path, "w") as handle:
        handle.write("\n\n".join(_RESULTS) + "\n")
    terminalreporter.write_line(f"(also written to {out_path})")
