"""Ablation: bloom-filter sizing in the conflict-miss tracker.

The paper sizes each generation's three-hash bloom filter at
#cacheblocks bits. Undersizing raises the false-positive rate (spurious
conflict classifications -> noisier trains); this ablation quantifies
the effect across filter sizes at a generation's worth of insertions.
"""

from conftest import record

from repro.hardware.bloom import BloomFilter


def measure_fp_rates():
    results = []
    inserted = list(range(0, 1024 * 11, 11))  # ~one generation of tags
    probes = list(range(5_000_000, 5_020_000, 2))
    for bits in (512, 1024, 2048, 4096, 8192, 16384):
        bloom = BloomFilter(bits, n_hashes=3)
        for key in inserted:
            bloom.add(key)
        fp = sum(bloom.contains(k) for k in probes) / len(probes)
        results.append((bits, bloom.fill_ratio, fp))
    return results


def test_ablation_bloom_sizing(benchmark):
    results = benchmark.pedantic(measure_fp_rates, rounds=1, iterations=1)
    lines = [
        f"{bits:>6} bits: fill {fill:.2f}, false-positive rate {fp:.3f}"
        + ("   <- paper sizing" if bits == 4096 else "")
        for bits, fill, fp in results
    ]
    rates = {bits: fp for bits, _, fp in results}
    # FP rate decreases monotonically with size; the paper's choice is
    # comfortably below the level that would flood the train with noise.
    assert rates[4096] < 0.25
    assert rates[16384] < rates[512]
    record(
        "Ablation: bloom filter sizing (1024 tags, 3 hashes)", *lines,
        "the paper's N-bit-per-generation choice keeps spurious conflicts "
        "to a small fraction",
    )
