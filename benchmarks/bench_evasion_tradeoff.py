"""Extension: the evasion-vs-reliability tradeoff (Sections III, IV-D).

"The trojan/spy may (with some effort) deliberately introduce noise ...
This may potentially lower autocorrelation coefficients, but we note
that the trojan/spy may face a much bigger problem in reliable
transmission due to higher variability in cache access latencies."

Two evasion strategies against the cache channel, under the correlated
latency variability of a busy real system (one shared offset per timing
probe — the kind of noise per-bit averaging cannot cancel):

- *round skipping* (drop whole sweep/probe rounds): the surviving rounds
  keep their clean periodicity, so the peak barely moves — ineffective;
- *subset sweeping* (randomly sweep only a fraction of the group's
  sets): genuinely jitters the phase run-lengths and can push the peak
  below the detector's floor — but the spy's latency contrast shrinks
  with the same fraction and its error rate collapses.
"""

from conftest import record

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.core.detector import AuditUnit, CCHunter
from repro.mitigation.fuzz import ClockFuzzer
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.workloads.noise import background_noise_processes

#: Ambient correlated latency variability (cycles): timer interrupts,
#: DRAM refresh phases, co-runner bursts shifting whole probes at once.
AMBIENT_VARIABILITY = 600


def run_evading(skip=0.0, subset=1.0, seed=5):
    machine = Machine(seed=seed)
    ClockFuzzer(machine, fuzz_cycles=AMBIENT_VARIABILITY, correlated=True)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.CACHE)
    channel = CacheCovertChannel(
        machine,
        ChannelConfig(message=Message.random(48, seed), bandwidth_bps=100.0),
        n_sets_total=128,
        evasion_skip_prob=skip,
        evasion_subset_frac=subset,
    )
    channel.deploy()
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=seed
    )
    machine.run_quanta(quanta)
    verdict = hunter.report().verdicts[0]
    return verdict.max_peak or 0.0, verdict.detected, channel.bit_error_rate()


def test_evasion_tradeoff(benchmark):
    def sweep():
        rows = {"baseline": run_evading()}
        for skip in (0.4, 0.8):
            rows[f"skip p={skip}"] = run_evading(skip=skip)
        for frac in (0.7, 0.5, 0.3):
            rows[f"subset f={frac}"] = run_evading(subset=frac)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{name:<14} ACF peak {peak:.3f}, detected={detected}, "
        f"spy BER {ber:.3f}"
        for name, (peak, detected, ber) in rows.items()
    ]
    peak0, det0, ber0 = rows["baseline"]
    assert det0 and ber0 <= 0.02
    # Round skipping never evades (surviving rounds stay periodic).
    for skip in (0.4, 0.8):
        assert rows[f"skip p={skip}"][1], skip
    # Subset sweeping can evade, but only where reliability is wrecked.
    f3_peak, f3_det, f3_ber = rows["subset f=0.3"]
    assert not f3_det
    assert f3_ber > 0.15
    for name, (peak, detected, ber) in rows.items():
        if name.startswith("subset") and not detected:
            assert ber > 0.03, name  # every evading point pays in errors
    record(
        "Extension: evasion vs reliability (cache channel, real-system "
        "latency variability)",
        *lines,
        "round skipping cannot hide the oscillation; subset sweeping hides "
        "it only by destroying the spy's contrast — the paper's Section "
        "III argument, quantified",
    )
