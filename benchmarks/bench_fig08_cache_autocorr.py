"""Figure 8: conflict-miss train and autocorrelogram (512-set channel).

Paper: with 512 sets used for transmission, the autocorrelogram peaks at
~0.893 near lag 533 (the set count, inflated slightly by noise events),
with 0.85 at lag 512. Reproduced shape: highest peak at/just above lag
512 with strength ~0.8-0.95 and deep anti-correlation at the
half-wavelength.
"""

from conftest import record

from repro.analysis.ascii_plot import render_correlogram
from repro.analysis.figures import fig8_cache_autocorrelogram


def test_fig8_cache_autocorrelogram(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_cache_autocorrelogram(
            seed=1, n_bits=24, bandwidth_bps=200.0, n_sets=512
        ),
        rounds=1,
        iterations=1,
    )
    assert result.analysis.significant
    assert 500 <= result.peak_lag <= 560   # paper: 533 (512 + noise shift)
    assert result.peak_value > 0.7          # paper: 0.893
    assert result.acf[512] > 0.6            # paper: ~0.85 at lag 512
    record(
        "Figure 8: cache conflict-miss autocorrelogram (512 sets)",
        f"train length: {result.identifiers.size} labeled conflict misses",
        f"highest peak: {result.peak_value:.3f} at lag {result.peak_lag} "
        "(paper: 0.893 at lag 533)",
        f"coefficient at lag 512: {result.acf[512]:.3f} (paper: ~0.85)",
        f"half-wavelength dip: {result.analysis.min_dip:.3f}",
        render_correlogram(
            result.acf, title="autocorrelogram",
            marker_lags=result.analysis.peak_lags.tolist(),
        ),
    )
