"""Ablation: oscillation-detector operating points (mini ROC).

The oscillation detector's main knob is the peak-height floor. This
ablation runs covert cache sessions (positive class) and webserver pairs
— the hardest benign case, with genuine brief periodicity — (negative
class) across seeds, re-scoring the recorded correlograms at several
floors. The default 0.45 sits on the operating plateau: full detection,
zero false alarms, with margin on both sides.
"""

import numpy as np
from conftest import record

from repro.analysis.figures import run_channel_session
from repro.core.autocorr import autocorrelogram
from repro.core.event_train import dominant_pair_series
from repro.core.oscillation import analyze_autocorrelogram
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.workloads.base import workload_process
from repro.workloads.filebench import webserver


def _window_series(machine, quanta):
    horizon = quanta * machine.quantum_cycles
    times, reps, vics = machine.cache_miss_tap.records_in(0, horizon)
    out = []
    for q in range(quanta):
        t0, t1 = q * machine.quantum_cycles, (q + 1) * machine.quantum_cycles
        lo, hi = np.searchsorted(times, t0), np.searchsorted(times, t1)
        labels, _idx, _pair = dominant_pair_series(reps[lo:hi], vics[lo:hi])
        if labels.size >= 64 and 4 <= labels.sum() <= labels.size - 4:
            out.append(autocorrelogram(labels, 1000))
    return out


def collect_correlograms():
    positives = []
    for seed in (1, 2, 3):
        run = run_channel_session(
            "cache", Message.random(10, seed), bandwidth_bps=100.0,
            seed=seed, n_sets_total=128,
        )
        positives.extend(_window_series(run.machine, run.quanta))
    negatives = []
    for seed in (11, 12, 13):
        machine = Machine(seed=seed)
        machine.spawn(
            workload_process(webserver, machine, 4, seed=seed, instance=0),
            ctx=0,
        )
        machine.spawn(
            workload_process(webserver, machine, 4, seed=seed + 50,
                             instance=1),
            ctx=1,
        )
        machine.run_quanta(4)
        negatives.extend(_window_series(machine, 4))
    return positives, negatives


def test_ablation_thresholds_roc(benchmark):
    positives, negatives = benchmark.pedantic(
        collect_correlograms, rounds=1, iterations=1
    )
    assert positives and negatives
    lines = [
        f"windows: {len(positives)} covert, {len(negatives)} benign "
        "(webserver pairs)"
    ]
    for floor in (0.25, 0.35, 0.45, 0.6, 0.75):
        tp = sum(
            analyze_autocorrelogram(acf, min_peak_height=floor).significant
            for acf in positives
        )
        fp = sum(
            analyze_autocorrelogram(acf, min_peak_height=floor).significant
            for acf in negatives
        )
        tpr = tp / len(positives)
        fpr = fp / len(negatives)
        marker = "  <- default" if floor == 0.45 else ""
        lines.append(
            f"peak floor {floor:.2f}: TPR {tpr:.2f}, FPR {fpr:.2f}{marker}"
        )
        if 0.35 <= floor <= 0.6:
            assert tpr == 1.0, floor
            assert fpr == 0.0, floor
    record("Ablation: oscillation peak-height operating points", *lines)
