"""Figure 6: event-density histograms for the two contention channels.

Paper: bus channel shows a burst mode near density bin #20 (Δt = 100 000
cycles); the divider shows a prominent second distribution between bins
#84 and #105 peaking around #96 (Δt = 500 cycles). Both likelihood ratios
are >= 0.9.
"""

from conftest import record

from repro.analysis.ascii_plot import render_histogram
from repro.analysis.figures import fig6_density_histograms


def test_fig6_density_histograms(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_density_histograms(seed=1, n_bits=16, bandwidth_bps=10.0),
        rounds=1,
        iterations=1,
    )
    assert 18 <= result.bus_burst_bin <= 22          # paper: ~#20
    assert 84 <= result.divider_burst_bin <= 105     # paper: #84-#105
    assert result.bus_analysis.likelihood_ratio > 0.9
    assert result.divider_analysis.likelihood_ratio > 0.9
    record(
        "Figure 6: event density histograms",
        f"bus burst mode at bin #{result.bus_burst_bin} (paper: ~#20), "
        f"LR = {result.bus_analysis.likelihood_ratio:.3f}",
        f"divider burst mode at bin #{result.divider_burst_bin} "
        f"(paper: ~#96), LR = {result.divider_analysis.likelihood_ratio:.3f}",
        render_histogram(result.bus_hist, title="bus lock density"),
        render_histogram(
            result.divider_hist, title="divider contention density",
            max_bins=128,
        ),
    )
