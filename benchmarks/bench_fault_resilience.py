"""Extension: detection resilience under observation-stream faults.

CC-Hunter's evidence arrives through hardware taps that real systems
lose, duplicate, and corrupt. This bench sweeps the drop-rate of a
deterministic :class:`~repro.faults.DropInjector` over the Figure 6
memory-bus channel and records how the burst detector's evidence decays:
at what loss rate does the likelihood ratio fall below the detection
threshold, and does the session degrade gracefully (DEGRADED health,
complete report) at every point rather than dying?

The measured curve is committed to ``BENCH_faults.json`` at the repo
root — drop rate vs likelihood ratio / detection / pipeline health —
and docs/ROBUSTNESS.md quotes it.
"""

import json
import os

from conftest import record

from repro.analysis.figures import run_channel_session
from repro.faults import injectors_from_string
from repro.util.bitstream import Message

DROP_RATES = (0.0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90)
N_BITS = 24
BANDWIDTH_BPS = 100.0
SEED = 6

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_faults.json",
)


def _point(drop_rate):
    """One audited membus transmission under a given event-loss rate."""
    message = Message.from_bits([1, 0] * (N_BITS // 2))
    injectors = (
        injectors_from_string(f"drop:{drop_rate}", seed=SEED)
        if drop_rate > 0.0
        else ()
    )
    run = run_channel_session(
        "membus",
        message,
        bandwidth_bps=BANDWIDTH_BPS,
        seed=SEED,
        injectors=injectors,
    )
    report = run.hunter.report()
    verdict = report.verdicts[0]
    return {
        "drop_rate": drop_rate,
        "likelihood_ratio": verdict.max_likelihood_ratio,
        "detected": bool(verdict.detected),
        "health": report.health,
        "quanta": run.quanta,
    }


def measure_resilience():
    return {
        "channel": "membus",
        "bandwidth_bps": BANDWIDTH_BPS,
        "n_bits": N_BITS,
        "seed": SEED,
        "points": [_point(rate) for rate in DROP_RATES],
    }


def test_fault_resilience(benchmark):
    results = benchmark.pedantic(measure_resilience, rounds=1, iterations=1)
    with open(_OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    lines = []
    for point in results["points"]:
        lr = point["likelihood_ratio"]
        lines.append(
            f"drop {point['drop_rate']:4.0%}: LR "
            f"{'—' if lr is None else format(lr, '.3f')} | "
            f"{'DETECTED' if point['detected'] else 'missed'} | "
            f"health {point['health']}"
        )
    lines.append(f"(written to {_OUT_PATH})")
    record("Extension: detection under observation loss", *lines)
    points = {p["drop_rate"]: p for p in results["points"]}
    # The clean run must detect, and every faulted run must complete
    # with DEGRADED (never FAILED) health — graceful degradation.
    assert points[0.0]["detected"] and points[0.0]["health"] == "ok"
    for rate in DROP_RATES[1:]:
        assert points[rate]["health"] == "degraded", points[rate]
