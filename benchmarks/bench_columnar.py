"""Extension: columnar hot path vs legacy full-history reads.

The structure-of-arrays refactor (docs/PERFORMANCE.md, "Columnar hot
path") claims two things: the streaming window readers make a whole
audited session markedly faster than re-reading full tap history each
quantum, and the vectorized ``push_batch`` estimator kernels beat their
per-event ``push`` adapters by an order of magnitude or more. This bench
measures both claims on the same hardware and commits the numbers to
``BENCH_columnar.json`` at the repo root. It also re-checks the bargain
the refactor was sold on: the two session paths must produce identical
verdicts.

``REPRO_BENCH_QUICK=1`` shrinks the trial count for CI smoke runs (the
speedup assertions still apply; the committed JSON is only rewritten by
a full run).
"""

import json
import os
import statistics
from time import perf_counter

import numpy as np

from conftest import record

from repro.config import MachineConfig
from repro.core.autocorr import RunningAutocorrelogram
from repro.core.density import StreamingDensityHistogram
from repro.core.detector import AuditUnit, CCHunter
from repro.obs.metrics import NULL_REGISTRY
from repro.sim.machine import Machine
from repro.sim.process import BusLockBurst, Process

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_QUANTA = 30
N_TRIALS = 2 if QUICK else 5
KERNEL_SAMPLES = 50_000 if QUICK else 200_000

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_columnar.json",
)


def _run_session(columnar):
    """One audited membus session; returns (seconds, verdict dict)."""
    config = MachineConfig(os_quantum_seconds=0.002)
    machine = Machine(config=config, seed=7, metrics=NULL_REGISTRY)
    hunter = CCHunter(
        machine,
        track_detection_latency=True,
        metrics=NULL_REGISTRY,
        columnar=columnar,
    )
    hunter.audit(AuditUnit.MEMORY_BUS, dt=1000)

    def trojan(proc):
        while True:
            yield BusLockBurst(count=300, period=200)

    machine.spawn(Process("trojan", body=trojan), ctx=0)
    t0 = perf_counter()
    machine.run_quanta(N_QUANTA)
    return perf_counter() - t0, hunter.report().to_dict()


def _median_session_seconds():
    for mode in (True, False):  # warmup
        _run_session(mode)
    timings = {"columnar": [], "legacy": []}
    verdicts = {}
    for round_idx in range(N_TRIALS):
        order = (True, False) if round_idx % 2 == 0 else (False, True)
        for columnar in order:
            sec, verdict = _run_session(columnar)
            key = "columnar" if columnar else "legacy"
            timings[key].append(sec)
            verdicts[key] = verdict
    return (
        {k: statistics.median(v) for k, v in timings.items()},
        verdicts["columnar"] == verdicts["legacy"],
    )


def _time_kernel(fn, *args):
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        fn(*args)
        best = min(best, perf_counter() - t0)
    return best


def _kernel_results():
    rng = np.random.default_rng(17)
    labels = rng.integers(0, 2, size=KERNEL_SAMPLES).astype(np.int64)
    counts = rng.integers(0, 40, size=KERNEL_SAMPLES).astype(np.int64)

    def acf_push(values):
        est = RunningAutocorrelogram(64)
        for v in values:
            est.push(int(v))
        return est

    def acf_batch(values):
        est = RunningAutocorrelogram(64)
        est.push_batch(values)
        return est

    def density_push(values):
        est = StreamingDensityHistogram(dt=1000, n_bins=128)
        for v in values:
            est.push(int(v))
        return est

    def density_batch(values):
        est = StreamingDensityHistogram(dt=1000, n_bins=128)
        est.push_batch(values)
        return est

    out = {}
    for name, push, batch, data in (
        ("autocorrelogram", acf_push, acf_batch, labels),
        ("density_histogram", density_push, density_batch, counts),
    ):
        push_sec = _time_kernel(push, data)
        batch_sec = _time_kernel(batch, data)
        out[name] = {
            "samples": int(data.size),
            "push_seconds": push_sec,
            "push_batch_seconds": batch_sec,
            "speedup": push_sec / batch_sec,
        }
    return out


def measure_columnar():
    medians, verdicts_identical = _median_session_seconds()
    return {
        "n_quanta": N_QUANTA,
        "n_trials": N_TRIALS,
        "session": {
            "columnar_seconds": medians["columnar"],
            "legacy_seconds": medians["legacy"],
            "columnar_quanta_per_second": N_QUANTA / medians["columnar"],
            "legacy_quanta_per_second": N_QUANTA / medians["legacy"],
            "speedup": medians["legacy"] / medians["columnar"],
            "verdicts_identical": verdicts_identical,
        },
        "kernels": _kernel_results(),
    }


def test_columnar_speedup(benchmark):
    results = benchmark.pedantic(measure_columnar, rounds=1, iterations=1)
    if not QUICK:  # quick CI smoke must not rewrite the committed JSON
        with open(_OUT_PATH, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    ses = results["session"]
    lines = [
        f"session   columnar {ses['columnar_quanta_per_second']:8.1f} q/s, "
        f"legacy {ses['legacy_quanta_per_second']:8.1f} q/s "
        f"({ses['speedup']:.2f}x, verdicts identical: "
        f"{ses['verdicts_identical']})",
    ]
    for name, k in sorted(results["kernels"].items()):
        lines.append(
            f"{name:<18} push_batch {k['speedup']:6.1f}x faster than "
            f"per-event push ({k['samples']} samples)"
        )
    lines.append(f"(written to {_OUT_PATH})")
    record("Extension: columnar hot path", *lines)
    # The streaming readers must actually pay for themselves...
    assert ses["speedup"] > 1.5, results
    # ...without changing a single verdict field.
    assert ses["verdicts_identical"], results
    # And the batch kernels must dominate their per-event adapters.
    for name, k in results["kernels"].items():
        assert k["speedup"] > 5.0, (name, results)
