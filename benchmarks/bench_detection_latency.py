"""Extension: time-to-detection across bandwidths.

The paper evaluates *whether* channels are caught; an operator also cares
*how fast*. This bench measures the first quantum at which each verdict
fires: high-bandwidth channels are convicted within the first quanta,
and even 1 bps channels fall as soon as two burst quanta have spread
(the recurrence requirement — by design, a single burst episode is not
enough to alarm).
"""

from conftest import record

from repro.analysis.figures import _message_with_ones, run_channel_session
from repro.core.detector import AuditUnit

_UNIT = {
    "membus": AuditUnit.MEMORY_BUS,
    "divider": AuditUnit.DIVIDER,
    "cache": AuditUnit.CACHE,
}


def measure_latencies():
    rows = []
    for kind, bw, bits in (
        ("membus", 100.0, 40),
        ("membus", 10.0, 16),
        ("membus", 1.0, 6),
        ("divider", 100.0, 40),
        ("cache", 100.0, 24),
        ("cache", 10.0, 8),
    ):
        message = _message_with_ones(bits, seed=7)
        kwargs = {"n_sets_total": 128} if kind == "cache" else {}
        run = run_channel_session(kind, message, bw, seed=7, **kwargs)
        core = 0 if kind == "divider" else None
        latency = run.hunter.first_detection_quantum(_UNIT[kind], core=core)
        rows.append((kind, bw, run.quanta, latency))
    return rows


def test_detection_latency(benchmark):
    rows = benchmark.pedantic(measure_latencies, rounds=1, iterations=1)
    lines = []
    for kind, bw, quanta, latency in rows:
        assert latency is not None, (kind, bw)
        lines.append(
            f"{kind:<8} @ {bw:>6.1f} bps: first alarm at quantum "
            f"{latency} of {quanta} ({(latency + 1) * 0.1:.1f} s of "
            "monitoring)"
        )
    by_key = {(k, b): l for k, b, _q, l in rows}
    # Faster channels are caught at least as fast.
    assert by_key[("membus", 100.0)] <= by_key[("membus", 1.0)]
    assert by_key[("cache", 100.0)] <= 1
    record("Extension: time to detection", *lines)
