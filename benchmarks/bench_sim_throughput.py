"""Extension: vectorized simulator hot path vs legacy per-access loop.

The batched cache kernels (docs/PERFORMANCE.md, "Simulator hot path")
claim three things, measured here on the same hardware and committed to
``BENCH_sim.json`` at the repo root:

- a full audited cache-channel session runs markedly faster with the
  vectorized ``access_series``/``random_traffic`` kernels than with
  ``SharedCache(vectorized=False)``, while producing a bit-identical
  labeled event train;
- the vectorized cache path clears >= 5x on the kernel it was built
  for — a hit-heavy hot-working-set series, where the legacy loop pays
  full per-access Python overhead (the channel *session* ratio is
  bounded lower because its sweep phases are all-miss thrash and the
  legacy path shares the rewritten bloom/tracker internals);
- the batched bloom-filter primitives (``add_batch`` /
  ``contains_batch``) dominate their scalar loops by an order of
  magnitude or more.

``REPRO_BENCH_QUICK=1`` shrinks trial counts for CI smoke runs (the
speedup assertions still apply; the committed JSON is only rewritten by
a full run).
"""

import json
import os
import statistics
from time import perf_counter

import numpy as np

from conftest import record

from repro.analysis.figures import run_channel_session
from repro.config import CacheConfig
from repro.hardware.bloom import BloomFilter
from repro.hardware.conflict_tracker import GenerationConflictTracker
from repro.sim.events import LabeledEventTap
from repro.sim.resources.cache import SharedCache
from repro.util.bitstream import Message

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_QUANTA = 8 if QUICK else 16
N_TRIALS = 2 if QUICK else 5
KERNEL_SAMPLES = 50_000 if QUICK else 200_000

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sim.json",
)


def _event_checksum(machine):
    times, replacers, victims = machine.cache_miss_tap.records()
    return (
        int(times.size),
        int(times.sum()),
        int(replacers.sum()),
        int(victims.sum()),
    )


def _run_session(vectorized):
    """One audited cache-channel session; returns (seconds, checksum)."""
    message = Message.random(12, rng=np.random.default_rng(7))
    t0 = perf_counter()
    result = run_channel_session(
        "cache",
        message,
        bandwidth_bps=100.0,
        seed=11,
        max_quanta=N_QUANTA,
        noise=True,
        cache_vectorized=vectorized,
    )
    return perf_counter() - t0, _event_checksum(result.machine)


def _median_session_seconds():
    for mode in (True, False):  # warmup
        _run_session(mode)
    timings = {"vectorized": [], "legacy": []}
    checksums = {}
    for round_idx in range(N_TRIALS):
        order = (True, False) if round_idx % 2 == 0 else (False, True)
        for vectorized in order:
            sec, checksum = _run_session(vectorized)
            key = "vectorized" if vectorized else "legacy"
            timings[key].append(sec)
            checksums[key] = checksum
    return (
        {k: statistics.median(v) for k, v in timings.items()},
        checksums["vectorized"] == checksums["legacy"],
    )


def _time_kernel(fn, *args):
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        fn(*args)
        best = min(best, perf_counter() - t0)
    return best


def _bloom_results():
    rng = np.random.default_rng(17)
    keys = rng.integers(0, 1 << 40, size=KERNEL_SAMPLES).tolist()

    def scalar_add():
        bloom = BloomFilter(4096, 3)
        for key in keys:
            bloom.add(key)

    def batch_add():
        bloom = BloomFilter(4096, 3)
        bloom.add_batch(keys)

    filled = BloomFilter(4096, 3)
    filled.add_batch(keys[: KERNEL_SAMPLES // 4])

    def scalar_contains():
        probe = filled.contains
        return [probe(key) for key in keys]

    def batch_contains():
        return filled.contains_batch(keys)

    out = {}
    for name, scalar, batch in (
        ("add", scalar_add, batch_add),
        ("contains", scalar_contains, batch_contains),
    ):
        scalar_sec = _time_kernel(scalar)
        batch_sec = _time_kernel(batch)
        out[name] = {
            "samples": KERNEL_SAMPLES,
            "scalar_seconds": scalar_sec,
            "batch_seconds": batch_sec,
            "speedup": scalar_sec / batch_sec,
        }
    return out


def _fresh_cache(vectorized):
    config = CacheConfig()
    n_sets = config.size_bytes // (config.line_bytes * config.associativity)
    tracker = GenerationConflictTracker(
        capacity=n_sets * config.associativity
    )
    cache = SharedCache(
        config,
        tracker,
        LabeledEventTap("bench"),
        np.random.default_rng(5),
        vectorized=vectorized,
    )
    return cache


def _access_series_results():
    # A hot working set that fits its sets' ways: the steady state is
    # hit-dominated, which is where the per-access Python overhead the
    # kernel removes is the whole cost.
    rng = np.random.default_rng(9)
    sets = rng.integers(0, 64, size=KERNEL_SAMPLES)
    tags = rng.integers(0, 8, size=KERNEL_SAMPLES)
    pattern = np.stack([sets, tags], axis=1).astype(np.int64)

    def run(vectorized):
        cache = _fresh_cache(vectorized)
        cache.access_series(0, pattern, 8, 0)  # warm fills
        t0 = perf_counter()
        cache.access_series(0, pattern, 8, 10**9)
        seconds = perf_counter() - t0
        return seconds, (cache.hits, cache.misses, cache.conflict_misses)

    best = {"vectorized": float("inf"), "legacy": float("inf")}
    counters = {}
    for _ in range(3):
        for key, vectorized in (("vectorized", True), ("legacy", False)):
            seconds, counts = run(vectorized)
            best[key] = min(best[key], seconds)
            counters[key] = counts
    return {
        "samples": KERNEL_SAMPLES,
        "vectorized_seconds": best["vectorized"],
        "legacy_seconds": best["legacy"],
        "speedup": best["legacy"] / best["vectorized"],
        "counters_identical": counters["vectorized"] == counters["legacy"],
    }


def measure_sim_throughput():
    medians, events_identical = _median_session_seconds()
    return {
        "n_quanta": N_QUANTA,
        "n_trials": N_TRIALS,
        "session": {
            "vectorized_seconds": medians["vectorized"],
            "legacy_seconds": medians["legacy"],
            "vectorized_quanta_per_second": N_QUANTA / medians["vectorized"],
            "legacy_quanta_per_second": N_QUANTA / medians["legacy"],
            "speedup": medians["legacy"] / medians["vectorized"],
            "events_identical": events_identical,
        },
        "kernels": {
            "access_series_hot_set": _access_series_results(),
            "bloom": _bloom_results(),
        },
    }


def test_sim_throughput(benchmark):
    results = benchmark.pedantic(measure_sim_throughput, rounds=1, iterations=1)
    if not QUICK:  # quick CI smoke must not rewrite the committed JSON
        with open(_OUT_PATH, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    ses = results["session"]
    hot = results["kernels"]["access_series_hot_set"]
    lines = [
        f"session   vectorized {ses['vectorized_quanta_per_second']:7.1f} "
        f"q/s, legacy {ses['legacy_quanta_per_second']:7.1f} q/s "
        f"({ses['speedup']:.2f}x, events identical: "
        f"{ses['events_identical']})",
        f"access_series hot-set kernel {hot['speedup']:6.1f}x faster than "
        f"legacy loop ({hot['samples']} accesses)",
    ]
    for name, k in sorted(results["kernels"]["bloom"].items()):
        lines.append(
            f"bloom {name:<9} batch {k['speedup']:6.1f}x faster than "
            f"scalar loop ({k['samples']} keys)"
        )
    if not QUICK:
        lines.append(f"(written to {_OUT_PATH})")
    record("Extension: simulator hot path", *lines)
    # The audited session must pay for the kernel's complexity...
    assert ses["speedup"] > 1.25, results
    # ...bit-identically.
    assert ses["events_identical"], results
    # The vectorized cache path must clear 5x where per-access Python
    # overhead is the whole cost (quick mode's smaller series amortizes
    # the kernel's fixed numpy overhead less, so it gates lower).
    assert hot["speedup"] > (3.0 if QUICK else 5.0), results
    assert hot["counters_identical"], results
    # And the bloom batch primitives must dominate their scalar loops.
    # (Quick mode's smaller key sample fits inside the scalar path's
    # probe_words memo, deflating the ratio; the full run resolves it.)
    bloom_floor = 2.0 if QUICK else 5.0
    for name, k in results["kernels"]["bloom"].items():
        assert k["speedup"] > bloom_floor, (name, results)
