"""Figure 10: bandwidth sweep (0.1 / 10 / 1000 bps) over all channels.

Paper: the burst channels' likelihood ratios stay >= ~0.9 at every
bandwidth (only the magnitudes of the histograms shrink); the 0.1 bps
cache channel shows periodicity whose full-window magnitude is not
significant (fixed by finer windows, Figure 11).
"""

from conftest import record

from repro.analysis.figures import fig10_bandwidth_sweep


def test_fig10_bandwidth_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: fig10_bandwidth_sweep(
            seed=1, bandwidths=(0.1, 10.0, 1000.0), n_bits_low_bw=4,
            n_bits=16,
        ),
        rounds=1,
        iterations=1,
    )
    lines = []
    for p in points:
        if p.likelihood_ratio is not None:
            detail = f"likelihood ratio {p.likelihood_ratio:.3f}"
        else:
            detail = f"best ACF peak {p.max_peak:.3f}"
        lines.append(
            f"{p.kind:<8} @ {p.bandwidth_bps:>6.1f} bps: {detail}, "
            f"detected={p.detected}, BER={p.ber:.2f} ({p.quanta} quanta)"
        )
        if p.kind in ("membus", "divider"):
            assert p.likelihood_ratio > 0.85, (p.kind, p.bandwidth_bps)
            assert p.detected, (p.kind, p.bandwidth_bps)
        elif p.bandwidth_bps >= 10.0:
            assert p.detected, (p.kind, p.bandwidth_bps)
    low_bw_cache = [
        p for p in points if p.kind == "cache" and p.bandwidth_bps < 1.0
    ][0]
    lines.append(
        "0.1 bps cache channel at full-quantum windows: "
        + ("weak (as the paper observes)" if not low_bw_cache.detected
           else f"detected with peak {low_bw_cache.max_peak:.3f}")
    )
    record("Figure 10: bandwidth sweep", *lines)
