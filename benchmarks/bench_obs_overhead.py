"""Extension: what does the instrumentation layer itself cost?

CC-Hunter's pitch is low-overhead online monitoring, so the software
reproduction holds itself to the same standard. This bench drives the
identical audited workload through three instrumentation modes:

- ``off``       — :data:`NULL_REGISTRY`: no counters, no timers;
- ``counters``  — a live :class:`MetricsRegistry` (the default mode:
  counters, gauges, and latency histograms all enabled);
- ``spans``     — counters plus opt-in span tracing (ring buffer);
- ``evidence``  — counters plus per-unit forensic evidence capture
  (``capture_evidence=True``, docs/FORENSICS.md);
- ``profile``   — :data:`NULL_REGISTRY` plus the opt-in
  :class:`StageProfiler` (docs/PERFORMANCE.md), isolating what stage
  attribution alone costs over a fully-off run.
- ``telemetry`` — counters plus a live admin endpoint
  (:class:`~repro.obs.telemetry.TelemetryServer` on a background
  thread) being scraped at 10 Hz while the workload runs: the cost of
  *being observed*, not just of counting (docs/OBSERVABILITY.md).

Each round runs one trial per mode with the mode order *rotated* between
rounds, after one warmup trial per mode. A fixed order had put ``off``
first in every round, so it alone absorbed the allocator/branch-predictor
warmup cost of each round and benchmarked *slower* than the instrumented
modes — an artifact, not a property of the code. Rotation plus per-mode
warmup spreads any residual drift evenly, and medians damp outliers.

The default mode must stay within 10% of fully-off — that bound is the
contract docs/OBSERVABILITY.md advertises — evidence capture within 15%
of counters-only (the docs/FORENSICS.md bound) *and* bit-identical in
its verdicts, and the measured numbers are committed to
``BENCH_obs.json`` at the repo root. The profiler carries the same two
contracts plus one of its own: < 10% overhead vs fully-off,
bit-identical verdicts, and its per-stage attribution must account for
at least 90% of the measured session wall time (the stage tree cannot
have large dark regions). The columnar hot path
(docs/PERFORMANCE.md) also carries an absolute throughput floor,
:data:`FLOOR_QUANTA_PER_SECOND`: the fully-off mode must clear it on any
machine, so a regression that undoes the batching fails loudly in CI.
``REPRO_BENCH_QUICK=1`` shrinks the trial count for the CI smoke run
(the floor still applies; the committed JSON is only rewritten by a full
run).
"""

import asyncio
import json
import os
import statistics
import threading
from time import perf_counter

from conftest import record

from repro.config import MachineConfig
from repro.core.detector import AuditUnit, CCHunter
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.profile import disable_profiling, enable_profiling
from repro.obs.tracing import disable_tracing, enable_tracing
from repro.sim.machine import Machine
from repro.sim.process import BusLockBurst, Process

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_QUANTA = 30
N_TRIALS = 2 if QUICK else 5

#: Absolute throughput floor for the uninstrumented audited session,
#: in quanta per second. The columnar hot path measures ~1600 q/s on a
#: development machine; the floor is set well below that to leave
#: headroom for slow shared CI runners while still catching any
#: regression back toward the ~156 q/s pre-columnar baseline.
FLOOR_QUANTA_PER_SECOND = 400.0

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json",
)


def _run_audited(metrics, n_quanta=N_QUANTA, capture_evidence=False):
    """One audited run: machine + bus monitor + sustained trojan."""
    config = MachineConfig(os_quantum_seconds=0.002)
    machine = Machine(config=config, seed=7, metrics=metrics)
    hunter = CCHunter(
        machine, track_detection_latency=True, metrics=metrics,
        capture_evidence=capture_evidence,
    )
    hunter.audit(AuditUnit.MEMORY_BUS, dt=1000)

    def trojan(proc):
        while True:
            yield BusLockBurst(count=300, period=200)

    machine.spawn(Process("trojan", body=trojan), ctx=0)
    t0 = perf_counter()
    machine.run_quanta(n_quanta)
    return perf_counter() - t0, hunter


class _ScrapeHarness:
    """A live ``/metrics`` endpoint plus a 10 Hz scraper, off-thread.

    The workload under test runs on the main thread against ``registry``
    while a daemon thread hosts a :class:`TelemetryServer` exposing that
    same registry and polls it every 100 ms — the ``telemetry`` mode
    measures the cost of being *scraped*, not just of counting.
    """

    def __init__(self, registry):
        self.registry = registry
        self.scrapes = 0
        self._thread = None
        self._loop = None
        self._stop = None

    def _render(self):
        from repro.obs.telemetry import text_response

        try:
            return text_response(self.registry.render_prometheus())
        except RuntimeError:
            # The workload may register a new metric mid-iteration;
            # one 503'd scrape is fine, crashing the harness is not.
            return text_response("registry busy\n", status=503)

    async def _serve(self, started):
        from repro.obs.telemetry import TelemetryServer, fetch

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = TelemetryServer()
        server.route("/metrics", self._render)
        host, port = await server.start()
        started.set()
        try:
            while not self._stop.is_set():
                try:
                    status, _body = await fetch(host, port, "/metrics")
                    if status == 200:
                        self.scrapes += 1
                except (ConnectionError, OSError):
                    pass
                try:
                    await asyncio.wait_for(self._stop.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    pass
        finally:
            await server.stop()

    def __enter__(self):
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve(started)), daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=5.0):
            raise RuntimeError("telemetry harness failed to start")
        return self

    def __exit__(self, *_exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=5.0)
        return False


def _trial(mode):
    if mode == "off":
        return _run_audited(NULL_REGISTRY)[0]
    if mode == "counters":
        return _run_audited(MetricsRegistry())[0]
    if mode == "evidence":
        return _run_audited(MetricsRegistry(), capture_evidence=True)[0]
    if mode == "profile":
        enable_profiling()
        try:
            return _run_audited(NULL_REGISTRY)[0]
        finally:
            disable_profiling()
    if mode == "telemetry":
        registry = MetricsRegistry()
        with _ScrapeHarness(registry):
            return _run_audited(registry)[0]
    enable_tracing(capacity=8192)
    try:
        return _run_audited(MetricsRegistry())[0]
    finally:
        disable_tracing()


def verdicts_identical_with_capture():
    """Evidence capture must not perturb the verdict in any field."""
    _sec, plain = _run_audited(MetricsRegistry())
    _sec, captured = _run_audited(MetricsRegistry(), capture_evidence=True)
    on_dict = captured.report().to_dict()
    for verdict in on_dict["verdicts"]:
        verdict.pop("evidence", None)
    return on_dict == plain.report().to_dict()


def profile_fidelity():
    """Profiling must neither perturb verdicts nor lose the session.

    Returns ``(verdicts_identical, attribution_coverage)``: the first
    compares a profiled run's report field-for-field against a plain
    one; the second is the fraction of the measured ``run_quanta`` wall
    time the profiler attributed to root stages — the "no dark regions"
    contract (>= 0.9).
    """
    _sec, plain = _run_audited(NULL_REGISTRY)
    profiler = enable_profiling()
    try:
        seconds, profiled = _run_audited(NULL_REGISTRY)
    finally:
        disable_profiling()
    identical = profiled.report().to_dict() == plain.report().to_dict()
    coverage = profiler.attributed_wall() / seconds
    return identical, coverage


def measure_overhead():
    modes = ("off", "counters", "spans", "evidence", "profile", "telemetry")
    timings = {mode: [] for mode in modes}
    for mode in modes:  # per-mode warmup: no mode pays first-run cost
        _trial(mode)
    for round_idx in range(N_TRIALS):
        # Rotate the order each round so no single mode always runs
        # first (the old fixed order made "off" eat every round's
        # warmup drift and benchmark slower than the instrumented
        # modes).
        order = modes[round_idx % len(modes):] + modes[: round_idx % len(modes)]
        for mode in order:
            timings[mode].append(_trial(mode))
    medians = {mode: statistics.median(timings[mode]) for mode in modes}
    profile_identical, profile_coverage = profile_fidelity()
    return {
        "n_quanta": N_QUANTA,
        "n_trials": N_TRIALS,
        "floor_quanta_per_second": FLOOR_QUANTA_PER_SECOND,
        "median_seconds": medians,
        "quanta_per_second": {
            mode: N_QUANTA / sec for mode, sec in medians.items()
        },
        "overhead_vs_off": {
            mode: medians[mode] / medians["off"] - 1.0
            for mode in (
                "counters", "spans", "evidence", "profile", "telemetry",
            )
        },
        "evidence_overhead_vs_counters": (
            medians["evidence"] / medians["counters"] - 1.0
        ),
        "evidence_verdicts_identical": verdicts_identical_with_capture(),
        "profile_verdicts_identical": profile_identical,
        "profile_attribution_coverage": profile_coverage,
    }


def test_obs_overhead(benchmark):
    results = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    if not QUICK:  # quick CI smoke must not rewrite the committed JSON
        with open(_OUT_PATH, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    lines = [
        f"{mode:<9} {results['quanta_per_second'][mode]:8.1f} quanta/s "
        f"(median of {N_TRIALS})"
        for mode in (
            "off", "counters", "spans", "evidence", "profile", "telemetry",
        )
    ]
    lines.append(
        "overhead vs off: counters "
        f"{results['overhead_vs_off']['counters'] * 100:+.1f}%, spans "
        f"{results['overhead_vs_off']['spans'] * 100:+.1f}%, evidence "
        f"{results['overhead_vs_off']['evidence'] * 100:+.1f}%, profile "
        f"{results['overhead_vs_off']['profile'] * 100:+.1f}%, telemetry "
        f"{results['overhead_vs_off']['telemetry'] * 100:+.1f}%"
    )
    lines.append(
        "evidence capture vs counters "
        f"{results['evidence_overhead_vs_counters'] * 100:+.1f}%, "
        "verdicts identical: "
        f"{results['evidence_verdicts_identical']}"
    )
    lines.append(
        "profile attribution coverage "
        f"{results['profile_attribution_coverage'] * 100:.1f}%, "
        "verdicts identical: "
        f"{results['profile_verdicts_identical']}"
    )
    lines.append(f"(written to {_OUT_PATH})")
    record("Extension: instrumentation overhead", *lines)
    # Columnar hot-path floor: the uninstrumented session must clear an
    # absolute throughput bar on any machine (docs/PERFORMANCE.md).
    assert (
        results["quanta_per_second"]["off"] >= FLOOR_QUANTA_PER_SECOND
    ), results
    assert results["evidence_verdicts_identical"], results
    # The profiler must be strictly read-only on verdicts and must
    # account for >= 90% of the measured session wall time — both hold
    # even in quick mode (they are exact properties, not timings).
    assert results["profile_verdicts_identical"], results
    assert results["profile_attribution_coverage"] >= 0.90, results
    if QUICK:
        # Two trials can't resolve few-percent relative overheads; the
        # quick CI smoke only guards the absolute floor and verdict
        # identity above.
        return
    # The default mode (counters) must stay within 10% of fully off.
    assert results["overhead_vs_off"]["counters"] < 0.10, results
    # Evidence capture: < 15% over counters-only, and strictly
    # read-only — the verdicts must be bit-identical either way.
    assert results["evidence_overhead_vs_counters"] < 0.15, results
    # Stage profiling must also fit inside the 10%-of-off envelope.
    assert results["overhead_vs_off"]["profile"] < 0.10, results
    # A live admin endpoint under a 10 Hz scraper must not slow the
    # workload beyond the same 10% envelope (docs/OBSERVABILITY.md).
    assert results["overhead_vs_off"]["telemetry"] < 0.10, results
