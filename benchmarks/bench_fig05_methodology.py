"""Figure 5: event train -> density histogram methodology illustration.

Paper: a bursty train's density histogram departs from the Poisson
distribution a benign train of the same mean rate would follow — the
burst windows form a separate mode in the right tail.
"""

import numpy as np
from conftest import record

from repro.analysis.ascii_plot import render_histogram
from repro.analysis.figures import fig5_methodology
from repro.util.stats import index_of_dispersion, poisson_fit_quality


def test_fig5_methodology(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_methodology(seed=1, n_windows=4096),
        rounds=1,
        iterations=1,
    )
    hist = result.histogram
    # The same-mean Poisson (the figure's dotted line) cannot explain the
    # burst mode in the right tail...
    assert hist[10:].sum() > 0
    assert result.poisson_reference[10:].sum() < 1
    dispersion = index_of_dispersion(hist)
    fit_gap = poisson_fit_quality(hist)
    assert dispersion > 5      # a Poisson train has dispersion 1.0
    assert fit_gap > 0.2
    # ...whereas the background alone (no bursts) is Poisson to the eye.
    rng = np.random.default_rng(1)
    background = np.bincount(rng.poisson(0.4, 4096), minlength=128)
    assert poisson_fit_quality(background) < 0.05
    record(
        "Figure 5: burst train vs Poisson reference",
        f"windows: {hist.sum()}",
        f"burst mode windows (density >= 10): {int(hist[10:].sum())} "
        "(same-mean Poisson explains ~0)",
        f"index of dispersion: {dispersion:.1f} (Poisson = 1.0)",
        f"total-variation gap to the Poisson fit: {fit_gap:.2f} "
        "(background alone: < 0.05)",
        render_histogram(hist, title="density histogram", max_bins=32),
    )
