"""Table I: CC-auditor area, power and latency estimates.

Paper (Cacti 5.3): histogram buffers 0.0028 mm^2 / 2.8 mW / 0.17 ns;
registers 0.0011 / 0.8 / 0.17; conflict-miss detector 0.004 / 5.4 /
0.12. The calibrated analytical model reproduces these exactly at the
paper's structure sizes.
"""

import pytest
from conftest import record

from repro.analysis.tables import table1_rows, table1_text


def test_table1_cost_model(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    values = {name: (a, p, l) for name, a, p, l in rows}
    assert values["histogram_buffers"] == pytest.approx((0.0028, 2.8, 0.17))
    assert values["registers"] == pytest.approx((0.0011, 0.8, 0.17))
    assert values["conflict_miss_detector"] == pytest.approx(
        (0.004, 5.4, 0.12)
    )
    record("Table I: CC-auditor costs (matches paper exactly)", table1_text())
