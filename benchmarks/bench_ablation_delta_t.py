"""Ablation: sensitivity of burst detection to the Δt choice.

Section IV-B step 1 argues Δt must sit between the Poisson regime (too
small: all windows hold 0-1 events) and the normal regime (too large:
bursts and dormancy blur together). This ablation re-analyzes a bus
covert session at Δt from 1/100x to 100x the paper's 100 000 cycles and
shows the likelihood ratio and regime classification across the range —
the paper's value sits in the usable plateau, and the calibration
procedure recovers it from channel parameters alone.
"""

from conftest import record

from repro.analysis.figures import run_channel_session
from repro.core.burst import analyze_histogram
from repro.core.calibration import assess_delta_t, paper_bus_calibration
from repro.core.density import build_density_histogram
from repro.core.event_train import EventTrain
from repro.util.bitstream import Message


def sweep_delta_t():
    run = run_channel_session(
        "membus", Message.random(16, 1), bandwidth_bps=10.0, seed=1
    )
    horizon = run.quanta * run.machine.quantum_cycles
    times = run.machine.bus_lock_tap.times_in(0, horizon)
    train = EventTrain(times)
    rows = []
    for dt in (1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        hist = build_density_histogram(train, dt, 0, horizon).hist
        analysis = analyze_histogram(hist)
        regime = assess_delta_t(times, dt, 0, horizon)
        rows.append((dt, analysis.likelihood_ratio, analysis.significant,
                     regime))
    return rows


def test_ablation_delta_t(benchmark):
    rows = benchmark.pedantic(sweep_delta_t, rounds=1, iterations=1)
    lines = []
    for dt, lr, significant, regime in rows:
        marker = "  <- paper's Δt" if dt == 100_000 else ""
        lines.append(
            f"Δt = {dt:>10,} cycles: LR {lr:.3f}, "
            f"significant={significant}, {regime.value}{marker}"
        )
    by_dt = {dt: (lr, sig, regime) for dt, lr, sig, regime in rows}
    # The paper's Δt is in the usable regime with a significant burst mode.
    assert by_dt[100_000][1]
    assert by_dt[100_000][2].name == "USABLE"
    calibration = paper_bus_calibration()
    lines.append(
        f"calibration from channel parameters: {calibration.summary()}"
    )
    assert calibration.delta_t == 100_000
    record("Ablation: Δt sensitivity (memory bus)", *lines)
