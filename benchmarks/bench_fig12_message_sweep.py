"""Figure 12: randomly encoded message patterns.

Paper: 256 random 64-bit messages produce only small variations in the
density histograms (mean with min/max ranges) and the likelihood ratios
stay above 0.9; cache correlogram deviations are insignificant. The
bench runs a representative sample (pass n_messages=256, n_bits=64 to
the figure function for the full-scale sweep).
"""

import numpy as np
from conftest import record

from repro.analysis.figures import fig12_message_sweep


def test_fig12_message_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: fig12_message_sweep(seed=1, n_messages=8, n_bits=16),
        rounds=1,
        iterations=1,
    )
    lines = []
    for r in results:
        if r.likelihood_ratios:
            spread = r.max_hist - r.min_hist
            burst_bins = np.nonzero(r.mean_hist[1:])[0] + 1
            lines.append(
                f"{r.kind:<8}: min LR over messages = "
                f"{r.min_likelihood_ratio:.3f} (paper: > 0.9); burst bins "
                f"{burst_bins.min()}..{burst_bins.max()}, max bin spread "
                f"{int(spread.max())}"
            )
            assert r.min_likelihood_ratio > 0.9
        else:
            peaks = np.array(r.cache_peaks)
            lines.append(
                f"{r.kind:<8}: ACF peaks over messages = "
                f"{peaks.min():.3f}..{peaks.max():.3f} "
                "(paper: insignificant deviations)"
            )
            assert peaks.min() > 0.6
            assert peaks.max() - peaks.min() < 0.25
    record("Figure 12: 8 random message patterns per channel", *lines)
