"""Figure 4: indicator-event trains for the bus and divider channels.

Paper: thick bands (bursts) of events appear whenever the trojan
transmits a '1'. Reproduced shape: virtually all indicator events fall in
'1'-bit periods.
"""

from conftest import record

from repro.analysis.ascii_plot import render_event_train
from repro.analysis.figures import fig4_event_trains


def test_fig4_event_trains(benchmark):
    result = benchmark.pedantic(
        lambda: fig4_event_trains(seed=1, n_bits=16, bandwidth_bps=10.0),
        rounds=1,
        iterations=1,
    )
    bit_period = 250_000_000
    bus_frac = result.burst_fraction(result.bus_times, bit_period)
    div_frac = result.burst_fraction(result.divider_times, bit_period)
    assert bus_frac > 0.9
    assert div_frac > 0.9
    t0, t1 = result.window
    record(
        "Figure 4: event trains (bursts during '1' bits)",
        f"message: {''.join(map(str, result.message.bits))}",
        f"bus lock events: {result.bus_times.size}, "
        f"{100 * bus_frac:.1f}% inside '1' bits",
        f"divider wait events (thinned): {result.divider_times.size}, "
        f"{100 * div_frac:.1f}% inside '1' bits",
        render_event_train(result.bus_times, t0, t1, title="bus lock train"),
        render_event_train(
            result.divider_times, t0, t1, title="divider wait train"
        ),
    )
