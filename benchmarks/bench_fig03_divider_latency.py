"""Figure 3: spy loop-iteration latency over a 64-bit message (divider).

Paper: loop latency is high while the trojan saturates the divider ('1')
and low otherwise ('0'). Reproduced shape: bimodal iteration latencies,
zero decode errors.
"""

from conftest import record

from repro.analysis.ascii_plot import render_series
from repro.analysis.figures import fig3_divider_latency


def test_fig3_divider_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_divider_latency(seed=1, n_bits=64, bandwidth_bps=10.0),
        rounds=1,
        iterations=1,
    )
    assert result.ber == 0.0
    assert result.mean_when_one > result.mean_when_zero
    record(
        "Figure 3: integer divider channel, spy loop latency",
        f"samples kept: {result.latencies.size}",
        f"mean iteration latency during '1': {result.mean_when_one:.0f} cycles",
        f"mean iteration latency during '0': {result.mean_when_zero:.0f} cycles",
        f"bit error rate: {result.ber:.3f}",
        render_series(result.latencies, title="iteration latency series"),
    )
