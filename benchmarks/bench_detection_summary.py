"""Headline result: every channel detected, zero false alarms.

Paper (Section I / VI): CC-Hunter successfully detects all three covert
timing channels at varying bandwidths and message patterns, with zero
false alarms over the benign benchmark pairs tested.
"""

from conftest import record

from repro.analysis.figures import detection_summary


def test_detection_summary(benchmark):
    summary = benchmark.pedantic(
        lambda: detection_summary(seed=1, n_bits=16, n_quanta_benign=6),
        rounds=1,
        iterations=1,
    )
    assert summary.all_detected
    assert summary.false_alarms == 0
    record(
        "Detection summary (paper's headline claim)",
        *(
            f"{kind:<8}: {'DETECTED' if det else 'missed'}"
            for kind, det in summary.channel_detections.items()
        ),
        f"false alarms: {summary.false_alarms} of {summary.pairs_tested} "
        "benign pairs",
    )
