"""Figure 14: false-alarm study over benign benchmark pairs.

Paper: gobmk+sjeng, bzip2+h264ref, stream x2, mailserver x2 and
webserver x2 run as hyperthreads; none trips any detector. The
mailserver pair shows a weak second bus-lock distribution (bins #5-#8)
whose likelihood ratio stays below 0.5; the webserver pair shows brief
cache-train periodicity that the oscillation detector rejects.
"""

from conftest import record

from repro.analysis.ascii_plot import render_histogram
from repro.analysis.figures import fig14_false_alarms


def test_fig14_false_alarms(benchmark):
    results = benchmark.pedantic(
        lambda: fig14_false_alarms(seed=9, n_quanta=8),
        rounds=1,
        iterations=1,
    )
    lines = []
    for r in results:
        assert not r.any_alarm, r.pair
        lines.append(
            f"{'+'.join(r.pair):<24} bus LR {r.bus_lr:.3f}, divider LR "
            f"{r.divider_lr:.3f}, cache best peak {r.cache_max_peak:.2f} "
            "-> no alarm"
        )
    mail = next(r for r in results if r.pair[0] == "mailserver")
    assert 0.0 < mail.bus_lr < 0.5  # the weak second mode exists
    lines.append(
        render_histogram(
            mail.bus_hist, title="mailserver bus-lock density "
            "(weak mode at bins ~5-8, LR < 0.5)",
            max_bins=32,
        )
    )
    lines.append("false alarms: 0 of 5 pairs (paper: zero false alarms)")
    record("Figure 14: false-alarm study", *lines)
