# Convenience targets for the CC-Hunter reproduction.

PYTHON ?= python

.PHONY: install test lint bench bench-check profile examples figures \
	report serve-demo clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Matches the tier-1 invocation: runs straight from the source tree,
# no editable install needed.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Same invocation as the CI lint job (requires `pip install ruff`).
lint:
	ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regression gate: rerun the registered benches and compare against the
# committed BENCH_*.json baselines (exit 8 on regression). Quick mode
# mirrors the CI smoke run; `make bench-check QUICK=` forces full runs.
QUICK ?= --quick
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro bench check $(QUICK)

# Per-stage latency attribution for one detection run
# (docs/PERFORMANCE.md, "Profiling and flamegraphs").
profile:
	PYTHONPATH=src $(PYTHON) -m repro detect --channel membus \
		--bandwidth 1000 --bits 8 --no-noise \
		--profile-out profile.json > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro profile profile.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/cloud_colocation_audit.py
	$(PYTHON) examples/smt_divider_sweep.py
	$(PYTHON) examples/false_alarm_screening.py
	$(PYTHON) examples/detect_and_respond.py
	$(PYTHON) examples/offline_forensics.py
	$(PYTHON) examples/streaming_audit.py
	$(PYTHON) examples/metrics_dashboard.py
	$(PYTHON) examples/forensic_report.py
	$(PYTHON) examples/multi_tenant_audit.py

# Multi-tenant detection service demo (docs/SERVING.md): start the
# service, stream one covert tenant over a lossy link and one benign
# tenant at it, then SIGINT for a graceful drain and summary.
SERVE_PORT ?= 7341
serve-demo:
	@PYTHONPATH=src $(PYTHON) -m repro serve --port $(SERVE_PORT) & \
	SERVE_PID=$$!; \
	sleep 1; \
	PYTHONPATH=src $(PYTHON) -m repro stream --tenant covert-demo \
		--port $(SERVE_PORT) --profile covert --quanta 24 \
		--inject drop:0.2 || test $$? -eq 3; \
	PYTHONPATH=src $(PYTHON) -m repro stream --tenant benign-demo \
		--port $(SERVE_PORT) --profile benign --quanta 24; \
	kill -INT $$SERVE_PID; \
	wait $$SERVE_PID

# End-to-end forensics demo: run a detection with evidence capture and
# render the self-contained HTML report (docs/FORENSICS.md).
report:
	$(PYTHON) -m repro detect --channel membus --bandwidth 1000 \
		--bits 8 --no-noise --evidence-out evidence.json \
		--timeseries-out metrics.jsonl --report-out report.html
	@echo "open report.html in a browser"

figures:
	$(PYTHON) -m repro figure 2
	$(PYTHON) -m repro figure 3
	$(PYTHON) -m repro figure 6
	$(PYTHON) -m repro figure 7
	$(PYTHON) -m repro figure 8
	$(PYTHON) -m repro figure 13
	$(PYTHON) -m repro table1

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis benchmarks/results.txt profile.json
