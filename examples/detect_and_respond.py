#!/usr/bin/env python
"""The full loop the paper advocates: detect first, then mitigate.

Phase 1 — a cache covert channel runs under CC-Hunter audit and is
detected (with the suspect context pair identified from the conflict
train). Phase 2 — the operator way-partitions the cache between the
suspects and replays the workload: the channel's conflict medium is gone
and its decode collapses, while CC-Hunter confirms silence. Run with::

    python examples/detect_and_respond.py
"""


from repro import (
    AuditUnit,
    CacheCovertChannel,
    CCHunter,
    ChannelConfig,
    Machine,
    Message,
    background_noise_processes,
)
from repro.core.event_train import dominant_pair_series
from repro.mitigation import partition_cache_ways


def run_phase(mitigate: bool, seed: int = 77):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.CACHE)

    secret = Message.random(16, rng=3)
    channel = CacheCovertChannel(
        machine,
        ChannelConfig(message=secret, bandwidth_bps=200.0),
        n_sets_total=128,
    )
    channel.deploy()
    if mitigate:
        partition_cache_ways(
            machine, suspect_contexts=(channel.trojan_ctx, channel.spy_ctx)
        )
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta,
        avoid_contexts=(channel.trojan_ctx, channel.spy_ctx), seed=seed,
    )
    machine.run_quanta(quanta)
    return machine, hunter, channel


def main() -> None:
    print("=== phase 1: unprotected machine ===")
    machine, hunter, channel = run_phase(mitigate=False)
    verdict = hunter.report().verdicts[0]
    print(f"channel BER: {channel.bit_error_rate():.3f}")
    print(verdict.summary())

    _, reps, vics = machine.cache_miss_tap.records()
    _, _, pair = dominant_pair_series(reps, vics)
    print(f"suspect context pair from the conflict train: {pair}")
    print(f"(ground truth: trojan ctx {channel.trojan_ctx}, "
          f"spy ctx {channel.spy_ctx})")

    print("\n=== phase 2: cache way-partitioned between the suspects ===")
    machine, hunter, channel = run_phase(mitigate=True)
    verdict = hunter.report().verdicts[0]
    print(f"channel BER: {channel.bit_error_rate():.3f} "
          "(decode destroyed)")
    print(verdict.summary())


if __name__ == "__main__":
    main()
