#!/usr/bin/env python
"""Screen benign workload pairs for false alarms (Figure 14 workflow).

A data-center operator worried about alarm fatigue replays the paper's
false-alarm study: pairs of CPU-, memory- and I/O-intensive programs run
as hyperthreads while CC-Hunter audits the bus, the divider and the
cache. None of them should trip a detector — including the mailserver
pair, whose fsync clusters form a real (but weak) second bus-lock
distribution. Run with::

    python examples/false_alarm_screening.py
"""

from repro import AuditUnit, CCHunter, Machine
from repro.analysis.ascii_plot import render_histogram
from repro.analysis.figures import aggregate_histogram
from repro.core.burst import analyze_histogram
from repro.workloads import mailserver, stream, webserver, workload_process
from repro.workloads.spec import bzip2, gobmk, h264ref, sjeng

PAIRS = [
    (gobmk, sjeng),          # both bus-heavy
    (bzip2, h264ref),        # both division-heavy
    (stream, stream),        # streaming memory
    (mailserver, mailserver),
    (webserver, webserver),
]


def screen(pair, n_quanta=8, seed=9):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    hunter.audit(AuditUnit.DIVIDER, core=0)
    cache_hunter = CCHunter(machine)
    cache_hunter.audit(AuditUnit.CACHE)
    machine.spawn(
        workload_process(pair[0], machine, n_quanta, seed=1, instance=0),
        ctx=0,
    )
    machine.spawn(
        workload_process(pair[1], machine, n_quanta, seed=2, instance=1),
        ctx=1,
    )
    machine.run_quanta(n_quanta)
    return machine, hunter, cache_hunter


def main() -> None:
    alarms = 0
    for pair in PAIRS:
        name = f"{pair[0].name}+{pair[1].name}"
        machine, hunter, cache_hunter = screen(pair)
        report = hunter.report()
        cache_verdict = cache_hunter.report().verdicts[0]
        tripped = report.any_detected or cache_verdict.detected
        alarms += tripped
        bus_hist = aggregate_histogram(hunter, AuditUnit.MEMORY_BUS)
        bus_lr = analyze_histogram(bus_hist).likelihood_ratio
        print(
            f"{name:<26} bus LR {bus_lr:.3f} | cache peak "
            f"{cache_verdict.max_peak or 0:.2f} | "
            f"{'ALARM' if tripped else 'clear'}"
        )
        if pair[0].name == "mailserver":
            print(render_histogram(
                bus_hist, max_bins=24,
                title="  mailserver's weak second mode (bins ~5-8, "
                "below the 0.5 LR threshold):",
            ))
    print(f"\nfalse alarms: {alarms} of {len(PAIRS)} pairs "
          "(paper: zero false alarms)")


if __name__ == "__main__":
    main()
