#!/usr/bin/env python
"""Screen benign workload pairs for false alarms (Figure 14 workflow).

A data-center operator worried about alarm fatigue replays the paper's
false-alarm study: pairs of CPU-, memory- and I/O-intensive programs run
as hyperthreads while CC-Hunter audits the bus, the divider and the
cache. None of them should trip a detector — including the mailserver
pair, whose fsync clusters form a real (but weak) second bus-lock
distribution.

The pairs are independent trials, so the screen fans them out through
``repro.exec.TrialRunner`` — results are bit-identical at any job
count. Run with::

    python examples/false_alarm_screening.py          # serial
    python examples/false_alarm_screening.py --jobs 0 # every CPU
"""

import argparse
import sys

from repro.analysis.ascii_plot import render_histogram
from repro.analysis.figures import fig14_false_alarms
from repro.workloads import mailserver, stream, webserver
from repro.workloads.spec import bzip2, gobmk, h264ref, sjeng

PAIRS = [
    (gobmk, sjeng),          # both bus-heavy
    (bzip2, h264ref),        # both division-heavy
    (stream, stream),        # streaming memory
    (mailserver, mailserver),
    (webserver, webserver),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial, 0 = all CPUs)",
    )
    args = parser.parse_args()

    def progress(done: int, total: int) -> None:
        print(f"  screened {done}/{total} pairs", file=sys.stderr)

    results = fig14_false_alarms(
        pairs=PAIRS, n_quanta=8, seed=9, jobs=args.jobs, progress=progress
    )
    alarms = 0
    for result in results:
        name = "+".join(result.pair)
        alarms += result.any_alarm
        print(
            f"{name:<26} bus LR {result.bus_lr:.3f} | cache peak "
            f"{result.cache_max_peak:.2f} | "
            f"{'ALARM' if result.any_alarm else 'clear'}"
        )
        if result.pair[0] == "mailserver":
            print(render_histogram(
                result.bus_hist, max_bins=24,
                title="  mailserver's weak second mode (bins ~5-8, "
                "below the 0.5 LR threshold):",
            ))
    print(f"\nfalse alarms: {alarms} of {len(PAIRS)} pairs "
          "(paper: zero false alarms)")


if __name__ == "__main__":
    main()
