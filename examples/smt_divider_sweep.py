#!/usr/bin/env python
"""SMT divider channel across bandwidths: detection never lets go.

Reproduces the spirit of Figure 10's middle column at small scale: the
integer-divider channel is run at several bandwidths as hyperthread
co-residents, and CC-Hunter's burst detector reports the likelihood
ratio at each — it stays above 0.9 throughout, only the histogram
magnitudes change. Run with::

    python examples/smt_divider_sweep.py
"""

import numpy as np

from repro import (
    AuditUnit,
    CCHunter,
    ChannelConfig,
    DividerCovertChannel,
    Machine,
    Message,
    background_noise_processes,
)
from repro.analysis.ascii_plot import render_histogram
from repro.core.burst import analyze_histogram


def run_at(bandwidth_bps: float, n_bits: int, seed: int = 4):
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.DIVIDER, core=0)
    channel = DividerCovertChannel(
        machine,
        ChannelConfig(message=Message.random(n_bits, seed),
                      bandwidth_bps=bandwidth_bps),
    )
    channel.deploy(core=0)
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta, avoid_contexts=(0, 1), seed=seed
    )
    machine.run_quanta(quanta)
    aggregate = np.sum(
        hunter.burst_histograms(AuditUnit.DIVIDER, core=0), axis=0
    )
    analysis = analyze_histogram(aggregate)
    verdict = hunter.report().verdicts[0]
    return aggregate, analysis, verdict, channel


def main() -> None:
    for bandwidth, n_bits in ((1.0, 4), (10.0, 8), (100.0, 32), (1000.0, 300)):
        aggregate, analysis, verdict, channel = run_at(bandwidth, n_bits)
        print(f"\n=== {bandwidth:g} bps ({n_bits} bits) ===")
        print(
            f"likelihood ratio {analysis.likelihood_ratio:.3f}, "
            f"burst mode at bin #{int(np.argmax(aggregate[1:])) + 1}, "
            f"detected={verdict.detected}, BER={channel.bit_error_rate():.2f}"
        )
        print(render_histogram(aggregate, max_bins=110))


if __name__ == "__main__":
    main()
