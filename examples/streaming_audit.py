#!/usr/bin/env python
"""Streaming audit: watch CC-Hunter's verdict evolve as quanta arrive.

The detection pipeline is incremental — every analyzer folds each OS
quantum's observation into bounded running state, so verdicts are
available *during* the run, not only from the terminal ``report()``.
This example attaches a collecting sink plus a live printer to a
memory-bus covert session and shows the quantum at which the channel
first becomes detectable versus the end-of-run report. Run with::

    python examples/streaming_audit.py
"""

from repro import (
    AuditUnit,
    CCHunter,
    ChannelConfig,
    Machine,
    MemoryBusCovertChannel,
    Message,
    background_noise_processes,
)
from repro.pipeline import CollectingSink, StreamPrinterSink


def main() -> None:
    machine = Machine(seed=77)

    # Two sinks: one records every per-quantum report, one prints a
    # one-line verdict update as each quantum completes.
    collector = CollectingSink()
    hunter = CCHunter(machine, sinks=[collector, StreamPrinterSink()])
    hunter.audit(AuditUnit.MEMORY_BUS)

    secret = Message.random(48, rng=5)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=secret, bandwidth_bps=50.0)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)

    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=77
    )

    print(f"streaming {quanta} OS quanta (verdict updates below)...")
    machine.run_quanta(quanta)

    first = hunter.session.first_detection_quantum("membus")
    print()
    if first is None:
        print("the channel was never flagged during the run")
    else:
        print(
            f"first detection: quantum {first} "
            f"({(first + 1) * machine.config.os_quantum_seconds:.1f} s into "
            f"a {quanta * machine.config.os_quantum_seconds:.1f} s session"
            " — no need to wait for the end-of-run report)"
        )
    online = collector.first_detection("membus")
    assert online == first, (online, first)

    print("\nend-of-run report for comparison:")
    print(hunter.report().render())


if __name__ == "__main__":
    main()
