#!/usr/bin/env python
"""Forensic provenance: capture evidence, sample metrics, render a report.

A verdict is an accusation; this example shows the paper trail behind
one. It runs a memory-bus covert channel under audit with
``capture_evidence=True``, samples the metrics registry after every OS
quantum, then produces the three forensic artifacts the CLI's
``--evidence-out`` / ``--timeseries-out`` / ``--report-out`` flags
write (docs/FORENSICS.md):

- an evidence document — per-unit LR trajectories, density-histogram
  snapshots frozen at threshold crossings, cluster assignments, and
  the verdict timeline, all round-trippable through JSON;
- a metrics time-series JSONL — the registry's trajectory, one flat
  sample per quantum;
- a self-contained HTML forensic report rendering both (plus the
  Markdown flavor, excerpted below).

Run with::

    python examples/forensic_report.py
"""

import tempfile
from pathlib import Path

from repro import (
    AuditUnit,
    CCHunter,
    ChannelConfig,
    Machine,
    MemoryBusCovertChannel,
    Message,
)
from repro.obs.evidence import load_evidence, write_evidence
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    MetricsSampler,
    load_jsonl,
    series_keys,
    series_values,
)
from repro.report import render_report


def main() -> None:
    reg = MetricsRegistry()
    machine = Machine(seed=11, metrics=reg)
    hunter = CCHunter(
        machine,
        track_detection_latency=True,
        metrics=reg,
        capture_evidence=True,  # strictly read-only: same verdicts
    )
    hunter.audit(AuditUnit.MEMORY_BUS)

    secret = Message.random(24, rng=9)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=secret, bandwidth_bps=100.0)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)

    sampler = MetricsSampler(registry=reg, every_quanta=1, source="example")
    machine.on_quantum_end(
        lambda quantum, t0, t1: sampler.maybe_sample(quantum=quantum)
    )

    quanta = channel.quanta_needed()
    print(f"auditing {quanta} OS quanta with evidence capture on...")
    machine.run_quanta(quanta)
    report = hunter.session.close()
    sampler.sample(label="close")

    # --- artifact 1: the evidence document (what --evidence-out writes)
    bundles = hunter.session.evidence()
    for unit, bundle in bundles.items():
        d = bundle.to_dict()
        print(
            f"  [{unit}] {len(d['lr_trajectory'])} LR points, "
            f"{len(d['histogram_snapshots'])} histogram snapshots, "
            f"{len(d['verdict_timeline'])} verdict flips"
        )

    with tempfile.TemporaryDirectory() as tmp:
        evidence_path = Path(tmp) / "evidence.json"
        series_path = Path(tmp) / "metrics.jsonl"
        meta = {
            "command": "examples/forensic_report.py",
            "channel": "membus",
            "seed": 11,
            "lr_threshold": hunter.lr_threshold,
            "report": report.to_dict(),
        }
        meta["report"]["verdicts"] = [
            {k: v for k, v in verdict.items() if k != "evidence"}
            for verdict in meta["report"]["verdicts"]
        ]
        write_evidence(evidence_path, bundles, meta=meta)

        # --- artifact 2: the time series (what --timeseries-out writes)
        n = sampler.write_jsonl(series_path)
        _header, records = load_jsonl(series_path)
        print(f"\n{n} metric samples; {len(series_keys(records))} series. "
              "Bus-lock events over time:")
        points = series_values(
            [r for r in records if r.get("quantum") is not None],
            'cchunter_source_channel_events_total{channel="membus"}',
        )
        for x, value in points[:: max(1, len(points) // 6)]:
            bar = "#" * int(40 * value / max(v for _, v in points))
            print(f"  q{int(x):3d} {int(value):7d} {bar}")

        # --- artifact 3: the report (what --report-out / `repro report`
        # write). HTML is self-contained; Markdown suits terminals.
        doc = load_evidence(evidence_path)  # exact round-trip
        html = render_report(doc, "html", timeseries=records)
        out = Path("forensic_report.html")
        out.write_text(html)
        print(f"\nself-contained HTML report -> {out} "
              f"({len(html) / 1024:.0f} KiB, zero external requests)")

        md = render_report(doc, "md")
        head = md.splitlines()[:14]
        print("\nMarkdown flavor, first lines:\n")
        print("\n".join(f"  {line}" for line in head))


if __name__ == "__main__":
    main()
