#!/usr/bin/env python
"""Live ASCII metrics dashboard: watch the registry during an audit.

Every layer of the stack instruments itself against a shared
:class:`~repro.obs.metrics.MetricsRegistry` — the simulator counts
quanta and events, the event source counts per-channel indicator
events, the analyzers count Δt windows and accumulator saturations,
and the session times every analyzer push. This example re-renders a
small dashboard from that registry after each OS quantum (via a
quantum hook), then dumps the final Prometheus text exposition — the
same view ``python -m repro detect --metrics-out`` exports. Run with::

    python examples/metrics_dashboard.py
"""

from repro import (
    AuditUnit,
    CCHunter,
    ChannelConfig,
    Machine,
    MemoryBusCovertChannel,
    Message,
)
from repro.obs.metrics import MetricsRegistry


def render_dashboard(
    reg: MetricsRegistry, quantum: int, locks_delta: int
) -> str:
    quanta = reg.counter("cchunter_session_quanta_total").value
    locks = reg.counter(
        "cchunter_source_channel_events_total", labels={"channel": "membus"}
    ).value
    windows = reg.counter(
        "cchunter_analyzer_windows_total", labels={"unit": "membus"}
    ).value
    push = reg.histogram(
        "cchunter_analyzer_push_seconds", labels={"unit": "membus"}
    )
    push_ms = 1e3 * push.sum / push.count if push.count else 0.0
    first = reg.gauge(
        "cchunter_first_detection_quantum", labels={"unit": "membus"}
    ).value
    detected = "-" if first < 0 else f"q{int(first)}"
    bar = "#" * min(40, locks_delta // 1000)
    return (
        f"[q{quantum:3d}] quanta={int(quanta):3d} "
        f"bus locks={int(locks):6d} (+{locks_delta:<6d}) {bar:<40} "
        f"Δt windows={int(windows):7d} push={push_ms:6.2f} ms/q "
        f"first detection={detected}"
    )


def main() -> None:
    # A private registry keeps this dashboard's numbers isolated from
    # anything else instrumenting the process default.
    reg = MetricsRegistry()
    machine = Machine(seed=77, metrics=reg)
    hunter = CCHunter(machine, track_detection_latency=True, metrics=reg)
    hunter.audit(AuditUnit.MEMORY_BUS)

    secret = Message.random(48, rng=5)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=secret, bandwidth_bps=50.0)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)

    # The hook fires after each quantum's events (and the source's emit,
    # registered first), so the registry already reflects that quantum.
    locks = reg.counter(
        "cchunter_source_channel_events_total", labels={"channel": "membus"}
    )
    seen = [0]

    def dashboard_hook(quantum: int, t0: int, t1: int) -> None:
        delta, seen[0] = int(locks.value) - seen[0], int(locks.value)
        print(render_dashboard(reg, quantum, delta))

    machine.on_quantum_end(dashboard_hook)

    quanta = channel.quanta_needed()
    print(f"auditing {quanta} OS quanta (one dashboard line each)...\n")
    machine.run_quanta(quanta)

    print("\nfinal Prometheus exposition (what --metrics-out exports):\n")
    text = reg.render_prometheus()
    shown = [
        line for line in text.splitlines()
        if not line.startswith("#") and "_bucket" not in line
    ]
    print("\n".join(shown))


if __name__ == "__main__":
    main()
