#!/usr/bin/env python
"""Cloud co-location audit: catch a cross-tenant L2 cache channel.

The scenario the paper's introduction motivates: two colluding tenants
(a trojan inside a victim's enclave, a spy in a sibling VM) exfiltrate
data through shared-L2 conflict misses, Xu et al. style. A cloud
operator runs CC-Hunter's cache audit over the machine; the oscillation
detector exposes the channel and estimates how many cache sets it uses.
Run with::

    python examples/cloud_colocation_audit.py
"""

from repro import (
    AuditUnit,
    CacheCovertChannel,
    CCHunter,
    ChannelConfig,
    Machine,
    Message,
    background_noise_processes,
)
from repro.analysis.ascii_plot import render_correlogram


def main() -> None:
    machine = Machine(seed=99)

    # Operator-side: audit the shared L2.
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.CACHE)

    # Tenant-side: a 256-set conflict-miss ping-pong at 100 bits/s.
    secret = Message.random(24, rng=5)
    channel = CacheCovertChannel(
        machine,
        ChannelConfig(message=secret, bandwidth_bps=100.0),
        n_sets_total=256,
    )
    channel.deploy()  # trojan and spy on different cores, shared L2

    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta,
        avoid_contexts=(channel.trojan_ctx, channel.spy_ctx), seed=99,
    )

    print(f"simulating {quanta} quanta of co-located tenants...")
    machine.run_quanta(quanta)

    print(f"\ntenants' channel worked: BER {channel.bit_error_rate():.3f}")

    report = hunter.report()
    print("\n" + report.render())

    verdict = report.verdict_for("cache")
    if verdict.detected and verdict.dominant_period:
        print(
            f"\nestimated covert working set: ~{verdict.dominant_period:.0f}"
            f" cache sets (ground truth: {channel.n_sets_total})"
        )
    analyses = [a for a in hunter.cache_analyses() if a.significant]
    if analyses:
        best = max(analyses, key=lambda a: a.max_peak)
        print(render_correlogram(
            best.acf, title="\nstrongest window's autocorrelogram",
            marker_lags=best.peak_lags.tolist(),
        ))


if __name__ == "__main__":
    main()
