#!/usr/bin/env python
"""Quickstart: detect a memory-bus covert timing channel.

Builds the paper's machine (quad-core, 2-way SMT, shared L2), deploys a
trojan/spy pair that leaks a 64-bit credit card number through memory-bus
locking, adds three benign interfering processes, and lets CC-Hunter
audit the bus. Run with::

    python examples/quickstart.py
"""

from repro import (
    AuditUnit,
    CCHunter,
    ChannelConfig,
    Machine,
    MemoryBusCovertChannel,
    Message,
    background_noise_processes,
)


def main() -> None:
    machine = Machine(seed=2024)

    # The administrator points one CC-auditor monitor at the memory bus.
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)

    # The adversary: a trojan/spy pair leaking a credit card number at
    # 10 bits/s by locking the bus with atomic unaligned accesses.
    secret = Message.random_credit_card(rng=7)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=secret, bandwidth_bps=10.0)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)

    # The environment: at least three other active processes (threat model).
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=2024
    )

    print(f"simulating {quanta} OS quanta ({quanta * 0.1:.1f} s virtual)...")
    machine.run_quanta(quanta)

    print(f"\nspy decoded the secret with BER {channel.bit_error_rate():.3f}")
    print(f"  sent:    {''.join(map(str, secret.bits[:32]))}...")
    decoded = "".join(map(str, channel.decoded_bits[:32]))
    print(f"  decoded: {decoded}...")

    print("\n" + hunter.report().render())


if __name__ == "__main__":
    main()
