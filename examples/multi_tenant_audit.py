#!/usr/bin/env python
"""Multi-tenant audit: one detection service, a fleet of 50 tenants.

The serving scenario from docs/SERVING.md: a cloud operator points the
observation streams of a whole rack at one ``repro.serve`` instance.
Most tenants are benign background noise; a few run bus-locking covert
senders, and a few of those sit behind lossy collection links (frames
dropped or stalled in flight). The service multiplexes everything into
a sharded pool of detection sessions, sheds load if a stream floods it,
and keeps per-tenant health honest: lossy evidence means a DEGRADED
verdict, never a silently confident one.

The sweep prints a fleet summary, then a forensic close-up of one
flagged tenant. Run with::

    python examples/multi_tenant_audit.py
"""

import asyncio

from repro.faults.wire import build_link
from repro.serve import DetectionService, ServeConfig, stream_tenant
from repro.serve.traffic import CHANNELS, make_observations

N_TENANTS = 50
N_QUANTA = 20
#: Tenant index -> (profile, fault spec for its collection link).
COVERT = {7: None, 19: "drop:0.2", 31: None, 42: "drop:0.15,stall:0.1:0.002"}


async def audit_fleet():
    service = DetectionService(
        config=ServeConfig(
            port=0,
            shards=4,
            max_tenants=N_TENANTS + 8,
            max_resident_sessions=N_TENANTS + 8,
        )
    )
    host, port = await service.start()
    print(
        f"detection service on {host}:{port} — auditing {N_TENANTS} "
        f"tenants ({len(COVERT)} covert, 2 behind lossy links)\n"
    )

    async def one(index):
        profile = "covert" if index in COVERT else "benign"
        link = build_link(COVERT.get(index), seed=index)
        return await stream_tenant(
            host,
            port,
            f"tenant-{index:02d}",
            CHANNELS,
            make_observations(profile, N_QUANTA, seed=index),
            link=link,
        )

    try:
        results = await asyncio.gather(*(one(i) for i in range(N_TENANTS)))
    finally:
        await service.stop()
    return results


def main() -> None:
    results = asyncio.run(audit_fleet())
    flagged = [r for r in results if r.report.any_detected]
    degraded = [r for r in results if r.report.health != "ok"]

    print(f"{'tenant':<12} {'folded':>6} {'shed':>5} {'health':<9} verdict")
    for result in results:
        goodbye = result.goodbye
        verdict = (
            "COVERT CHANNEL" if result.report.any_detected else "clear"
        )
        marker = " <--" if result.report.any_detected else ""
        print(
            f"{result.tenant:<12} {goodbye.received:>6} {goodbye.shed:>5} "
            f"{result.report.health:<9} {verdict}{marker}"
        )

    print(
        f"\nfleet: {len(results)} audited, {len(flagged)} flagged, "
        f"{len(degraded)} with degraded evidence"
    )
    assert {r.tenant for r in flagged} == {
        f"tenant-{i:02d}" for i in COVERT
    }, "flagged set should be exactly the covert tenants"

    # Forensic close-up: prefer a tenant whose evidence arrived lossy —
    # the verdict must spell out what was missing.
    suspect = max(flagged, key=lambda r: r.goodbye.report.health != "ok")
    print(f"\n--- forensic report: {suspect.tenant} ---")
    print(suspect.report.render())
    verdict = suspect.report.verdicts[0]
    print(
        f"likelihood ratio {verdict.max_likelihood_ratio:.3f} over "
        f"{verdict.quanta_analyzed} quanta; "
        f"{len(suspect.verdicts)} interim verdict frames received"
    )
    if verdict.notes:
        print("evidence caveats:", "; ".join(verdict.notes))


if __name__ == "__main__":
    main()
