#!/usr/bin/env python
"""Offline forensics: record a session, analyze everything afterwards.

The online CC-auditor monitors at most two units (the paper's hardware
tradeoff); the recorded indicator events, however, can be analyzed
offline across *every* unit, at any window granularity, long after the
fact. This example records a multiplier-channel session (a unit the
administrator did not think to audit online) and convicts it from the
archive. Run with::

    python examples/offline_forensics.py
"""

import tempfile
from pathlib import Path

from repro import (
    ChannelConfig,
    Machine,
    Message,
    MultiplierCovertChannel,
    background_noise_processes,
)
from repro.analysis.capacity import assess_channel
from repro.traces import analyze_traces, export_traces, load_traces


def main() -> None:
    machine = Machine(seed=314)
    secret = Message.random(30, rng=6)
    channel = MultiplierCovertChannel(
        machine, ChannelConfig(message=secret, bandwidth_bps=100.0)
    )
    channel.deploy(core=1)
    quanta = channel.quanta_needed()
    background_noise_processes(
        machine, n_quanta=quanta,
        avoid_contexts=(channel.trojan_ctx, channel.spy_ctx), seed=314,
    )
    print(f"running {quanta} quanta (no online multiplier audit)...")
    machine.run_quanta(quanta)
    print(f"the channel worked: BER {channel.bit_error_rate():.3f}, "
          + assess_channel(100.0, channel.bit_error_rate()).summary())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "incident-2026-07-06.npz"
        archive = export_traces(machine, path)
        print(
            f"\nrecorded {archive.n_quanta} quanta to {path.name}: "
            f"{archive.cache_times.size} conflict misses, "
            f"{sum(int(c.sum()) for c in archive.multiplier_wait_counts.values())} "
            "multiplier waits"
        )
        report = analyze_traces(load_traces(path))
        print("\noffline analysis over every recorded unit:")
        print(report.render())


if __name__ == "__main__":
    main()
