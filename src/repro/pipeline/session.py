"""Detection sessions: fan observations out, render verdicts any time.

A :class:`DetectionSession` owns one analyzer per audited unit and is
itself an :class:`~repro.pipeline.source.ObservationConsumer`, so it can
subscribe to any EventSource. Verdicts are available after every quantum
via :meth:`current_verdicts`; when sinks are attached (or first-detection
tracking is on) the session evaluates them eagerly each quantum and
notifies the sinks.

The session degrades instead of dying (docs/ROBUSTNESS.md):

- **Analyzer quarantine** — an analyzer that raises during ``push`` or
  ``verdict`` no longer kills the session. Its first error moves it to
  ``DEGRADED`` health; ``fail_after`` *consecutive* push errors move it
  to ``FAILED`` and stop feeding it. Verdicts carry the combined health
  (:class:`~repro.pipeline.health.Health`) of the analyzer's own state
  and the session's quarantine overlay.
- **Sink isolation** — each sink's ``on_quantum``/``on_close`` runs in
  its own error boundary with bounded retry and exponential backoff, so
  one bad sink can neither starve the other sinks nor abort the
  session; a sink that keeps failing is quarantined from per-quantum
  dispatch but still gets its ``on_close``, which is guaranteed to be
  attempted for every sink exactly once per close.

:func:`build_session` wires a session straight from an EventSource's
channel specs with the CC-auditor's histogram geometry — the path trace
replay and raw feeds use; :class:`~repro.core.detector.CCHunter` builds
its analyzers around programmed auditor slots instead.
"""

from __future__ import annotations

import dataclasses
import time
from time import perf_counter
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.config import LIKELIHOOD_RATIO_THRESHOLD, AuditorConfig
from repro.core.density import StreamingDensityHistogram
from repro.core.oscillation import DEFAULT_MIN_PEAK_HEIGHT
from repro.core.report import DetectionReport, UnitVerdict
from repro.errors import DetectionError
from repro.obs.log import get_logger
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.pipeline.analyzers import Analyzer, BurstAnalyzer, OscillationAnalyzer
from repro.pipeline.health import Health, worst
from repro.pipeline.sinks import VerdictSink
from repro.pipeline.source import (
    ChannelKind,
    ChannelSpec,
    EventSource,
    QuantumObservation,
)

_log = get_logger("pipeline.session")


class _UnitState:
    """The session's quarantine overlay for one analyzer."""

    __slots__ = ("errors", "consecutive", "health")

    def __init__(self):
        self.errors = 0
        self.consecutive = 0
        self.health = Health.OK


class _SinkState:
    """Failure bookkeeping for one attached sink."""

    __slots__ = ("failures", "quarantined")

    def __init__(self):
        self.failures = 0
        self.quarantined = False


class DetectionSession:
    """An online CC-Hunter detection pipeline, decoupled from any source."""

    def __init__(
        self,
        sinks: Iterable[VerdictSink] = (),
        track_detection_latency: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        fail_after: int = 8,
        sink_max_retries: int = 2,
        sink_backoff_base: float = 0.05,
        sink_fail_limit: int = 3,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._analyzers: Dict[str, Analyzer] = {}
        self.sinks = list(sinks)
        self.track_detection_latency = track_detection_latency
        self.quanta_pushed = 0
        self._first_detection: Dict[str, int] = {}
        #: Quanta whose verdicts were evaluated eagerly (== quanta_pushed
        #: iff the session has been eager for its whole life so far).
        self._quanta_evaluated = 0
        #: Consecutive push errors before an analyzer is FAILED.
        self.fail_after = max(1, int(fail_after))
        #: Redelivery attempts per sink dispatch, with exponential
        #: backoff starting at ``sink_backoff_base`` seconds.
        self.sink_max_retries = max(0, int(sink_max_retries))
        self.sink_backoff_base = float(sink_backoff_base)
        #: Exhausted dispatches before a sink stops getting on_quantum.
        self.sink_fail_limit = max(1, int(sink_fail_limit))
        self._sleep = sleep
        self._unit_states: Dict[str, _UnitState] = {}
        self._sink_states: Dict[int, _SinkState] = {}
        #: Set by :meth:`close`; a closed session rejects further pushes
        #: and replays its final report on repeated closes.
        self._final_report: Optional[DetectionReport] = None
        self.metrics = metrics if metrics is not None else get_default()
        self._m_quanta = self.metrics.counter(
            "cchunter_session_quanta_total",
            "quantum observations folded into the session",
        )
        self._m_verdict = self.metrics.histogram(
            "cchunter_session_verdict_seconds",
            "wall time of one eager per-quantum verdict evaluation",
        )
        self._m_sinks = self.metrics.histogram(
            "cchunter_session_sink_seconds",
            "wall time of one per-quantum sink dispatch",
        )
        self._m_sink_errors = self.metrics.counter(
            "cchunter_sink_errors_total",
            "exceptions raised by sinks (every attempt, every method)",
        )
        self._m_sink_retries = self.metrics.counter(
            "cchunter_sink_retries_total",
            "sink dispatch retries after a sink raised",
        )
        self._push_hists: Dict[str, Histogram] = {}
        self._first_gauges: Dict[str, Gauge] = {}
        self._error_counters: Dict[str, object] = {}

    # ------------------------------------------------------------- topology

    @property
    def analyzers(self) -> Tuple[Analyzer, ...]:
        return tuple(self._analyzers.values())

    @property
    def units(self) -> Tuple[str, ...]:
        return tuple(self._analyzers)

    def add_analyzer(self, analyzer: Analyzer) -> Analyzer:
        if analyzer.unit in self._analyzers:
            raise DetectionError(
                f"unit {analyzer.unit!r} already has an analyzer"
            )
        self._analyzers[analyzer.unit] = analyzer
        self._unit_states[analyzer.unit] = _UnitState()
        self._push_hists[analyzer.unit] = self.metrics.histogram(
            "cchunter_analyzer_push_seconds",
            "wall time of one analyzer push (one quantum observation)",
            labels={"unit": analyzer.unit},
        )
        self._error_counters[analyzer.unit] = self.metrics.counter(
            "cchunter_analyzer_errors_total",
            "exceptions raised by the analyzer and absorbed by quarantine",
            labels={"unit": analyzer.unit},
        )
        gauge = self.metrics.gauge(
            "cchunter_first_detection_quantum",
            "quantum index of the unit's first detection (-1: none yet)",
            labels={"unit": analyzer.unit},
        )
        gauge.set(-1)
        self._first_gauges[analyzer.unit] = gauge
        return analyzer

    def analyzer_for(self, unit: str) -> Analyzer:
        try:
            return self._analyzers[unit]
        except KeyError:
            raise DetectionError(f"{unit} is not being audited") from None

    # --------------------------------------------------------------- health

    def unit_health(self, unit: str) -> Health:
        """Combined health of one unit: analyzer state + quarantine."""
        analyzer = self.analyzer_for(unit)
        own = getattr(analyzer, "health", Health.OK)
        return worst((own, self._unit_states[unit].health))

    @property
    def health(self) -> Health:
        """Worst health across the session's units (OK when empty)."""
        return worst(self.unit_health(unit) for unit in self._analyzers)

    def _record_analyzer_error(self, unit: str, exc: Exception) -> None:
        state = self._unit_states[unit]
        state.errors += 1
        state.consecutive += 1
        self._error_counters[unit].inc()
        bundle = getattr(self._analyzers[unit], "evidence", None)
        if bundle is not None:
            bundle.record_fault(
                self.quanta_pushed, f"error:{type(exc).__name__}"
            )
        if state.consecutive >= self.fail_after:
            if state.health is not Health.FAILED:
                _log.error(
                    "analyzer %r FAILED after %d consecutive errors "
                    "(last: %s); quarantined",
                    unit, state.consecutive, exc,
                )
            state.health = Health.FAILED
        else:
            if state.health is Health.OK:
                _log.warning(
                    "analyzer %r raised (%s); health DEGRADED, continuing",
                    unit, exc,
                )
            state.health = worst((state.health, Health.DEGRADED))
        if bundle is not None:
            bundle.record_health(self.quanta_pushed, state.health.value)

    # ------------------------------------------------------------- streaming

    @property
    def _eager(self) -> bool:
        return bool(self.sinks) or self.track_detection_latency

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; closed sessions reject pushes."""
        return self._final_report is not None

    def push_quantum(self, obs: QuantumObservation) -> None:
        """Fold one quantum's observation into every analyzer.

        A raising analyzer is quarantined (health transition), never
        propagated: the session always survives a push. Pushing into a
        closed session raises :class:`DetectionError` — sinks have
        already received their final report, so late observations would
        silently fall out of the record (service lifecycle bugs surface
        loudly instead; see docs/SERVING.md).
        """
        if self._final_report is not None:
            raise DetectionError(
                "session is closed; late observations are rejected "
                f"(quantum {obs.quantum})"
            )
        timed = self.metrics.enabled
        for unit, analyzer in self._analyzers.items():
            state = self._unit_states[unit]
            if state.health is Health.FAILED:
                continue
            with trace_span("analyzer.push", unit=unit, quantum=obs.quantum):
                try:
                    if timed:
                        t0 = perf_counter()
                        analyzer.push(obs)
                        self._push_hists[unit].observe(perf_counter() - t0)
                    else:
                        analyzer.push(obs)
                except Exception as exc:
                    self._record_analyzer_error(unit, exc)
                else:
                    state.consecutive = 0
        self.quanta_pushed += 1
        self._m_quanta.inc()
        if not self._eager:
            return
        with trace_span("session.verdicts", quantum=obs.quantum):
            t0 = perf_counter() if timed else 0.0
            report = self.current_verdicts()
            if timed:
                self._m_verdict.observe(perf_counter() - t0)
        for verdict in report.verdicts:
            if verdict.detected and verdict.unit not in self._first_detection:
                self._first_detection[verdict.unit] = obs.quantum
                self._first_gauges[verdict.unit].set(obs.quantum)
                _log.info(
                    "first detection of unit %r at quantum %d",
                    verdict.unit,
                    obs.quantum,
                )
            bundle = getattr(
                self._analyzers.get(verdict.unit), "evidence", None
            )
            if bundle is not None:
                bundle.record_verdict(obs.quantum, verdict.detected)
        self._quanta_evaluated += 1
        with trace_span("session.sinks", quantum=obs.quantum):
            t0 = perf_counter() if timed else 0.0
            self._dispatch_sinks("on_quantum", obs.quantum, report)
            if timed:
                self._m_sinks.observe(perf_counter() - t0)

    def _unit_verdict(
        self, unit: str, min_oscillating_windows: Optional[int]
    ) -> UnitVerdict:
        """One unit's verdict with combined health; never raises."""
        analyzer = self._analyzers[unit]
        state = self._unit_states[unit]
        try:
            verdict = analyzer.verdict(
                min_oscillating_windows=min_oscillating_windows
            )
        except Exception as exc:
            self._record_analyzer_error(unit, exc)
            return UnitVerdict(
                unit=unit,
                method=analyzer.method,
                detected=False,
                quanta_analyzed=0,
                notes=(f"verdict unavailable: {exc}",),
                health=self._unit_states[unit].health.value,
            )
        combined = worst(
            (Health(verdict.health), state.health)
        )
        if combined.value == verdict.health:
            return verdict
        notes = verdict.notes
        if state.health is Health.FAILED:
            notes = notes + (
                f"analyzer quarantined after {state.errors} error(s)",
            )
        elif state.errors:
            notes = notes + (f"{state.errors} absorbed push error(s)",)
        return dataclasses.replace(
            verdict, health=combined.value, notes=notes
        )

    # ------------------------------------------------------------- evidence

    def evidence(self) -> Dict[str, object]:
        """Per-unit :class:`~repro.obs.evidence.EvidenceBundle` mapping.

        Empty unless analyzers were built with ``capture_evidence=True``
        (see :func:`build_session` /
        :class:`~repro.core.detector.CCHunter`).
        """
        bundles = {}
        for unit, analyzer in self._analyzers.items():
            bundle = getattr(analyzer, "evidence", None)
            if bundle is not None:
                bundles[unit] = bundle
        return bundles

    @property
    def captures_evidence(self) -> bool:
        return any(
            getattr(a, "evidence", None) is not None
            for a in self._analyzers.values()
        )

    def current_verdicts(
        self,
        min_oscillating_windows: Optional[int] = None,
        with_evidence: bool = False,
    ) -> DetectionReport:
        """Verdicts as of the quanta pushed so far.

        With ``with_evidence=True`` each verdict carries its unit's
        serialized evidence bundle (when one is being captured); the
        verdict fields themselves are identical either way.
        """
        verdicts = []
        for unit in self._analyzers:
            verdict = self._unit_verdict(unit, min_oscillating_windows)
            if with_evidence:
                bundle = getattr(self._analyzers[unit], "evidence", None)
                if bundle is not None:
                    verdict = dataclasses.replace(
                        verdict, evidence=bundle.to_dict()
                    )
            verdicts.append(verdict)
        return DetectionReport(verdicts=tuple(verdicts))

    # ----------------------------------------------------------------- sinks

    def _sink_state(self, sink: VerdictSink) -> _SinkState:
        state = self._sink_states.get(id(sink))
        if state is None:
            state = self._sink_states[id(sink)] = _SinkState()
        return state

    def _dispatch_sinks(self, method: str, *args) -> None:
        """Deliver one event to every sink, each in its own boundary.

        Each sink gets up to ``1 + sink_max_retries`` attempts with
        exponential backoff; a sink whose dispatch is exhausted
        ``sink_fail_limit`` times is quarantined from further
        ``on_quantum`` deliveries (``on_close`` is always attempted).
        One failing sink never blocks delivery to the others.
        """
        for sink in self.sinks:
            state = self._sink_state(sink)
            if state.quarantined and method == "on_quantum":
                continue
            delay = self.sink_backoff_base
            for attempt in range(1 + self.sink_max_retries):
                try:
                    getattr(sink, method)(*args)
                    break
                except Exception as exc:
                    self._m_sink_errors.inc()
                    if attempt < self.sink_max_retries:
                        self._m_sink_retries.inc()
                        _log.warning(
                            "sink %r raised in %s (%s); retrying in %.3fs",
                            type(sink).__name__, method, exc, delay,
                        )
                        self._sleep(delay)
                        delay *= 2
                    else:
                        state.failures += 1
                        _log.error(
                            "sink %r failed %s after %d attempt(s): %s",
                            type(sink).__name__, method, attempt + 1, exc,
                        )
                        if (
                            state.failures >= self.sink_fail_limit
                            and not state.quarantined
                        ):
                            state.quarantined = True
                            _log.error(
                                "sink %r quarantined after %d failed "
                                "dispatches; on_close will still be "
                                "attempted",
                                type(sink).__name__, state.failures,
                            )

    def close(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Final verdicts; ``on_close`` is attempted for *every* sink.

        When evidence is being captured the final report's verdicts
        carry their serialized bundles, so sinks (and archived reports)
        preserve the full forensic record.

        Close is **idempotent**: the first call computes the final
        report and dispatches ``on_close`` exactly once per sink
        (quarantined sinks included); every later call returns the same
        report object without re-dispatching, so a supervisor and an
        ``finally:`` block can both close the session safely. The final
        report is computed *before* any sink runs — a sink that raises
        during ``on_close`` can therefore never change what the other
        sinks (or the caller) see.
        """
        if self._final_report is not None:
            return self._final_report
        report = self.current_verdicts(
            min_oscillating_windows,
            with_evidence=self.captures_evidence,
        )
        # Seal the session before dispatching: a sink that re-enters
        # close() (e.g. a panicking supervisor callback) gets the final
        # report back instead of a second on_close fan-out.
        self._final_report = report
        self._dispatch_sinks("on_close", report)
        return report

    def first_detection_quantum(self, unit: str) -> Optional[int]:
        """First quantum at which ``unit``'s verdict fired, or None.

        Exact when the session evaluated eagerly (sinks attached or
        ``track_detection_latency``) for every quantum pushed so far; a
        tracked detection is always returned, and an empty tracking map
        then means "genuinely nothing detected yet". If any quantum was
        pushed while the session was lazy (e.g. sinks attached mid-run),
        the answer is reconstructed from the analyzer's retained
        incremental state instead.
        """
        analyzer = self.analyzer_for(unit)
        if unit in self._first_detection:
            return self._first_detection[unit]
        if self._eager and self._quanta_evaluated == self.quanta_pushed:
            # Eager for the whole session: the map is authoritative, so
            # its silence means no detection yet — not "unknown".
            return None
        return analyzer.first_detection_quantum()


def build_session(
    source: EventSource,
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    window_fraction: float = 1.0,
    max_lag: int = 1000,
    min_train_events: int = 64,
    min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
    auditor_config: Optional[AuditorConfig] = None,
    sinks: Iterable[VerdictSink] = (),
    track_detection_latency: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    capture_evidence: bool = False,
    evidence_capacity: Optional[int] = None,
) -> DetectionSession:
    """A session with one analyzer per channel the source offers.

    Burst channels get streaming density accumulators with the auditor's
    saturation limits (same numerics as the hardware monitor slots);
    the conflict channel gets an incremental oscillation analyzer.
    ``capture_evidence`` makes every analyzer keep a bounded forensic
    :class:`~repro.obs.evidence.EvidenceBundle` (docs/FORENSICS.md);
    verdicts are bit-identical with capture on or off.
    """
    return build_session_from_specs(
        source.channels(),
        lr_threshold=lr_threshold,
        window_fraction=window_fraction,
        max_lag=max_lag,
        min_train_events=min_train_events,
        min_peak_height=min_peak_height,
        auditor_config=auditor_config,
        sinks=sinks,
        track_detection_latency=track_detection_latency,
        metrics=metrics,
        capture_evidence=capture_evidence,
        evidence_capacity=evidence_capacity,
    )


def build_session_from_specs(
    specs: Iterable[ChannelSpec],
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    window_fraction: float = 1.0,
    max_lag: int = 1000,
    min_train_events: int = 64,
    min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
    auditor_config: Optional[AuditorConfig] = None,
    sinks: Iterable[VerdictSink] = (),
    track_detection_latency: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    capture_evidence: bool = False,
    evidence_capacity: Optional[int] = None,
) -> DetectionSession:
    """A session built straight from channel specs — no source needed.

    This is how the multi-tenant service (:mod:`repro.serve`) builds
    one session per tenant from the channel list in the tenant's wire
    ``hello`` frame; :func:`build_session` is now the thin adapter that
    reads the specs off an EventSource. Analyzer construction is
    identical either way, so a served tenant's verdicts are
    bit-identical to an in-process session over the same observations.
    """
    cfg = auditor_config or AuditorConfig()
    session = DetectionSession(
        sinks=sinks,
        track_detection_latency=track_detection_latency,
        metrics=metrics,
    )
    for spec in specs:
        if spec.kind is ChannelKind.BURST:
            session.add_analyzer(
                BurstAnalyzer(
                    unit=spec.name,
                    dt=spec.dt,
                    accumulator=StreamingDensityHistogram(
                        dt=spec.dt,
                        n_bins=cfg.histogram_bins,
                        count_clamp=cfg.accumulator_max,
                        entry_max=cfg.histogram_entry_max,
                    ),
                    lr_threshold=lr_threshold,
                    n_bins=cfg.histogram_bins,
                    metrics=session.metrics,
                    capture_evidence=capture_evidence,
                    evidence_capacity=evidence_capacity,
                )
            )
        else:
            session.add_analyzer(
                OscillationAnalyzer(
                    unit=spec.name,
                    window_fraction=window_fraction,
                    max_lag=max_lag,
                    min_train_events=min_train_events,
                    min_peak_height=min_peak_height,
                    context_id_bits=cfg.context_id_bits,
                    metrics=session.metrics,
                    capture_evidence=capture_evidence,
                    evidence_capacity=evidence_capacity,
                )
            )
    return session
