"""Detection sessions: fan observations out, render verdicts any time.

A :class:`DetectionSession` owns one analyzer per audited unit and is
itself an :class:`~repro.pipeline.source.ObservationConsumer`, so it can
subscribe to any EventSource. Verdicts are available after every quantum
via :meth:`current_verdicts`; when sinks are attached (or first-detection
tracking is on) the session evaluates them eagerly each quantum and
notifies the sinks.

:func:`build_session` wires a session straight from an EventSource's
channel specs with the CC-auditor's histogram geometry — the path trace
replay and raw feeds use; :class:`~repro.core.detector.CCHunter` builds
its analyzers around programmed auditor slots instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.config import LIKELIHOOD_RATIO_THRESHOLD, AuditorConfig
from repro.core.density import StreamingDensityHistogram
from repro.core.oscillation import DEFAULT_MIN_PEAK_HEIGHT
from repro.core.report import DetectionReport
from repro.errors import DetectionError
from repro.pipeline.analyzers import Analyzer, BurstAnalyzer, OscillationAnalyzer
from repro.pipeline.sinks import VerdictSink
from repro.pipeline.source import ChannelKind, EventSource, QuantumObservation


class DetectionSession:
    """An online CC-Hunter detection pipeline, decoupled from any source."""

    def __init__(
        self,
        sinks: Iterable[VerdictSink] = (),
        track_detection_latency: bool = False,
    ):
        self._analyzers: Dict[str, Analyzer] = {}
        self.sinks = list(sinks)
        self.track_detection_latency = track_detection_latency
        self.quanta_pushed = 0
        self._first_detection: Dict[str, int] = {}

    # ------------------------------------------------------------- topology

    @property
    def analyzers(self) -> Tuple[Analyzer, ...]:
        return tuple(self._analyzers.values())

    @property
    def units(self) -> Tuple[str, ...]:
        return tuple(self._analyzers)

    def add_analyzer(self, analyzer: Analyzer) -> Analyzer:
        if analyzer.unit in self._analyzers:
            raise DetectionError(
                f"unit {analyzer.unit!r} already has an analyzer"
            )
        self._analyzers[analyzer.unit] = analyzer
        return analyzer

    def analyzer_for(self, unit: str) -> Analyzer:
        try:
            return self._analyzers[unit]
        except KeyError:
            raise DetectionError(f"{unit} is not being audited") from None

    # ------------------------------------------------------------- streaming

    @property
    def _eager(self) -> bool:
        return bool(self.sinks) or self.track_detection_latency

    def push_quantum(self, obs: QuantumObservation) -> None:
        """Fold one quantum's observation into every analyzer."""
        for analyzer in self._analyzers.values():
            analyzer.push(obs)
        self.quanta_pushed += 1
        if not self._eager:
            return
        report = self.current_verdicts()
        for verdict in report.verdicts:
            if verdict.detected and verdict.unit not in self._first_detection:
                self._first_detection[verdict.unit] = obs.quantum
        for sink in self.sinks:
            sink.on_quantum(obs.quantum, report)

    def current_verdicts(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Verdicts as of the quanta pushed so far."""
        return DetectionReport(
            verdicts=tuple(
                analyzer.verdict(min_oscillating_windows=min_oscillating_windows)
                for analyzer in self._analyzers.values()
            )
        )

    def close(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Final verdicts; notifies every sink's ``on_close``."""
        report = self.current_verdicts(min_oscillating_windows)
        for sink in self.sinks:
            sink.on_close(report)
        return report

    def first_detection_quantum(self, unit: str) -> Optional[int]:
        """First quantum at which ``unit``'s verdict fired, or None.

        Exact when the session evaluates eagerly (sinks attached or
        ``track_detection_latency``); otherwise reconstructed from the
        analyzer's retained incremental state.
        """
        if unit in self._first_detection:
            return self._first_detection[unit]
        analyzer = self.analyzer_for(unit)
        if self._eager and self.quanta_pushed:
            return None
        return analyzer.first_detection_quantum()


def build_session(
    source: EventSource,
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    window_fraction: float = 1.0,
    max_lag: int = 1000,
    min_train_events: int = 64,
    min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
    auditor_config: Optional[AuditorConfig] = None,
    sinks: Iterable[VerdictSink] = (),
    track_detection_latency: bool = False,
) -> DetectionSession:
    """A session with one analyzer per channel the source offers.

    Burst channels get streaming density accumulators with the auditor's
    saturation limits (same numerics as the hardware monitor slots);
    the conflict channel gets an incremental oscillation analyzer.
    """
    cfg = auditor_config or AuditorConfig()
    session = DetectionSession(
        sinks=sinks, track_detection_latency=track_detection_latency
    )
    for spec in source.channels():
        if spec.kind is ChannelKind.BURST:
            session.add_analyzer(
                BurstAnalyzer(
                    unit=spec.name,
                    dt=spec.dt,
                    accumulator=StreamingDensityHistogram(
                        dt=spec.dt,
                        n_bins=cfg.histogram_bins,
                        count_clamp=cfg.accumulator_max,
                        entry_max=cfg.histogram_entry_max,
                    ),
                    lr_threshold=lr_threshold,
                    n_bins=cfg.histogram_bins,
                )
            )
        else:
            session.add_analyzer(
                OscillationAnalyzer(
                    unit=spec.name,
                    window_fraction=window_fraction,
                    max_lag=max_lag,
                    min_train_events=min_train_events,
                    min_peak_height=min_peak_height,
                    context_id_bits=cfg.context_id_bits,
                )
            )
    return session
