"""Detection sessions: fan observations out, render verdicts any time.

A :class:`DetectionSession` owns one analyzer per audited unit and is
itself an :class:`~repro.pipeline.source.ObservationConsumer`, so it can
subscribe to any EventSource. Verdicts are available after every quantum
via :meth:`current_verdicts`; when sinks are attached (or first-detection
tracking is on) the session evaluates them eagerly each quantum and
notifies the sinks.

:func:`build_session` wires a session straight from an EventSource's
channel specs with the CC-auditor's histogram geometry — the path trace
replay and raw feeds use; :class:`~repro.core.detector.CCHunter` builds
its analyzers around programmed auditor slots instead.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, Optional, Tuple

from repro.config import LIKELIHOOD_RATIO_THRESHOLD, AuditorConfig
from repro.core.density import StreamingDensityHistogram
from repro.core.oscillation import DEFAULT_MIN_PEAK_HEIGHT
from repro.core.report import DetectionReport
from repro.errors import DetectionError
from repro.obs.log import get_logger
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.pipeline.analyzers import Analyzer, BurstAnalyzer, OscillationAnalyzer
from repro.pipeline.sinks import VerdictSink
from repro.pipeline.source import ChannelKind, EventSource, QuantumObservation

_log = get_logger("pipeline.session")


class DetectionSession:
    """An online CC-Hunter detection pipeline, decoupled from any source."""

    def __init__(
        self,
        sinks: Iterable[VerdictSink] = (),
        track_detection_latency: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._analyzers: Dict[str, Analyzer] = {}
        self.sinks = list(sinks)
        self.track_detection_latency = track_detection_latency
        self.quanta_pushed = 0
        self._first_detection: Dict[str, int] = {}
        #: Quanta whose verdicts were evaluated eagerly (== quanta_pushed
        #: iff the session has been eager for its whole life so far).
        self._quanta_evaluated = 0
        self.metrics = metrics if metrics is not None else get_default()
        self._m_quanta = self.metrics.counter(
            "cchunter_session_quanta_total",
            "quantum observations folded into the session",
        )
        self._m_verdict = self.metrics.histogram(
            "cchunter_session_verdict_seconds",
            "wall time of one eager per-quantum verdict evaluation",
        )
        self._m_sinks = self.metrics.histogram(
            "cchunter_session_sink_seconds",
            "wall time of one per-quantum sink dispatch",
        )
        self._push_hists: Dict[str, Histogram] = {}
        self._first_gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------- topology

    @property
    def analyzers(self) -> Tuple[Analyzer, ...]:
        return tuple(self._analyzers.values())

    @property
    def units(self) -> Tuple[str, ...]:
        return tuple(self._analyzers)

    def add_analyzer(self, analyzer: Analyzer) -> Analyzer:
        if analyzer.unit in self._analyzers:
            raise DetectionError(
                f"unit {analyzer.unit!r} already has an analyzer"
            )
        self._analyzers[analyzer.unit] = analyzer
        self._push_hists[analyzer.unit] = self.metrics.histogram(
            "cchunter_analyzer_push_seconds",
            "wall time of one analyzer push (one quantum observation)",
            labels={"unit": analyzer.unit},
        )
        gauge = self.metrics.gauge(
            "cchunter_first_detection_quantum",
            "quantum index of the unit's first detection (-1: none yet)",
            labels={"unit": analyzer.unit},
        )
        gauge.set(-1)
        self._first_gauges[analyzer.unit] = gauge
        return analyzer

    def analyzer_for(self, unit: str) -> Analyzer:
        try:
            return self._analyzers[unit]
        except KeyError:
            raise DetectionError(f"{unit} is not being audited") from None

    # ------------------------------------------------------------- streaming

    @property
    def _eager(self) -> bool:
        return bool(self.sinks) or self.track_detection_latency

    def push_quantum(self, obs: QuantumObservation) -> None:
        """Fold one quantum's observation into every analyzer."""
        timed = self.metrics.enabled
        for unit, analyzer in self._analyzers.items():
            with trace_span("analyzer.push", unit=unit, quantum=obs.quantum):
                if timed:
                    t0 = perf_counter()
                    analyzer.push(obs)
                    self._push_hists[unit].observe(perf_counter() - t0)
                else:
                    analyzer.push(obs)
        self.quanta_pushed += 1
        self._m_quanta.inc()
        if not self._eager:
            return
        with trace_span("session.verdicts", quantum=obs.quantum):
            t0 = perf_counter() if timed else 0.0
            report = self.current_verdicts()
            if timed:
                self._m_verdict.observe(perf_counter() - t0)
        for verdict in report.verdicts:
            if verdict.detected and verdict.unit not in self._first_detection:
                self._first_detection[verdict.unit] = obs.quantum
                self._first_gauges[verdict.unit].set(obs.quantum)
                _log.info(
                    "first detection of unit %r at quantum %d",
                    verdict.unit,
                    obs.quantum,
                )
        self._quanta_evaluated += 1
        with trace_span("session.sinks", quantum=obs.quantum):
            t0 = perf_counter() if timed else 0.0
            for sink in self.sinks:
                sink.on_quantum(obs.quantum, report)
            if timed:
                self._m_sinks.observe(perf_counter() - t0)

    def current_verdicts(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Verdicts as of the quanta pushed so far."""
        return DetectionReport(
            verdicts=tuple(
                analyzer.verdict(min_oscillating_windows=min_oscillating_windows)
                for analyzer in self._analyzers.values()
            )
        )

    def close(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Final verdicts; notifies every sink's ``on_close``."""
        report = self.current_verdicts(min_oscillating_windows)
        for sink in self.sinks:
            sink.on_close(report)
        return report

    def first_detection_quantum(self, unit: str) -> Optional[int]:
        """First quantum at which ``unit``'s verdict fired, or None.

        Exact when the session evaluated eagerly (sinks attached or
        ``track_detection_latency``) for every quantum pushed so far; a
        tracked detection is always returned, and an empty tracking map
        then means "genuinely nothing detected yet". If any quantum was
        pushed while the session was lazy (e.g. sinks attached mid-run),
        the answer is reconstructed from the analyzer's retained
        incremental state instead.
        """
        analyzer = self.analyzer_for(unit)
        if unit in self._first_detection:
            return self._first_detection[unit]
        if self._eager and self._quanta_evaluated == self.quanta_pushed:
            # Eager for the whole session: the map is authoritative, so
            # its silence means no detection yet — not "unknown".
            return None
        return analyzer.first_detection_quantum()


def build_session(
    source: EventSource,
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    window_fraction: float = 1.0,
    max_lag: int = 1000,
    min_train_events: int = 64,
    min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
    auditor_config: Optional[AuditorConfig] = None,
    sinks: Iterable[VerdictSink] = (),
    track_detection_latency: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> DetectionSession:
    """A session with one analyzer per channel the source offers.

    Burst channels get streaming density accumulators with the auditor's
    saturation limits (same numerics as the hardware monitor slots);
    the conflict channel gets an incremental oscillation analyzer.
    """
    cfg = auditor_config or AuditorConfig()
    session = DetectionSession(
        sinks=sinks,
        track_detection_latency=track_detection_latency,
        metrics=metrics,
    )
    for spec in source.channels():
        if spec.kind is ChannelKind.BURST:
            session.add_analyzer(
                BurstAnalyzer(
                    unit=spec.name,
                    dt=spec.dt,
                    accumulator=StreamingDensityHistogram(
                        dt=spec.dt,
                        n_bins=cfg.histogram_bins,
                        count_clamp=cfg.accumulator_max,
                        entry_max=cfg.histogram_entry_max,
                    ),
                    lr_threshold=lr_threshold,
                    n_bins=cfg.histogram_bins,
                    metrics=session.metrics,
                )
            )
        else:
            session.add_analyzer(
                OscillationAnalyzer(
                    unit=spec.name,
                    window_fraction=window_fraction,
                    max_lag=max_lag,
                    min_train_events=min_train_events,
                    min_peak_height=min_peak_height,
                    context_id_bits=cfg.context_id_bits,
                    metrics=session.metrics,
                )
            )
    return session
