"""Per-unit analyzer stages: incremental detection state per channel.

Each analyzer consumes :class:`~repro.pipeline.source.QuantumObservation`
pushes for one named unit and keeps only bounded incremental state:

- :class:`BurstAnalyzer` folds per-Δt counts through a saturating
  histogram accumulator (the modeled :class:`MonitorSlot` when driven by
  CC-auditor hardware, a :class:`StreamingDensityHistogram` otherwise)
  and keeps the last ``CLUSTERING_WINDOW_QUANTA`` per-quantum histograms
  — exactly the horizon recurrence clustering looks at.
- :class:`OscillationAnalyzer` folds each observation window's dominant
  pair train into per-pair running sums and a
  :class:`RunningAutocorrelogram`, so closing a window costs O(max_lag)
  instead of re-autocorrelating the window's whole event train.

``verdict()`` may be called after any quantum; analyzers never replay
history to answer it.

Analyzers are hardened against imperfect input: a well-typed
observation never makes ``push`` raise. A missing channel entry is
recorded as an *observation gap* (the quantum is counted but nothing is
folded in), and fault tags stamped by an upstream
:class:`~repro.faults.FaultInjectingSource` are tallied; either moves
the analyzer's :class:`~repro.pipeline.health.Health` to ``DEGRADED``
(sticky) and annotates the verdict. Unexpected *errors* are the
session's job: :class:`~repro.pipeline.session.DetectionSession`
quarantines analyzers that raise anyway (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.config import CLUSTERING_WINDOW_QUANTA, LIKELIHOOD_RATIO_THRESHOLD
from repro.core.autocorr import RunningAutocorrelogram
from repro.core.burst import BurstAnalysis, analyze_histogram
from repro.core.clustering import analyze_recurrence
from repro.core.density import StreamingDensityHistogram
from repro.core.oscillation import (
    DEFAULT_MIN_PEAK_HEIGHT,
    OscillationAnalysis,
    analyze_autocorrelogram,
)
from repro.core.report import UnitVerdict
from repro.errors import DetectionError
from repro.obs.evidence import EvidenceBundle
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.pipeline.health import Health
from repro.pipeline.source import QuantumObservation
from repro.util.strings import discretize_histogram


class Analyzer(Protocol):
    """One detection stage bound to one named unit."""

    unit: str
    method: str

    def push(self, obs: QuantumObservation) -> None: ...

    def verdict(
        self, min_oscillating_windows: Optional[int] = None
    ) -> UnitVerdict: ...

    def first_detection_quantum(self) -> Optional[int]: ...


class _HealthMixin:
    """Shared gap/fault bookkeeping behind each analyzer's health state."""

    unit: str
    #: Forensic capture target; None when evidence capture is off.
    evidence: Optional[EvidenceBundle] = None

    def _init_health(self, metrics: MetricsRegistry) -> None:
        self._health = Health.OK
        #: Quanta counted but not analyzed (channel entry missing).
        self.gaps = 0
        #: Input fault tags seen on observations (stamped upstream).
        self.faults_seen = 0
        #: Tally per fault kind (the ``kind`` of ``kind:channel`` tags),
        #: so verdict notes can say *what* impaired the evidence — e.g.
        #: service load-shedding (``shed``) vs transport loss (``lost``).
        self.fault_kinds: Dict[str, int] = {}
        labels = {"unit": self.unit}
        self._m_gaps = metrics.counter(
            "cchunter_analyzer_gaps_total",
            "observations skipped because the channel entry was missing",
            labels,
        )
        self._m_flagged = metrics.counter(
            "cchunter_analyzer_flagged_faults_total",
            "input fault tags observed on this unit's observations",
            labels,
        )

    @property
    def health(self) -> Health:
        return self._health

    def _note_faults(self, obs: QuantumObservation) -> None:
        tags = obs.faults_for(self.unit)
        if tags:
            self.faults_seen += len(tags)
            for tag in tags:
                kind = tag.split(":", 1)[0]
                self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + 1
            self._m_flagged.inc(len(tags))
            self._health = Health.DEGRADED
            if self.evidence is not None:
                for tag in tags:
                    self.evidence.record_fault(obs.quantum, tag)
                self.evidence.record_health(obs.quantum, self._health.value)

    def _note_gap(self, quantum: int = 0) -> None:
        self.gaps += 1
        self._m_gaps.inc()
        self._health = Health.DEGRADED
        if self.evidence is not None:
            self.evidence.record_fault(quantum, "gap")
            self.evidence.record_health(quantum, self._health.value)

    def _health_notes(self) -> Tuple[str, ...]:
        notes = []
        if self.gaps:
            notes.append(f"{self.gaps} observation gap(s)")
        if self.faults_seen:
            kinds = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(self.fault_kinds.items())
            )
            notes.append(
                f"{self.faults_seen} flagged input fault(s) ({kinds})"
            )
        return tuple(notes)


class BurstAnalyzer(_HealthMixin):
    """Recurrent-burst detection for one combinational unit (IV-B).

    ``accumulator`` is anything with the ``ingest_window_counts`` /
    ``read_and_reset`` pair — a programmed auditor
    :class:`~repro.hardware.auditor.MonitorSlot` for hardware-faithful
    live sessions, or a :class:`StreamingDensityHistogram` for replay and
    raw feeds. Per-quantum work is O(n_windows + bins); history is the
    bounded histogram deque recurrence clustering consumes.
    """

    method = "burst"

    def __init__(
        self,
        unit: str,
        dt: int,
        accumulator=None,
        lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
        n_bins: int = 128,
        max_windows: int = CLUSTERING_WINDOW_QUANTA,
        metrics: Optional[MetricsRegistry] = None,
        capture_evidence: bool = False,
        evidence_capacity: Optional[int] = None,
    ):
        self.unit = unit
        self.dt = int(dt)
        self.lr_threshold = lr_threshold
        self._acc = (
            accumulator
            if accumulator is not None
            else StreamingDensityHistogram(dt=dt, n_bins=n_bins)
        )
        self.histograms: Deque[np.ndarray] = deque(maxlen=max_windows)
        #: Discretized feature string per histogram (parallel deque):
        #: computed once at push time, handed to recurrence clustering so
        #: eager per-quantum verdicts never re-discretize the horizon.
        self._features: Deque[np.ndarray] = deque(maxlen=max_windows)
        self.analyses: Deque[BurstAnalysis] = deque(maxlen=max_windows)
        self.quanta_seen = 0
        m = metrics if metrics is not None else get_default()
        labels = {"unit": unit}
        self._m_windows = m.counter(
            "cchunter_analyzer_windows_total",
            "Δt windows folded into burst histograms",
            labels,
        )
        self._m_events = m.counter(
            "cchunter_analyzer_events_total",
            "indicator events folded into burst histograms",
            labels,
        )
        self._m_clamps = m.counter(
            "cchunter_analyzer_clamp_events_total",
            "Δt windows clamped by the saturating accumulator",
            labels,
        )
        self._m_saturations = m.counter(
            "cchunter_analyzer_entry_saturation_total",
            "histogram entries saturated at the 16-bit entry maximum",
            labels,
        )
        self._seen_events = 0
        self._seen_clamps = 0
        self._seen_saturations = 0
        self.evidence = (
            EvidenceBundle(
                unit, self.method, metrics=m,
                **({} if evidence_capacity is None
                   else {"capacity": evidence_capacity}),
            )
            if capture_evidence else None
        )
        self._prev_lr = 0.0
        self._init_health(m)

    def push(self, obs: QuantumObservation) -> None:
        self._note_faults(obs)
        counts = obs.counts.get(self.unit)
        if counts is None:
            # Observation gap: the channel's readout went missing this
            # quantum. Count the quantum, degrade, and keep going — a
            # lossy collector must not kill the audit.
            self._note_gap(obs.quantum)
            self.quanta_seen += 1
            return
        self._acc.ingest_window_counts(counts)
        hist = self._acc.read_and_reset()
        self.histograms.append(hist)
        self._features.append(discretize_histogram(hist))
        analysis = analyze_histogram(hist, lr_threshold=self.lr_threshold)
        self.analyses.append(analysis)
        if self.evidence is not None:
            # Capture reads values already computed above — it can never
            # perturb the verdict numerics (bit-identical on/off). The
            # span lives inside the guard, so it costs nothing when
            # evidence capture is off.
            with trace_span(
                "analyzer.evidence", unit=self.unit, quantum=obs.quantum
            ):
                self.evidence.record_lr(
                    obs.quantum, analysis.likelihood_ratio
                )
                crossed = (self._prev_lr >= self.lr_threshold) != (
                    analysis.likelihood_ratio >= self.lr_threshold
                )
                if crossed:
                    direction = (
                        "rise"
                        if analysis.likelihood_ratio >= self.lr_threshold
                        else "fall"
                    )
                    self.evidence.record_histogram(
                        obs.quantum, f"lr-threshold-{direction}", hist,
                        analysis,
                    )
                self._prev_lr = analysis.likelihood_ratio
        self.quanta_seen += 1
        self._m_windows.inc(len(counts))
        # The accumulator (MonitorSlot or StreamingDensityHistogram) keeps
        # cumulative event/clamp/saturation tallies; export per-push deltas
        # rather than re-reducing the (possibly huge) counts array.
        events = getattr(self._acc, "events_seen", 0)
        if events != self._seen_events:
            self._m_events.inc(events - self._seen_events)
            self._seen_events = events
        clamps = getattr(self._acc, "clamp_events", 0)
        saturations = getattr(self._acc, "entry_saturations", 0)
        if clamps != self._seen_clamps:
            self._m_clamps.inc(clamps - self._seen_clamps)
            self._seen_clamps = clamps
        if saturations != self._seen_saturations:
            self._m_saturations.inc(saturations - self._seen_saturations)
            self._seen_saturations = saturations

    def verdict(
        self, min_oscillating_windows: Optional[int] = None
    ) -> UnitVerdict:
        if not self.histograms:
            return UnitVerdict(
                unit=self.unit,
                method="burst",
                detected=False,
                quanta_analyzed=self.quanta_seen,
                notes=("no quanta observed",) if not self.quanta_seen
                else self._health_notes(),
                health=self._health.value,
            )
        recurrence = analyze_recurrence(
            list(self.histograms),
            lr_threshold=self.lr_threshold,
            features=list(self._features),
        )
        best_lr = max(
            (a.likelihood_ratio for a in recurrence.burst_analyses),
            default=0.0,
        )
        if self.evidence is not None:
            with trace_span(
                "analyzer.evidence",
                unit=self.unit,
                quantum=self.quanta_seen - 1,
            ):
                self.evidence.set_cluster(
                    self.quanta_seen - 1,
                    recurrence,
                    np.sum(np.stack(list(self.histograms)), axis=0),
                )
        return UnitVerdict(
            unit=self.unit,
            method="burst",
            detected=bool(recurrence.recurrent and recurrence.burst_clusters),
            quanta_analyzed=self.quanta_seen,
            max_likelihood_ratio=best_lr,
            recurrent=recurrence.recurrent,
            burst_window_fraction=recurrence.burst_window_fraction,
            notes=self._health_notes(),
            health=self._health.value,
        )

    def first_detection_quantum(self) -> Optional[int]:
        """Earliest retained quantum whose histogram prefix detects."""
        hists: List[np.ndarray] = list(self.histograms)
        feats: List[np.ndarray] = list(self._features)
        offset = self.quanta_seen - len(hists)
        for upto in range(1, len(hists) + 1):
            recurrence = analyze_recurrence(
                hists[:upto],
                lr_threshold=self.lr_threshold,
                features=feats[:upto],
            )
            if recurrence.recurrent and recurrence.burst_clusters:
                return offset + upto - 1
        return None


class _PairState:
    """Running state for one cross-context (replacer, victim) pair."""

    __slots__ = ("count", "ones", "acf")

    def __init__(self, max_lag: int):
        self.count = 0
        self.ones = 0
        self.acf = RunningAutocorrelogram(max_lag)


class OscillationAnalyzer(_HealthMixin):
    """Oscillatory-pattern detection for the shared cache (IV-D).

    Observation windows tile each quantum at ``window_fraction`` of its
    width. Within an open window every cross-context pair keeps a
    running identifier-train autocorrelogram, so closing the window reads
    the dominant pair's correlogram in O(max_lag) — no event replay.
    """

    method = "oscillation"

    def __init__(
        self,
        unit: str = "cache",
        window_fraction: float = 1.0,
        max_lag: int = 1000,
        min_train_events: int = 64,
        min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
        min_oscillating_windows: int = 1,
        context_id_bits: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        capture_evidence: bool = False,
        evidence_capacity: Optional[int] = None,
    ):
        if not 0 < window_fraction <= 1.0:
            raise DetectionError(
                f"window fraction must be in (0, 1], got {window_fraction}"
            )
        self.unit = unit
        self.window_fraction = window_fraction
        self.max_lag = max_lag
        self.min_train_events = min_train_events
        self.min_peak_height = min_peak_height
        self.min_oscillating_windows = min_oscillating_windows
        self.context_id_bits = context_id_bits
        self.analyses: List[OscillationAnalysis] = []
        #: Quantum index each analysis came from (parallel to ``analyses``).
        self.analysis_quanta: List[int] = []
        self.windows_analyzed = 0
        self.last_acf: Optional[np.ndarray] = None
        self._pairs: Dict[int, _PairState] = {}
        m = metrics if metrics is not None else get_default()
        labels = {"unit": unit}
        self._m_windows = m.counter(
            "cchunter_analyzer_windows_total",
            "observation windows closed by the oscillation analyzer",
            labels,
        )
        self._m_windows_skipped = m.counter(
            "cchunter_analyzer_windows_skipped_total",
            "windows closed without an autocorrelogram (too few train events)",
            labels,
        )
        self._m_windows_significant = m.counter(
            "cchunter_analyzer_windows_significant_total",
            "windows whose autocorrelogram showed significant oscillation",
            labels,
        )
        self._m_train_events = m.counter(
            "cchunter_analyzer_train_events_total",
            "cross-context conflict events folded into pair trains",
            labels,
        )
        self._m_train_length = m.gauge(
            "cchunter_analyzer_last_train_length",
            "length of the last analyzed dominant-pair train",
            labels,
        )
        self._m_acf_lags = m.gauge(
            "cchunter_analyzer_last_acf_lags",
            "lag-window width of the last computed autocorrelogram",
            labels,
        )
        self.evidence = (
            EvidenceBundle(
                unit, self.method, metrics=m,
                **({} if evidence_capacity is None
                   else {"capacity": evidence_capacity}),
            )
            if capture_evidence else None
        )
        self._init_health(m)

    def push(self, obs: QuantumObservation) -> None:
        self._note_faults(obs)
        recs = obs.conflicts
        width = max(1, int(round((obs.t1 - obs.t0) * self.window_fraction)))
        start = obs.t0
        while start < obs.t1:
            end = min(start + width, obs.t1)
            if recs is not None and recs.times.size:
                lo = np.searchsorted(recs.times, start, side="left")
                hi = np.searchsorted(recs.times, end, side="left")
                self._ingest(recs.replacers[lo:hi], recs.victims[lo:hi])
            self._close_window(obs.quantum)
            start = end

    def _ingest(self, replacers: np.ndarray, victims: np.ndarray) -> None:
        reps = np.asarray(replacers, dtype=np.int64)
        vics = np.asarray(victims, dtype=np.int64)
        cross = reps != vics
        if not cross.any():
            return
        reps = reps[cross]
        vics = vics[cross]
        lo = np.minimum(reps, vics)
        hi = np.maximum(reps, vics)
        packed = (lo << self.context_id_bits) | hi
        for key in np.unique(packed):
            sel = packed == key
            # Identifier 1 ⟺ the lower context id of the pair replaced
            # (the paper's S→T direction) — same labeling as
            # dominant_pair_series.
            labels = (reps[sel] == (int(key) >> self.context_id_bits)).astype(
                np.int64
            )
            state = self._pairs.get(int(key))
            if state is None:
                state = self._pairs[int(key)] = _PairState(self.max_lag)
            state.count += labels.size
            state.ones += int(labels.sum())
            state.acf.push_batch(labels)
            self._m_train_events.inc(labels.size)

    def _close_window(self, quantum: int) -> None:
        self.windows_analyzed += 1
        self._m_windows.inc()
        pairs, self._pairs = self._pairs, {}
        if not pairs:
            self._m_windows_skipped.inc()
            return
        # Covert cache communication is a ping-pong between ONE pair of
        # contexts; analyze the dominant pair's labeled train (ties break
        # toward the smallest packed pair id, matching the batch path).
        key = min(pairs, key=lambda k: (-pairs[k].count, k))
        state = pairs[key]
        both_directions = (
            state.count >= self.min_train_events
            and 4 <= state.ones <= state.count - 4
        )
        if not both_directions:
            self._m_windows_skipped.inc()
            return
        acf = state.acf.correlogram()
        self.last_acf = acf
        analysis = analyze_autocorrelogram(
            acf, min_peak_height=self.min_peak_height
        )
        self.analyses.append(analysis)
        self.analysis_quanta.append(quantum)
        self._m_train_length.set(state.count)
        self._m_acf_lags.set(acf.size)
        if self.evidence is not None:
            # Read-only capture of already-computed values; never
            # perturbs the verdict numerics.
            with trace_span(
                "analyzer.evidence", unit=self.unit, quantum=quantum
            ):
                self.evidence.record_peak(quantum, analysis.max_peak)
                self.evidence.record_acf_window(quantum, analysis)
                self.evidence.record_acf(quantum, acf, analysis)
        if analysis.significant:
            self._m_windows_significant.inc()

    def verdict(
        self, min_oscillating_windows: Optional[int] = None
    ) -> UnitVerdict:
        needed = (
            min_oscillating_windows
            if min_oscillating_windows is not None
            else self.min_oscillating_windows
        )
        significant = [a for a in self.analyses if a.significant]
        periods = [a.dominant_period for a in significant if a.dominant_period]
        return UnitVerdict(
            unit=self.unit,
            method="oscillation",
            detected=len(significant) >= needed,
            quanta_analyzed=self.windows_analyzed,
            oscillating_windows=len(significant),
            max_peak=max((a.max_peak for a in self.analyses), default=0.0),
            dominant_period=float(np.median(periods)) if periods else None,
            notes=self._health_notes(),
            health=self._health.value,
        )

    def first_detection_quantum(self) -> Optional[int]:
        for analysis, quantum in zip(self.analyses, self.analysis_quanta):
            if analysis.significant:
                return quantum
        return None
