"""Pipeline health states: how components degrade instead of dying.

A production CC-auditor runs against noisy, lossy, adversarially
perturbed event trains; one bad observation must not kill the whole
:class:`~repro.pipeline.session.DetectionSession`. Every analyzer (and
the session itself) therefore carries a :class:`Health` value with a
one-way state machine::

    OK ──(flagged input fault | recovered push error)──▶ DEGRADED
    DEGRADED ──(``fail_after`` consecutive push errors)──▶ FAILED

- **OK** — every observation was folded cleanly; the verdict carries
  full evidentiary weight.
- **DEGRADED** — the analyzer is still producing verdicts, but some
  input was lost, perturbed, or rejected (a gap was recorded, or the
  source flagged injected faults). Detection results remain usable but
  are computed over impaired evidence.
- **FAILED** — the analyzer raised repeatedly and is quarantined: it no
  longer receives observations and its verdict reports no detection
  with an explanatory note.

Transitions are sticky: evidence impaired at quantum *q* stays impaired
for the rest of the session, so health never moves back toward ``OK``.
:func:`worst` combines health values (``FAILED > DEGRADED > OK``), which
is how a session rolls per-unit health up to a single value.

See docs/ROBUSTNESS.md for the full degradation semantics.
"""

from __future__ import annotations

import enum
from typing import Iterable


class Health(enum.Enum):
    """Operational health of one pipeline component (ordered, one-way)."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"

    @property
    def rank(self) -> int:
        return _RANK[self]


_RANK = {Health.OK: 0, Health.DEGRADED: 1, Health.FAILED: 2}


def worst(values: Iterable[Health]) -> Health:
    """The most severe health among ``values`` (``OK`` when empty)."""
    result = Health.OK
    for value in values:
        if value.rank > result.rank:
            result = value
    return result
