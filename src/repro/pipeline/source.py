"""Event sources: where per-quantum observations come from.

An :class:`EventSource` describes the channels it can observe (burst
channels carry per-Δt event counts; a conflict channel carries labeled
cache conflict-miss records) and pushes one :class:`QuantumObservation`
per OS quantum to every subscribed consumer. Any number of
:class:`~repro.pipeline.session.DetectionSession` instances — e.g. one
per audited core pair — can subscribe to the same source.

:class:`MachineEventSource` adapts the simulator: it registers a single
quantum hook on the :class:`~repro.sim.machine.Machine` and reads the
taps at each boundary. ``repro.traces.ArchiveEventSource`` is the second
implementation, replaying recorded archives through the same interface.

By default the machine source is *columnar* (docs/PERFORMANCE.md): each
tap read goes through an incremental window reader that consumes the
tap's append-only numpy columns once, instead of re-sorting the tap's
whole history at every quantum boundary. ``columnar=False`` keeps the
legacy full-history reads — the two paths are proven bit-identical by
the ``parity``-marked tests and the legacy path remains the reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import DetectionError
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.util.dtypes import require_int64


class ChannelKind(enum.Enum):
    """What kind of observation stream a channel carries."""

    #: Per-Δt-window event counts (memory bus locks, divider/multiplier
    #: wait events) feeding burst-pattern analysis.
    BURST = "burst"
    #: Labeled (replacer, victim) conflict-miss records feeding
    #: oscillatory-pattern analysis.
    CONFLICT = "conflict"


@dataclass(frozen=True)
class ChannelSpec:
    """One named observation channel an EventSource produces.

    ``name`` is the unit name verdicts are reported under (e.g.
    ``"membus"``, ``"divider(core 0)"``, ``"cache"``); ``dt`` is the
    Δt window width for burst channels (None for conflict channels).
    """

    name: str
    kind: ChannelKind
    dt: Optional[int] = None


@dataclass(frozen=True)
class ConflictRecords:
    """Conflict-miss records observed during one quantum, in time order."""

    times: np.ndarray
    replacers: np.ndarray
    victims: np.ndarray


@dataclass(frozen=True)
class QuantumObservation:
    """Everything an EventSource saw during one OS quantum.

    ``counts`` maps each burst channel name to its per-Δt-window event
    counts over ``[t0, t1)``; ``conflicts`` carries the quantum's
    conflict-miss records when a conflict channel is enabled.

    ``faults`` lists known data-quality impairments of this observation
    as ``"kind:channel"`` tags (channel ``*`` = every channel) — e.g. a
    fault-injecting source stamping the perturbations it applied, or a
    real collector flagging counter overflow / ring-buffer overruns.
    Analyzers fold matching tags into their health state
    (:mod:`repro.pipeline.health`) without changing the numerics.
    """

    quantum: int
    t0: int
    t1: int
    counts: Dict[str, np.ndarray] = field(default_factory=dict)
    conflicts: Optional[ConflictRecords] = None
    faults: Tuple[str, ...] = ()

    def faults_for(self, channel: str) -> Tuple[str, ...]:
        """The fault tags that apply to ``channel`` (exact or ``*``)."""
        return tuple(
            tag
            for tag in self.faults
            if tag.endswith(f":{channel}") or tag.endswith(":*")
        )

    def to_json(self) -> str:
        """Strict versioned JSON (``repro.pipeline.observation/v1``)."""
        from repro.pipeline.codec import observation_to_json

        return observation_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "QuantumObservation":
        """Decode :meth:`to_json` output; unknown fields are rejected."""
        from repro.pipeline.codec import observation_from_json

        return observation_from_json(text)


class ObservationConsumer(Protocol):
    """Anything that accepts per-quantum observations."""

    def push_quantum(self, obs: QuantumObservation) -> None: ...


class EventSource(Protocol):
    """A stream of per-quantum observations over named channels."""

    @property
    def quantum_cycles(self) -> int: ...

    def channels(self) -> Tuple[ChannelSpec, ...]: ...

    def subscribe(self, consumer: ObservationConsumer) -> None: ...


class _FullHistoryReader:
    """Window-reader shim over a tap that only offers ``density_counts``.

    Keeps :meth:`MachineEventSource.add_burst_channel` accepting any
    density source, at the legacy full-history cost.
    """

    def __init__(self, tap):
        self._tap = tap

    def read_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        return self._tap.density_counts(dt, t0, t1)


class MachineEventSource:
    """Live EventSource reading a simulated machine's taps each quantum.

    One hook on the machine serves every subscriber; channels are
    registered before (or between) runs with :meth:`add_burst_channel` /
    :meth:`enable_conflict_channel`. When an ``auditor`` is attached,
    conflict records are routed through its alternating vector registers
    — the hardware path software actually reads — before being handed to
    consumers.

    With ``columnar=True`` (the default) every channel is read through
    an incremental tap window reader
    (:meth:`~repro.sim.events.EventTap.window_reader`): per quantum this
    touches only the events of that quantum's window, carried zero-copy
    as numpy columns into the observation. ``columnar=False`` re-reads
    the taps' sorted full history each quantum (the original, reference
    path; bit-identical results, proven by the parity tests).
    """

    def __init__(
        self,
        machine,
        auditor=None,
        metrics: Optional[MetricsRegistry] = None,
        columnar: bool = True,
    ):
        self.machine = machine
        self.auditor = auditor
        self.columnar = bool(columnar)
        self._burst_taps: Dict[str, Tuple[ChannelSpec, object]] = {}
        self._burst_readers: Dict[str, object] = {}
        self._conflict_spec: Optional[ChannelSpec] = None
        self._conflict_reader = None
        self._consumers: List[ObservationConsumer] = []
        self.metrics = metrics if metrics is not None else get_default()
        self._m_observations = self.metrics.counter(
            "cchunter_source_observations_total",
            "quantum observations emitted to subscribed consumers",
        )
        self._m_emit = self.metrics.histogram(
            "cchunter_source_emit_seconds",
            "wall time of one quantum-boundary tap read + fan-out",
        )
        self._m_conflicts = self.metrics.counter(
            "cchunter_source_conflict_records_total",
            "cache conflict-miss records handed to consumers",
        )
        self._channel_counters: Dict[str, object] = {}
        machine.on_quantum_end(self._emit)

    @property
    def quantum_cycles(self) -> int:
        return self.machine.quantum_cycles

    def channels(self) -> Tuple[ChannelSpec, ...]:
        specs = [spec for spec, _tap in self._burst_taps.values()]
        if self._conflict_spec is not None:
            specs.append(self._conflict_spec)
        return tuple(specs)

    def subscribe(self, consumer: ObservationConsumer) -> None:
        self._consumers.append(consumer)

    def add_burst_channel(self, name: str, tap, dt: int) -> ChannelSpec:
        """Register a density tap (anything with ``density_counts``)."""
        if name in self._burst_taps:
            raise DetectionError(f"channel {name!r} is already registered")
        if dt <= 0:
            raise DetectionError(f"Δt must be positive, got {dt}")
        spec = ChannelSpec(name=name, kind=ChannelKind.BURST, dt=int(dt))
        self._burst_taps[name] = (spec, tap)
        if self.columnar:
            make_reader = getattr(tap, "window_reader", None)
            self._burst_readers[name] = (
                make_reader() if make_reader is not None
                else _FullHistoryReader(tap)
            )
        self._channel_counters[name] = self.metrics.counter(
            "cchunter_source_channel_events_total",
            "indicator events observed per channel",
            labels={"channel": name},
        )
        return spec

    def enable_conflict_channel(self, name: str = "cache") -> ChannelSpec:
        """Start emitting cache conflict-miss records each quantum."""
        if self._conflict_spec is not None:
            raise DetectionError("conflict channel is already enabled")
        self._conflict_spec = ChannelSpec(name=name, kind=ChannelKind.CONFLICT)
        if self.columnar:
            self._conflict_reader = self.machine.cache_miss_tap.window_reader()
        return self._conflict_spec

    def _emit(self, quantum: int, t0: int, t1: int) -> None:
        if not self._consumers:
            return
        timed = self.metrics.enabled
        t_start = perf_counter() if timed else 0.0
        with trace_span("source.emit", quantum=quantum):
            if self.columnar:
                readers = self._burst_readers
                counts = {
                    name: require_int64(
                        readers[name].read_counts(spec.dt, t0, t1),
                        f"channel {name!r} window counts",
                    )
                    for name, (spec, _tap) in self._burst_taps.items()
                }
            else:
                counts = {
                    name: require_int64(
                        tap.density_counts(spec.dt, t0, t1),
                        f"channel {name!r} window counts",
                    )
                    for name, (spec, tap) in self._burst_taps.items()
                }
            conflicts = None
            if self._conflict_spec is not None:
                if self._conflict_reader is not None:
                    times, reps, vics = self._conflict_reader.read(t0, t1)
                else:
                    times, reps, vics = self.machine.cache_miss_tap.records_in(
                        t0, t1
                    )
                require_int64(times, "conflict record timestamps")
                if self.auditor is not None:
                    self.auditor.vectors.record_batch(reps, vics)
                    reps, vics = self.auditor.vectors.drain()
                conflicts = ConflictRecords(
                    times=times, replacers=reps, victims=vics
                )
                self._m_conflicts.inc(int(times.size))
            obs = QuantumObservation(
                quantum=quantum, t0=t0, t1=t1, counts=counts, conflicts=conflicts
            )
            for consumer in self._consumers:
                consumer.push_quantum(obs)
        if timed:
            self._m_observations.inc()
            for name, counter in self._channel_counters.items():
                counter.inc(int(counts[name].sum()))
            self._m_emit.observe(perf_counter() - t_start)
