"""Streaming detection pipeline: sources → analyzers → session → sinks.

CC-Hunter's hardware is inherently streaming — countdown Δt registers,
saturating accumulators, and alternating vector registers emit one
observation per OS quantum. This package gives the software stack the
same shape:

- an :class:`EventSource` produces one :class:`QuantumObservation` per
  quantum (the simulator's taps are one source, replayed trace archives
  another — see :class:`repro.traces.ArchiveEventSource`);
- per-unit :class:`Analyzer` stages fold each observation into bounded
  incremental state (streaming density histograms, running-sums
  autocorrelograms);
- a :class:`DetectionSession` fans observations out to its analyzers and
  can render :class:`~repro.core.report.DetectionReport` verdicts at any
  quantum, not just at the end of a run;
- :class:`VerdictSink` consumers receive per-quantum verdict updates
  (collecting, printing, JSON-lines, callbacks).

:class:`~repro.core.detector.CCHunter` is a thin facade over one
``MachineEventSource`` + ``DetectionSession`` pair; ``analyze_traces``
replays an archive through an identical session, so live and offline
detection share a single code path.
"""

from repro.pipeline.analyzers import Analyzer, BurstAnalyzer, OscillationAnalyzer
from repro.pipeline.codec import (
    CodecError,
    channel_spec_from_dict,
    channel_spec_to_dict,
    observation_from_dict,
    observation_to_dict,
    verdict_from_dict,
    verdict_to_dict,
)
from repro.pipeline.health import Health, worst
from repro.pipeline.session import (
    DetectionSession,
    build_session,
    build_session_from_specs,
)
from repro.pipeline.sinks import (
    CallbackSink,
    CollectingSink,
    MetricsSink,
    StreamPrinterSink,
    TimeseriesSink,
    VerdictSink,
)
from repro.pipeline.source import (
    ChannelKind,
    ChannelSpec,
    ConflictRecords,
    EventSource,
    MachineEventSource,
    ObservationConsumer,
    QuantumObservation,
)

__all__ = [
    "Analyzer",
    "BurstAnalyzer",
    "OscillationAnalyzer",
    "Health",
    "worst",
    "DetectionSession",
    "build_session",
    "build_session_from_specs",
    "CodecError",
    "observation_to_dict",
    "observation_from_dict",
    "verdict_to_dict",
    "verdict_from_dict",
    "channel_spec_to_dict",
    "channel_spec_from_dict",
    "VerdictSink",
    "CollectingSink",
    "MetricsSink",
    "StreamPrinterSink",
    "TimeseriesSink",
    "CallbackSink",
    "ChannelKind",
    "ChannelSpec",
    "ConflictRecords",
    "EventSource",
    "MachineEventSource",
    "ObservationConsumer",
    "QuantumObservation",
]
