"""Versioned JSON codecs for the pipeline's boundary types.

The ROADMAP has long claimed :class:`~repro.pipeline.source.QuantumObservation`
and :class:`~repro.core.report.UnitVerdict` "round-trip as JSON", but
until the multi-tenant service needed a wire format nothing in the tree
actually owned that contract. This module does: explicit, versioned
codecs with **strict decoding** — unknown fields are rejected, required
fields must be present and well-typed, and numpy columns come back as
``int64`` exactly (the same dtype discipline
:func:`~repro.util.dtypes.require_int64` enforces on the hot path).

Formats (the ``format`` key is mandatory on decode):

- ``repro.pipeline.observation/v1`` — one quantum's observation:
  burst-channel count columns, optional conflict records, fault tags.
- ``repro.pipeline.verdict/v1`` — one unit's verdict, the exact field
  set of :meth:`UnitVerdict.to_dict` plus the format stamp.
- ``repro.pipeline.channel/v1`` — one :class:`ChannelSpec` (the
  service's ``hello`` frame carries a list of these).

Strictness is the point: a lenient decoder that ignores fields it does
not know silently drops data when the *other* side is newer, which in a
detection service means silently weakened evidence. Version bumps are
explicit; v1 decoders refuse anything else with :class:`CodecError`.

The dataclasses expose thin ``to_json``/``from_json`` conveniences that
delegate here, so offline tools get the codecs for free.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.report import UnitVerdict
from repro.errors import DetectionError
from repro.obs.tracing import TraceContext
from repro.pipeline.source import (
    ChannelKind,
    ChannelSpec,
    ConflictRecords,
    QuantumObservation,
)

OBSERVATION_FORMAT = "repro.pipeline.observation/v1"
VERDICT_FORMAT = "repro.pipeline.verdict/v1"
CHANNEL_FORMAT = "repro.pipeline.channel/v1"


class CodecError(DetectionError):
    """A payload failed strict schema validation during decode."""


def _require_mapping(payload: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise CodecError(
            f"{what}: expected a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_format(payload: Mapping[str, Any], expected: str, what: str) -> None:
    got = payload.get("format")
    if got != expected:
        raise CodecError(f"{what}: format must be {expected!r}, got {got!r}")


def _reject_unknown(
    payload: Mapping[str, Any], allowed: Tuple[str, ...], what: str
) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise CodecError(
            f"{what}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"v1 accepts only {', '.join(map(repr, allowed))}"
        )


def _require(payload: Mapping[str, Any], field: str, what: str) -> Any:
    if field not in payload:
        raise CodecError(f"{what}: missing required field {field!r}")
    return payload[field]


def _as_int(value: Any, what: str) -> int:
    # bool is an int subclass; a "quantum": true payload is corrupt.
    if isinstance(value, bool) or not isinstance(value, int):
        raise CodecError(f"{what}: expected an integer, got {value!r}")
    return value


def _int64_column(value: Any, what: str) -> np.ndarray:
    if not isinstance(value, (list, tuple)):
        raise CodecError(
            f"{what}: expected a list of integers, got {type(value).__name__}"
        )
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise CodecError(f"{what}: non-integer element {item!r}")
    return np.asarray(value, dtype=np.int64)


# ------------------------------------------------------------ observation

_OBS_FIELDS = ("format", "quantum", "t0", "t1", "counts", "conflicts", "faults")
_CONFLICT_FIELDS = ("times", "replacers", "victims")


def observation_to_dict(obs: QuantumObservation) -> Dict[str, Any]:
    """JSON-serializable view of one observation (plain scalars/lists)."""
    conflicts = None
    if obs.conflicts is not None:
        conflicts = {
            "times": [int(v) for v in obs.conflicts.times],
            "replacers": [int(v) for v in obs.conflicts.replacers],
            "victims": [int(v) for v in obs.conflicts.victims],
        }
    return {
        "format": OBSERVATION_FORMAT,
        "quantum": int(obs.quantum),
        "t0": int(obs.t0),
        "t1": int(obs.t1),
        "counts": {
            name: [int(v) for v in column]
            for name, column in obs.counts.items()
        },
        "conflicts": conflicts,
        "faults": list(obs.faults),
    }


def observation_from_dict(payload: Any) -> QuantumObservation:
    """Decode one observation; raises :class:`CodecError` on any drift."""
    what = "observation"
    payload = _require_mapping(payload, what)
    _check_format(payload, OBSERVATION_FORMAT, what)
    _reject_unknown(payload, _OBS_FIELDS, what)
    quantum = _as_int(_require(payload, "quantum", what), f"{what}.quantum")
    t0 = _as_int(_require(payload, "t0", what), f"{what}.t0")
    t1 = _as_int(_require(payload, "t1", what), f"{what}.t1")
    raw_counts = _require_mapping(
        _require(payload, "counts", what), f"{what}.counts"
    )
    counts = {
        str(name): _int64_column(column, f"{what}.counts[{name!r}]")
        for name, column in raw_counts.items()
    }
    conflicts: Optional[ConflictRecords] = None
    raw_conflicts = payload.get("conflicts")
    if raw_conflicts is not None:
        raw_conflicts = _require_mapping(raw_conflicts, f"{what}.conflicts")
        _reject_unknown(raw_conflicts, _CONFLICT_FIELDS, f"{what}.conflicts")
        columns = {
            field: _int64_column(
                _require(raw_conflicts, field, f"{what}.conflicts"),
                f"{what}.conflicts.{field}",
            )
            for field in _CONFLICT_FIELDS
        }
        sizes = {column.size for column in columns.values()}
        if len(sizes) > 1:
            raise CodecError(
                f"{what}.conflicts: ragged columns (lengths "
                f"{sorted(c.size for c in columns.values())})"
            )
        conflicts = ConflictRecords(
            times=columns["times"],
            replacers=columns["replacers"],
            victims=columns["victims"],
        )
    raw_faults = payload.get("faults", [])
    if not isinstance(raw_faults, (list, tuple)):
        raise CodecError(f"{what}.faults: expected a list of tags")
    faults = []
    for tag in raw_faults:
        if not isinstance(tag, str):
            raise CodecError(f"{what}.faults: non-string tag {tag!r}")
        faults.append(tag)
    return QuantumObservation(
        quantum=quantum,
        t0=t0,
        t1=t1,
        counts=counts,
        conflicts=conflicts,
        faults=tuple(faults),
    )


# ---------------------------------------------------------------- verdict

_VERDICT_REQUIRED = ("format", "unit", "method", "detected", "quanta_analyzed")
_VERDICT_FIELDS = _VERDICT_REQUIRED + (
    "max_likelihood_ratio",
    "recurrent",
    "burst_window_fraction",
    "oscillating_windows",
    "max_peak",
    "dominant_period",
    "notes",
    "health",
    "evidence",
)
_HEALTH_VALUES = ("ok", "degraded", "failed")


def verdict_to_dict(verdict: UnitVerdict) -> Dict[str, Any]:
    """JSON-serializable view: :meth:`UnitVerdict.to_dict` + format stamp."""
    out = verdict.to_dict()
    out["format"] = VERDICT_FORMAT
    return out


def _opt_number(payload: Mapping[str, Any], field: str, what: str):
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what}.{field}: expected a number, got {value!r}")
    return float(value)


def verdict_from_dict(payload: Any) -> UnitVerdict:
    """Decode one verdict; raises :class:`CodecError` on any drift."""
    what = "verdict"
    payload = _require_mapping(payload, what)
    _check_format(payload, VERDICT_FORMAT, what)
    _reject_unknown(payload, _VERDICT_FIELDS, what)
    for field in _VERDICT_REQUIRED[1:]:
        _require(payload, field, what)
    unit = payload["unit"]
    method = payload["method"]
    if not isinstance(unit, str) or not isinstance(method, str):
        raise CodecError(f"{what}: unit/method must be strings")
    detected = payload["detected"]
    if not isinstance(detected, bool):
        raise CodecError(f"{what}.detected: expected a bool, got {detected!r}")
    health = payload.get("health", "ok")
    if health not in _HEALTH_VALUES:
        raise CodecError(
            f"{what}.health: expected one of {_HEALTH_VALUES}, got {health!r}"
        )
    raw_notes = payload.get("notes", [])
    if not isinstance(raw_notes, (list, tuple)) or any(
        not isinstance(n, str) for n in raw_notes
    ):
        raise CodecError(f"{what}.notes: expected a list of strings")
    recurrent = payload.get("recurrent")
    if recurrent is not None and not isinstance(recurrent, bool):
        raise CodecError(
            f"{what}.recurrent: expected a bool or null, got {recurrent!r}"
        )
    oscillating = payload.get("oscillating_windows")
    if oscillating is not None:
        oscillating = _as_int(oscillating, f"{what}.oscillating_windows")
    evidence = payload.get("evidence")
    if evidence is not None and not isinstance(evidence, Mapping):
        raise CodecError(f"{what}.evidence: expected an object or null")
    return UnitVerdict(
        unit=unit,
        method=method,
        detected=detected,
        quanta_analyzed=_as_int(
            payload["quanta_analyzed"], f"{what}.quanta_analyzed"
        ),
        max_likelihood_ratio=_opt_number(payload, "max_likelihood_ratio", what),
        recurrent=recurrent,
        burst_window_fraction=_opt_number(
            payload, "burst_window_fraction", what
        ),
        oscillating_windows=oscillating,
        max_peak=_opt_number(payload, "max_peak", what),
        dominant_period=_opt_number(payload, "dominant_period", what),
        notes=tuple(raw_notes),
        health=health,
        evidence=dict(evidence) if evidence is not None else None,
    )


# ----------------------------------------------------------- channel spec

_CHANNEL_FIELDS = ("format", "name", "kind", "dt")


def channel_spec_to_dict(spec: ChannelSpec) -> Dict[str, Any]:
    return {
        "format": CHANNEL_FORMAT,
        "name": spec.name,
        "kind": spec.kind.value,
        "dt": None if spec.dt is None else int(spec.dt),
    }


def channel_spec_from_dict(payload: Any) -> ChannelSpec:
    what = "channel spec"
    payload = _require_mapping(payload, what)
    _check_format(payload, CHANNEL_FORMAT, what)
    _reject_unknown(payload, _CHANNEL_FIELDS, what)
    name = _require(payload, "name", what)
    if not isinstance(name, str) or not name:
        raise CodecError(f"{what}.name: expected a non-empty string")
    raw_kind = _require(payload, "kind", what)
    try:
        kind = ChannelKind(raw_kind)
    except ValueError:
        raise CodecError(
            f"{what}.kind: expected one of "
            f"{[k.value for k in ChannelKind]}, got {raw_kind!r}"
        ) from None
    dt = payload.get("dt")
    if dt is not None:
        dt = _as_int(dt, f"{what}.dt")
        if dt <= 0:
            raise CodecError(f"{what}.dt: must be positive, got {dt}")
    if kind is ChannelKind.BURST and dt is None:
        raise CodecError(f"{what}: burst channels require a Δt width")
    return ChannelSpec(name=name, kind=kind, dt=dt)


# ---------------------------------------------------------- trace context

_TRACE_FIELDS = ("trace_id", "parent_span")


def trace_context_to_dict(ctx: "TraceContext") -> Dict[str, Any]:
    """Serialize the optional trace-correlation sub-object.

    Unlike the top-level formats this carries no ``format`` stamp: it
    only ever appears as an *optional* field inside a v1 wire frame
    (``hello``/``obs``), where the frame's own schema scopes it.
    """
    out: Dict[str, Any] = {"trace_id": ctx.trace_id}
    if ctx.parent_span:
        out["parent_span"] = ctx.parent_span
    return out


def trace_context_from_dict(payload: Any) -> "TraceContext":
    what = "trace context"
    payload = _require_mapping(payload, what)
    _reject_unknown(payload, _TRACE_FIELDS, what)
    trace_id = _require(payload, "trace_id", what)
    if not isinstance(trace_id, str) or not trace_id:
        raise CodecError(f"{what}.trace_id: expected a non-empty string")
    if len(trace_id) > 64:
        raise CodecError(
            f"{what}.trace_id: too long ({len(trace_id)} > 64 chars)"
        )
    parent_span = payload.get("parent_span", "")
    if not isinstance(parent_span, str) or len(parent_span) > 64:
        raise CodecError(
            f"{what}.parent_span: expected a string of <= 64 chars"
        )
    return TraceContext(trace_id=trace_id, parent_span=parent_span)


# ------------------------------------------------------------------- json


def observation_to_json(obs: QuantumObservation) -> str:
    return json.dumps(observation_to_dict(obs), sort_keys=True)


def observation_from_json(text: str) -> QuantumObservation:
    return observation_from_dict(_loads(text, "observation"))


def verdict_to_json(verdict: UnitVerdict) -> str:
    return json.dumps(verdict_to_dict(verdict), sort_keys=True)


def verdict_from_json(text: str) -> UnitVerdict:
    return verdict_from_dict(_loads(text, "verdict"))


def _loads(text: str, what: str) -> Any:
    try:
        return json.loads(text)
    except ValueError as exc:
        raise CodecError(f"{what}: payload is not valid JSON: {exc}") from None
