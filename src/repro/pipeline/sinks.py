"""Verdict sinks: downstream consumers of per-quantum verdict updates.

Sinks receive the full :class:`~repro.core.report.DetectionReport` after
every quantum (``on_quantum``) and once when the session closes
(``on_close``). They are the pipeline's integration points: collect for
tests and notebooks, print text or JSON lines for operators and log
shippers, or call back into arbitrary code.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, List, Optional, Protocol, TextIO, Tuple

from repro.core.report import DetectionReport, UnitVerdict


class VerdictSink(Protocol):
    """A consumer of per-quantum verdict updates."""

    def on_quantum(self, quantum: int, report: DetectionReport) -> None: ...

    def on_close(self, report: DetectionReport) -> None: ...


class CollectingSink:
    """Keeps every per-quantum report in memory (tests, notebooks)."""

    def __init__(self):
        self.reports: List[Tuple[int, DetectionReport]] = []
        self.final: Optional[DetectionReport] = None

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self.reports.append((quantum, report))

    def on_close(self, report: DetectionReport) -> None:
        self.final = report

    def first_detection(self, unit: str) -> Optional[int]:
        """First collected quantum at which ``unit`` was detected."""
        for quantum, report in self.reports:
            verdict = report.verdict_for(unit)
            if verdict.detected:
                return quantum
        return None


def _verdict_line(verdict: UnitVerdict) -> str:
    flag = "LIKELY" if verdict.detected else "clear"
    if verdict.method == "burst":
        lr = (
            f"{verdict.max_likelihood_ratio:.3f}"
            if verdict.max_likelihood_ratio is not None
            else "n/a"
        )
        return f"{verdict.unit}: {flag} lr={lr}"
    peak = f"{verdict.max_peak:.3f}" if verdict.max_peak is not None else "n/a"
    return (
        f"{verdict.unit}: {flag} oscillating={verdict.oscillating_windows}"
        f" peak={peak}"
    )


class StreamPrinterSink:
    """Writes one line per quantum — human-readable or JSON lines."""

    def __init__(self, stream: Optional[TextIO] = None, jsonl: bool = False):
        self.stream = stream if stream is not None else sys.stdout
        self.jsonl = jsonl

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        if self.jsonl:
            line = json.dumps(
                {"quantum": quantum, "report": report.to_dict()},
                sort_keys=True,
            )
        else:
            line = f"[quantum {quantum:4d}] " + " | ".join(
                _verdict_line(v) for v in report.verdicts
            )
        print(line, file=self.stream, flush=True)

    def on_close(self, report: DetectionReport) -> None:
        pass


class CallbackSink:
    """Adapts plain callables to the sink protocol."""

    def __init__(
        self,
        on_quantum: Optional[Callable[[int, DetectionReport], None]] = None,
        on_close: Optional[Callable[[DetectionReport], None]] = None,
    ):
        self._on_quantum = on_quantum
        self._on_close = on_close

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        if self._on_quantum is not None:
            self._on_quantum(quantum, report)

    def on_close(self, report: DetectionReport) -> None:
        if self._on_close is not None:
            self._on_close(report)
