"""Verdict sinks: downstream consumers of per-quantum verdict updates.

Sinks receive the full :class:`~repro.core.report.DetectionReport` after
every quantum (``on_quantum``) and once when the session closes
(``on_close``). They are the pipeline's integration points: collect for
tests and notebooks, print text or JSON lines for operators and log
shippers, or call back into arbitrary code.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List, Optional, Protocol, TextIO, Tuple

from repro.core.report import DetectionReport, UnitVerdict
from repro.obs.metrics import MetricsRegistry, get_default


class VerdictSink(Protocol):
    """A consumer of per-quantum verdict updates."""

    def on_quantum(self, quantum: int, report: DetectionReport) -> None: ...

    def on_close(self, report: DetectionReport) -> None: ...


class CollectingSink:
    """Keeps every per-quantum report in memory (tests, notebooks)."""

    def __init__(self):
        self.reports: List[Tuple[int, DetectionReport]] = []
        self.final: Optional[DetectionReport] = None

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self.reports.append((quantum, report))

    def on_close(self, report: DetectionReport) -> None:
        self.final = report

    def first_detection(self, unit: str) -> Optional[int]:
        """First collected quantum at which ``unit`` was detected."""
        for quantum, report in self.reports:
            verdict = report.verdict_for(unit)
            if verdict.detected:
                return quantum
        return None


def _verdict_line(verdict: UnitVerdict) -> str:
    flag = "LIKELY" if verdict.detected else "clear"
    if verdict.method == "burst":
        lr = (
            f"{verdict.max_likelihood_ratio:.3f}"
            if verdict.max_likelihood_ratio is not None
            else "n/a"
        )
        return f"{verdict.unit}: {flag} lr={lr}"
    peak = f"{verdict.max_peak:.3f}" if verdict.max_peak is not None else "n/a"
    return (
        f"{verdict.unit}: {flag} oscillating={verdict.oscillating_windows}"
        f" peak={peak}"
    )


class StreamPrinterSink:
    """Writes one line per quantum — human-readable or JSON lines."""

    def __init__(self, stream: Optional[TextIO] = None, jsonl: bool = False):
        self.stream = stream if stream is not None else sys.stdout
        self.jsonl = jsonl

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        if self.jsonl:
            line = json.dumps(
                {"quantum": quantum, "report": report.to_dict()},
                sort_keys=True,
            )
        else:
            line = f"[quantum {quantum:4d}] " + " | ".join(
                _verdict_line(v) for v in report.verdicts
            )
        print(line, file=self.stream, flush=True)

    def on_close(self, report: DetectionReport) -> None:
        pass


class MetricsSink:
    """Folds per-quantum verdict updates into a metrics registry.

    The observability counterpart of :class:`StreamPrinterSink`: instead
    of printing each report it counts them, tallies per-unit detected
    verdicts, and records each unit's first-detection quantum as a gauge
    — so a dashboard scraping the registry sees detection state without
    any report parsing. Attach it to any session (or pass it to
    ``analyze_traces``) to make replayed archives export the same metric
    names live sessions do.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else get_default()
        self._m_reports = self.metrics.counter(
            "cchunter_sink_reports_total",
            "per-quantum verdict reports dispatched to sinks",
        )
        self._m_closes = self.metrics.counter(
            "cchunter_sink_closes_total",
            "session closes observed",
        )
        self._detected: Dict[str, object] = {}
        self._first_seen: Dict[str, int] = {}

    def _detected_counter(self, unit: str):
        counter = self._detected.get(unit)
        if counter is None:
            counter = self._detected[unit] = self.metrics.counter(
                "cchunter_sink_detected_verdicts_total",
                "per-quantum reports in which the unit's verdict fired",
                labels={"unit": unit},
            )
        return counter

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self._m_reports.inc()
        for verdict in report.verdicts:
            if not verdict.detected:
                continue
            self._detected_counter(verdict.unit).inc()
            if verdict.unit not in self._first_seen:
                self._first_seen[verdict.unit] = quantum
                self.metrics.gauge(
                    "cchunter_sink_first_detection_quantum",
                    "quantum of the first detected verdict this sink saw",
                    labels={"unit": verdict.unit},
                ).set(quantum)

    def on_close(self, report: DetectionReport) -> None:
        self._m_closes.inc()

    def first_detection(self, unit: str) -> Optional[int]:
        """First quantum at which ``unit`` was detected, or None."""
        return self._first_seen.get(unit)


class TimeseriesSink:
    """Drives a :class:`~repro.obs.timeseries.MetricsSampler` per quantum.

    Attach to any session (or pass to ``analyze_traces``) to get a
    quantum-aligned metrics time series without touching the source:
    every per-quantum report triggers the sampler's quantum clock, and
    the close event takes one final sample so the series always ends
    with the run's terminal state.
    """

    def __init__(self, sampler):
        self.sampler = sampler

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self.sampler.maybe_sample(quantum=quantum)

    def on_close(self, report: DetectionReport) -> None:
        self.sampler.sample(label="close")


class CallbackSink:
    """Adapts plain callables to the sink protocol."""

    def __init__(
        self,
        on_quantum: Optional[Callable[[int, DetectionReport], None]] = None,
        on_close: Optional[Callable[[DetectionReport], None]] = None,
    ):
        self._on_quantum = on_quantum
        self._on_close = on_close

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        if self._on_quantum is not None:
            self._on_quantum(quantum, report)

    def on_close(self, report: DetectionReport) -> None:
        if self._on_close is not None:
            self._on_close(report)
