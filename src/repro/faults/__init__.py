"""Deterministic fault injection for the detection pipeline.

The robustness counterpart of the paper's noise-injection experiments
(Figures 10-13): seeded, composable injectors perturb any EventSource's
observation stream — event loss, duplication, reordering, blackout
stalls, counter bit-flips, forced accumulator saturation — and a
separate helper damages trace archives to exercise the checksum path.
Every scenario is a pure function of a ``SeedSequence``-derived stream,
so it replays bit-for-bit.

Entry points:

- :func:`parse_inject_specs` / :func:`build_injectors` — the CLI's
  ``--inject "drop:0.3,dup:0.05@membus"`` mini-language;
- :class:`FaultInjectingSource` — wrap a source, perturb, re-emit;
- :func:`corrupt_archive` — damage a trace archive under its checksums.

Catalog, semantics, and health interactions: docs/ROBUSTNESS.md.
"""

from repro.faults.archive import corrupt_archive
from repro.faults.injectors import (
    BitFlipInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjector,
    ReorderInjector,
    SaturateInjector,
    StallInjector,
    apply_injectors,
)
from repro.faults.source import FaultInjectingSource
from repro.faults.spec import (
    FaultSpec,
    build_injectors,
    injectors_from_string,
    parse_inject_spec,
    parse_inject_specs,
)
from repro.faults.wire import (
    FlakyFrameLink,
    FrameAction,
    build_link,
    parse_link_spec,
)

__all__ = [
    "FaultInjector",
    "DropInjector",
    "DuplicateInjector",
    "ReorderInjector",
    "StallInjector",
    "BitFlipInjector",
    "SaturateInjector",
    "apply_injectors",
    "FaultInjectingSource",
    "FaultSpec",
    "parse_inject_spec",
    "parse_inject_specs",
    "build_injectors",
    "injectors_from_string",
    "corrupt_archive",
    "FlakyFrameLink",
    "FrameAction",
    "build_link",
    "parse_link_spec",
]
