"""Fault-injection spec strings: the ``--inject`` mini-language.

A spec names one injector with its parameters, optionally targeted at a
single channel::

    kind[:param[:param...]][@channel]

    drop:0.30            # lose 30% of events on every channel
    drop:0.05@membus     # lose 5% of bus-lock events only
    dup:0.10             # duplicate 10% of events
    reorder:8@cache      # shuffle conflict records within blocks of 8
    stall:0.01:32        # 1% chance per window of a <=32-window blackout
    bitflip:0.001        # flip one bit in 0.1% of counter reads
    saturate:0.02        # force 2% of windows to the 16-bit entry max

Several specs separated by commas compose left to right:
``drop:0.1,dup:0.05`` first thins, then duplicates the survivors.

Parsing is strict — unknown kinds, malformed probabilities, and
out-of-range parameters raise :class:`~repro.errors.FaultSpecError`,
which the CLI maps to the usage exit code. :func:`build_injectors`
turns parsed specs into live injector objects seeded from a single base
seed, so a spec string plus a seed fully determines the perturbation
(see docs/ROBUSTNESS.md for the injector catalog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import FaultSpecError
from repro.faults.injectors import (
    BitFlipInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjector,
    ReorderInjector,
    SaturateInjector,
    StallInjector,
)


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``--inject`` clause: kind, raw params, target channel."""

    kind: str
    params: Tuple[str, ...]
    channel: str = "*"

    def __str__(self) -> str:
        text = ":".join((self.kind, *self.params))
        return text if self.channel == "*" else f"{text}@{self.channel}"


def _probability(spec: FaultSpec, value: str, what: str = "probability") -> float:
    try:
        p = float(value)
    except ValueError:
        raise FaultSpecError(
            f"{spec}: {what} {value!r} is not a number"
        ) from None
    if not 0.0 <= p <= 1.0:
        raise FaultSpecError(f"{spec}: {what} {p} must be in [0, 1]")
    return p


def _positive_int(spec: FaultSpec, value: str, what: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise FaultSpecError(f"{spec}: {what} {value!r} is not an integer") from None
    if n < 1:
        raise FaultSpecError(f"{spec}: {what} must be >= 1, got {n}")
    return n


def _arity(spec: FaultSpec, low: int, high: int) -> None:
    if not low <= len(spec.params) <= high:
        wanted = str(low) if low == high else f"{low}-{high}"
        raise FaultSpecError(
            f"{spec}: takes {wanted} parameter(s), got {len(spec.params)}"
        )


def parse_inject_spec(text: str) -> FaultSpec:
    """Parse one ``kind:params[@channel]`` clause (no validation of params)."""
    clause = text.strip()
    if not clause:
        raise FaultSpecError("empty fault spec")
    channel = "*"
    if "@" in clause:
        clause, channel = clause.rsplit("@", 1)
        channel = channel.strip()
        if not channel:
            raise FaultSpecError(f"{text!r}: empty channel after '@'")
    parts = [p.strip() for p in clause.split(":")]
    kind = parts[0].lower()
    if kind not in _BUILDERS:
        known = ", ".join(sorted(_BUILDERS))
        raise FaultSpecError(
            f"unknown fault kind {kind!r} in {text!r} (known: {known})"
        )
    return FaultSpec(kind=kind, params=tuple(parts[1:]), channel=channel)


def parse_inject_specs(text: str) -> List[FaultSpec]:
    """Parse a comma-separated list of clauses, preserving order."""
    specs = [
        parse_inject_spec(part) for part in text.split(",") if part.strip()
    ]
    if not specs:
        raise FaultSpecError("empty fault spec")
    return specs


def _build_drop(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 1)
    return DropInjector(
        _probability(spec, spec.params[0]),
        channel=spec.channel, seed=seed, index=index,
    )


def _build_dup(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 1)
    return DuplicateInjector(
        _probability(spec, spec.params[0]),
        channel=spec.channel, seed=seed, index=index,
    )


def _build_reorder(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 1)
    return ReorderInjector(
        _positive_int(spec, spec.params[0], "window"),
        channel=spec.channel, seed=seed, index=index,
    )


def _build_stall(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 2)
    max_len = (
        _positive_int(spec, spec.params[1], "max stall length")
        if len(spec.params) > 1
        else 16
    )
    return StallInjector(
        _probability(spec, spec.params[0], "stall probability"),
        max_len=max_len, channel=spec.channel, seed=seed, index=index,
    )


def _build_bitflip(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 2)
    bits = (
        _positive_int(spec, spec.params[1], "bit width")
        if len(spec.params) > 1
        else 16
    )
    return BitFlipInjector(
        _probability(spec, spec.params[0], "flip probability"),
        bit_width=bits, channel=spec.channel, seed=seed, index=index,
    )


def _build_saturate(spec: FaultSpec, seed: int, index: int) -> FaultInjector:
    _arity(spec, 1, 1)
    return SaturateInjector(
        _probability(spec, spec.params[0]),
        channel=spec.channel, seed=seed, index=index,
    )


_BUILDERS = {
    "drop": _build_drop,
    "dup": _build_dup,
    "reorder": _build_reorder,
    "stall": _build_stall,
    "bitflip": _build_bitflip,
    "saturate": _build_saturate,
}


def build_injectors(
    specs: Sequence[FaultSpec], seed: int = 0
) -> List[FaultInjector]:
    """Instantiate injectors for ``specs``, each on its own substream.

    Injector *i* draws from a ``SeedSequence``-derived stream keyed by
    ``(seed, str(spec), i)``, so the same spec string and seed always
    reproduce the same perturbation, independent of the other clauses.
    """
    return [
        _BUILDERS[spec.kind](spec, seed, index)
        for index, spec in enumerate(specs)
    ]


def injectors_from_string(text: str, seed: int = 0) -> List[FaultInjector]:
    """Convenience: ``build_injectors(parse_inject_specs(text), seed)``."""
    return build_injectors(parse_inject_specs(text), seed=seed)
