"""Flaky-client frame faults for the serve wire protocol.

Where :mod:`repro.faults.injectors` perturb observation *contents*, this
module perturbs frame *delivery*: a :class:`FlakyFrameLink` sits between
a serve client and its socket and decides, per observation frame,
whether to deliver it, drop it on the floor, replace it with a
well-framed garbage body, or stall before sending. The length-prefix
framing is always preserved — a flaky client exercises the service's
recoverable paths (sequence-gap ``lost:*`` tags, non-fatal ``error``
frames, latency), not its fatal stream-corruption path.

Spec mini-language, mirroring ``--inject``::

    drop:0.20            # drop 20% of obs frames (server sees seq gaps)
    garbage:0.05         # replace 5% with undecodable-JSON bodies
    stall:0.10:0.05      # before 10% of frames, sleep 0.05 s
    drop:0.2,stall:0.1   # clauses compose; drop wins over garbage

Decisions are a pure function of ``(seed, spec, frame index)`` via the
same :func:`~repro.util.rng.derive_rng` substream discipline as the
observation injectors, so a flaky run replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import FaultSpecError
from repro.util.rng import derive_rng

#: A well-framed body no JSON decoder accepts: exercises the service's
#: FrameDecodeError path without ever breaking stream alignment.
GARBAGE_BODY = b"\xff{not json"

#: Byte soups for the telemetry plane's robustness tests: things a
#: port scanner, a confused HTTP client, or a truncated request might
#: deliver to the admin endpoint. The endpoint must answer 400/405 (or
#: just hang up) and keep serving — never crash or wedge the loop.
GARBAGE_HTTP_REQUESTS: Tuple[bytes, ...] = (
    b"\xff\xfe\x00garbage\r\n\r\n",
    b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
    b"GET\r\n\r\n",
    b"GET " + b"/" * 4200 + b" HTTP/1.1\r\n\r\n",
    b"",
)


@dataclass(frozen=True)
class FrameAction:
    """What the link does with one observation frame."""

    #: Frame is never written; the next delivered frame's seq gap tells
    #: the server how many quanta were lost.
    drop: bool = False
    #: Frame body is replaced with :data:`GARBAGE_BODY` (same framing).
    garbage: bool = False
    #: Seconds the client sleeps before writing (0.0 = no stall).
    stall: float = 0.0


@dataclass(frozen=True)
class _Clause:
    kind: str
    p: float
    stall_seconds: float = 0.0


def _probability(value: str, clause: str) -> float:
    try:
        p = float(value)
    except ValueError:
        raise FaultSpecError(
            f"{clause!r}: probability {value!r} is not a number"
        ) from None
    if not 0.0 <= p <= 1.0:
        raise FaultSpecError(f"{clause!r}: probability {p} must be in [0, 1]")
    return p


def parse_link_spec(text: str) -> Tuple[_Clause, ...]:
    """Parse a comma-separated flaky-link spec (strict, ordered)."""
    clauses: List[_Clause] = []
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        parts = [p.strip() for p in clause.split(":")]
        kind = parts[0].lower()
        if kind in ("drop", "garbage"):
            if len(parts) != 2:
                raise FaultSpecError(
                    f"{clause!r}: takes exactly one probability"
                )
            clauses.append(_Clause(kind, _probability(parts[1], clause)))
        elif kind == "stall":
            if len(parts) not in (2, 3):
                raise FaultSpecError(
                    f"{clause!r}: takes probability[:seconds]"
                )
            seconds = 0.05
            if len(parts) == 3:
                try:
                    seconds = float(parts[2])
                except ValueError:
                    raise FaultSpecError(
                        f"{clause!r}: stall seconds {parts[2]!r} is not "
                        "a number"
                    ) from None
                if seconds < 0:
                    raise FaultSpecError(
                        f"{clause!r}: stall seconds must be >= 0"
                    )
            clauses.append(
                _Clause(kind, _probability(parts[1], clause), seconds)
            )
        else:
            raise FaultSpecError(
                f"unknown frame fault kind {kind!r} in {clause!r} "
                "(known: drop, garbage, stall)"
            )
    if not clauses:
        raise FaultSpecError("empty frame fault spec")
    return tuple(clauses)


class FlakyFrameLink:
    """Seeded per-frame delivery policy for a serve client.

    Each clause draws from its own ``(seed, spec-kind, clause-index)``
    substream, one draw per frame in frame order — so the same spec,
    seed, and frame sequence replay the identical delivery pattern.
    """

    def __init__(self, spec: str, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self.clauses = parse_link_spec(spec)
        self._rngs = [
            derive_rng(seed, "faults", "wire", clause.kind, index)
            for index, clause in enumerate(self.clauses)
        ]
        self._next_index = 0
        self.dropped = 0
        self.garbled = 0
        self.stalled = 0

    def action(self, index: Optional[int] = None) -> FrameAction:
        """The fate of observation frame ``index`` (default: next)."""
        if index is None:
            index = self._next_index
        self._next_index = index + 1
        drop = garbage = False
        stall = 0.0
        for clause, rng in zip(self.clauses, self._rngs):
            # One draw per (clause, frame) in frame order keeps each
            # clause's stream aligned regardless of the others' verdicts.
            hit = float(rng.random()) < clause.p
            if not hit:
                continue
            if clause.kind == "drop":
                drop = True
            elif clause.kind == "garbage":
                garbage = True
            else:
                stall = max(stall, clause.stall_seconds)
        if drop:
            garbage = False  # a dropped frame never reaches the wire
        self.dropped += int(drop)
        self.garbled += int(garbage)
        self.stalled += int(stall > 0.0)
        return FrameAction(drop=drop, garbage=garbage, stall=stall)


def build_link(spec: Optional[str], seed: int = 0) -> Optional[FlakyFrameLink]:
    """A link for ``spec``, or None for no fault injection."""
    if spec is None or not spec.strip():
        return None
    return FlakyFrameLink(spec, seed=seed)


__all__: Sequence[str] = (
    "GARBAGE_BODY",
    "GARBAGE_HTTP_REQUESTS",
    "FlakyFrameLink",
    "FrameAction",
    "build_link",
    "parse_link_spec",
)
