"""FaultInjectingSource: wrap any EventSource with an injector chain.

The wrapper subscribes itself to the inner source (a live
:class:`~repro.pipeline.source.MachineEventSource`, a replayed
:class:`~repro.traces.ArchiveEventSource`, or anything else speaking the
EventSource protocol), perturbs every observation through its injector
chain, and fans the perturbed stream out to its own consumers — the
inner source and the analyzers never know faults are being injected,
except through the ``faults`` tags stamped on touched observations.

Injection activity is exported through the ``cchunter_fault_*`` metric
family (per-injector-kind labels; see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injectors import FaultInjector, apply_injectors
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_default
from repro.pipeline.source import (
    ChannelKind,
    ChannelSpec,
    ObservationConsumer,
    QuantumObservation,
)

_log = get_logger("faults.source")


class FaultInjectingSource:
    """An EventSource that replays another source through fault injectors."""

    def __init__(
        self,
        inner,
        injectors: Sequence[FaultInjector],
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.inner = inner
        self.injectors = list(injectors)
        self._consumers: List[ObservationConsumer] = []
        self.metrics = metrics if metrics is not None else get_default()
        self._m_quanta: Dict[str, object] = {}
        self._m_dropped: Dict[str, object] = {}
        self._m_added: Dict[str, object] = {}
        self._m_corrupted: Dict[str, object] = {}
        self._last: Dict[int, Tuple[int, int, int, int]] = {}
        for injector in self.injectors:
            labels = {"kind": injector.kind}
            self._m_quanta[injector.kind] = self.metrics.counter(
                "cchunter_fault_quanta_total",
                "quantum observations actually perturbed, per injector kind",
                labels=labels,
            )
            self._m_dropped[injector.kind] = self.metrics.counter(
                "cchunter_fault_events_dropped_total",
                "indicator events erased by fault injection",
                labels=labels,
            )
            self._m_added[injector.kind] = self.metrics.counter(
                "cchunter_fault_events_added_total",
                "indicator events fabricated by fault injection",
                labels=labels,
            )
            self._m_corrupted[injector.kind] = self.metrics.counter(
                "cchunter_fault_values_corrupted_total",
                "counter values corrupted or displaced by fault injection",
                labels=labels,
            )
            self._last[id(injector)] = (0, 0, 0, 0)
        inner.subscribe(self)
        if self.injectors:
            _log.info(
                "fault injection active: %s",
                ", ".join(i.kind for i in self.injectors),
            )

    # ------------------------------------------------- EventSource protocol

    @property
    def quantum_cycles(self) -> int:
        return self.inner.quantum_cycles

    def channels(self) -> Tuple[ChannelSpec, ...]:
        return self.inner.channels()

    def subscribe(self, consumer: ObservationConsumer) -> None:
        self._consumers.append(consumer)

    def replay(self) -> None:
        """Delegate to the inner source's replay (archive sources)."""
        self.inner.replay()

    # ------------------------------------------------------------ streaming

    @property
    def conflict_channel(self) -> str:
        for spec in self.inner.channels():
            if spec.kind is ChannelKind.CONFLICT:
                return spec.name
        return "cache"

    def push_quantum(self, obs: QuantumObservation) -> None:
        perturbed = apply_injectors(
            self.injectors, obs, conflict_channel=self.conflict_channel
        )
        if self.metrics.enabled:
            for injector in self.injectors:
                now = (
                    injector.quanta_touched,
                    injector.events_dropped,
                    injector.events_added,
                    injector.values_corrupted,
                )
                before = self._last[id(injector)]
                if now != before:
                    kind = injector.kind
                    self._m_quanta[kind].inc(now[0] - before[0])
                    self._m_dropped[kind].inc(now[1] - before[1])
                    self._m_added[kind].inc(now[2] - before[2])
                    self._m_corrupted[kind].inc(now[3] - before[3])
                    self._last[id(injector)] = now
        for consumer in self._consumers:
            consumer.push_quantum(perturbed)
