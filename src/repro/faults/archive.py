"""Archive-record corruption: damage trace archives for resilience tests.

Trace archives (:mod:`repro.traces`) carry a per-channel CRC manifest;
this module is the attacker/bit-rot side of that contract. It rewrites
an ``.npz`` archive with deterministic, seeded value corruption in
chosen record arrays while **preserving the original checksum
manifest** — producing exactly the mismatch ``load_traces`` must catch.

The outer zip container stays valid (the corruption is applied to the
decoded arrays and the archive is re-written), so nothing short of the
per-channel CRCs can tell the archive has been damaged — the scenario
the manifest exists for.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import FaultSpecError
from repro.util.rng import derive_rng

#: Scalar/meta keys that corruption never touches.
_META_KEYS = frozenset(
    {
        "format_version",
        "quantum_cycles",
        "n_quanta",
        "divider_dt",
        "multiplier_dt",
        "checksum_manifest",
    }
)


def corrupt_archive(
    path: Union[str, Path],
    out_path: Optional[Union[str, Path]] = None,
    keys: Optional[Sequence[str]] = None,
    n_values: int = 8,
    seed: int = 0,
) -> List[str]:
    """Corrupt ``n_values`` entries in each targeted record array.

    ``keys`` selects the arrays to damage (default: the largest record
    array); the archive is rewritten in place unless ``out_path`` is
    given. Returns the list of keys actually corrupted. Deterministic in
    ``seed``.
    """
    src = Path(path)
    dst = Path(out_path) if out_path is not None else src
    with np.load(src) as data:
        payload: Dict[str, np.ndarray] = {k: data[k] for k in data.files}
    candidates = [
        k
        for k, v in payload.items()
        if k not in _META_KEYS and v.size > 0 and v.dtype.kind in "iuf"
    ]
    if keys is None:
        if not candidates:
            raise FaultSpecError(f"{src}: no corruptible record arrays")
        keys = [max(candidates, key=lambda k: payload[k].size)]
    else:
        unknown = [k for k in keys if k not in payload]
        if unknown:
            raise FaultSpecError(f"{src}: no such record arrays: {unknown}")
    rng = derive_rng(seed, "faults.archive", src.name)
    corrupted: List[str] = []
    for key in keys:
        arr = payload[key].copy()
        if arr.size == 0:
            continue
        hits = rng.integers(0, arr.size, size=min(n_values, arr.size))
        flat = arr.reshape(-1)
        if arr.dtype.kind == "f":
            flat[hits] = flat[hits] * -3.0 + 1.0
        else:
            # XOR a mid-range bit so small counters change visibly but
            # stay within the dtype's range.
            flat[hits] = flat[hits] ^ np.asarray(1 << 7, dtype=arr.dtype)
        payload[key] = arr
        corrupted.append(key)
    if not corrupted:
        raise FaultSpecError(f"{src}: nothing was corrupted")
    np.savez_compressed(dst, **payload)
    return corrupted
