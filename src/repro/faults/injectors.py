"""Composable, deterministic fault injectors over observation streams.

Each injector is a pure function of its own ``SeedSequence``-derived
random stream (:func:`repro.util.rng.derive_rng` keyed by ``(seed,
"faults", kind, channel, index)``) and the observation sequence it is
applied to — so a fault scenario is replayable **bit-for-bit**: the same
spec string, seed, and input stream always produce the identical
perturbed stream, no matter where or how many times it runs.

Injectors transform one :class:`QuantumObservation` at a time and stamp
a ``"kind:channel"`` fault tag onto every observation they actually
changed; analyzers fold matching tags into ``DEGRADED`` health while
the numerics run on the perturbed data. The catalog (parameters and
semantics) is documented in docs/ROBUSTNESS.md; ``--inject`` spec
parsing lives in :mod:`repro.faults.spec`.

Random draws always iterate burst channels in sorted-name order, so the
stream consumed per quantum does not depend on dict insertion order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pipeline.source import ConflictRecords, QuantumObservation
from repro.util.rng import derive_rng


class FaultInjector:
    """Base class: seeded stream + channel targeting + change tracking.

    Subclasses implement :meth:`_perturb_counts` (burst channels) and/or
    :meth:`_perturb_conflicts` (the conflict channel); the base class
    handles targeting, tag stamping, and observation reconstruction.
    """

    kind = "noop"

    def __init__(self, channel: str = "*", seed: int = 0, index: int = 0):
        self.channel = channel
        self.rng = derive_rng(seed, "faults", self.kind, channel, index)
        #: Cumulative change tallies, exported as metrics by the source.
        self.events_dropped = 0
        self.events_added = 0
        self.values_corrupted = 0
        self.quanta_touched = 0

    # ------------------------------------------------------------- plumbing

    def _targets(self, name: str) -> bool:
        return self.channel in ("*", name)

    def apply(
        self, obs: QuantumObservation, conflict_channel: str = "cache"
    ) -> QuantumObservation:
        """Return ``obs`` with this injector's perturbation applied.

        The input observation is never mutated; untouched observations
        are returned as-is (same object, no tag).
        """
        tags: List[str] = []
        new_counts: Optional[Dict[str, np.ndarray]] = None
        for name in sorted(obs.counts):
            if not self._targets(name):
                continue
            perturbed = self._perturb_counts(obs.counts[name])
            if perturbed is not None:
                if new_counts is None:
                    new_counts = dict(obs.counts)
                new_counts[name] = perturbed
                tags.append(f"{self.kind}:{name}")
        new_conflicts: Optional[ConflictRecords] = None
        if obs.conflicts is not None and self._targets(conflict_channel):
            new_conflicts = self._perturb_conflicts(obs.conflicts)
            if new_conflicts is not None:
                tags.append(f"{self.kind}:{conflict_channel}")
        if not tags:
            return obs
        self.quanta_touched += 1
        return dataclasses.replace(
            obs,
            counts=new_counts if new_counts is not None else obs.counts,
            conflicts=(
                new_conflicts if new_conflicts is not None else obs.conflicts
            ),
            faults=obs.faults + tuple(tags),
        )

    # ------------------------------------------------------ subclass hooks

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        """New per-Δt counts, or None if unchanged this quantum."""
        return None

    def _perturb_conflicts(
        self, recs: ConflictRecords
    ) -> Optional[ConflictRecords]:
        """New conflict records, or None if unchanged this quantum."""
        return None


class DropInjector(FaultInjector):
    """Lose each indicator event independently with probability ``p``.

    Burst counts are binomially thinned per Δt window; conflict records
    are dropped record-by-record — the software analogue of the paper's
    noise-injection experiments, but applied as *loss* between the
    hardware taps and the analyzers.
    """

    kind = "drop"

    def __init__(self, p: float, **kwargs):
        super().__init__(**kwargs)
        self.p = float(p)

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        if self.p <= 0.0 or counts.size == 0:
            return None
        kept = self.rng.binomial(counts.astype(np.int64), 1.0 - self.p)
        lost = int(counts.sum() - kept.sum())
        if lost == 0:
            return None
        self.events_dropped += lost
        return kept

    def _perturb_conflicts(
        self, recs: ConflictRecords
    ) -> Optional[ConflictRecords]:
        n = recs.times.size
        if self.p <= 0.0 or n == 0:
            return None
        keep = self.rng.random(n) >= self.p
        lost = int(n - keep.sum())
        if lost == 0:
            return None
        self.events_dropped += lost
        return ConflictRecords(
            times=recs.times[keep],
            replacers=recs.replacers[keep],
            victims=recs.victims[keep],
        )


class DuplicateInjector(FaultInjector):
    """Deliver each event twice with probability ``p`` (double counting)."""

    kind = "dup"

    def __init__(self, p: float, **kwargs):
        super().__init__(**kwargs)
        self.p = float(p)

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        if self.p <= 0.0 or counts.size == 0:
            return None
        extra = self.rng.binomial(counts.astype(np.int64), self.p)
        added = int(extra.sum())
        if added == 0:
            return None
        self.events_added += added
        return counts + extra

    def _perturb_conflicts(
        self, recs: ConflictRecords
    ) -> Optional[ConflictRecords]:
        n = recs.times.size
        if self.p <= 0.0 or n == 0:
            return None
        repeats = 1 + (self.rng.random(n) < self.p).astype(np.int64)
        added = int(repeats.sum() - n)
        if added == 0:
            return None
        self.events_added += added
        # np.repeat keeps duplicates adjacent, so times stay sorted.
        return ConflictRecords(
            times=np.repeat(recs.times, repeats),
            replacers=np.repeat(recs.replacers, repeats),
            victims=np.repeat(recs.victims, repeats),
        )


class ReorderInjector(FaultInjector):
    """Shuffle delivery order within blocks of ``window`` entries.

    Conflict records keep their (sorted) timestamps but swap payloads
    within each block — modeling out-of-order readout of the auditor's
    vector registers; burst channels permute whole Δt windows within
    each block.
    """

    kind = "reorder"

    def __init__(self, window: int, **kwargs):
        super().__init__(**kwargs)
        self.window = int(window)

    def _block_permutation(self, n: int) -> Optional[np.ndarray]:
        if n < 2 or self.window < 2:
            return None
        perm = np.arange(n)
        changed = False
        for lo in range(0, n, self.window):
            hi = min(lo + self.window, n)
            if hi - lo < 2:
                continue
            block = self.rng.permutation(hi - lo)
            if np.any(block != np.arange(hi - lo)):
                changed = True
            perm[lo:hi] = lo + block
        return perm if changed else None

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        perm = self._block_permutation(counts.size)
        if perm is None:
            return None
        self.values_corrupted += int(np.sum(perm != np.arange(perm.size)))
        return counts[perm]

    def _perturb_conflicts(
        self, recs: ConflictRecords
    ) -> Optional[ConflictRecords]:
        perm = self._block_permutation(recs.times.size)
        if perm is None:
            return None
        self.values_corrupted += int(np.sum(perm != np.arange(perm.size)))
        return ConflictRecords(
            times=recs.times,
            replacers=recs.replacers[perm],
            victims=recs.victims[perm],
        )


class StallInjector(FaultInjector):
    """Blackouts: runs of consecutive windows/records lost wholesale.

    With probability ``p`` per Δt window a stall begins, erasing a run
    of 1..``max_len`` windows (their counts zeroed); on the conflict
    channel, with probability ``p`` per quantum a contiguous run of up
    to ``max_len`` records is dropped. Models a wedged collector that
    resumes — burst loss rather than uniform thinning.
    """

    kind = "stall"

    def __init__(self, p: float, max_len: int = 16, **kwargs):
        super().__init__(**kwargs)
        self.p = float(p)
        self.max_len = int(max_len)

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        n = counts.size
        if self.p <= 0.0 or n == 0:
            return None
        starts = np.flatnonzero(self.rng.random(n) < self.p)
        if starts.size == 0:
            return None
        lengths = self.rng.integers(1, self.max_len + 1, size=starts.size)
        stalled = counts.copy()
        lost = 0
        for start, length in zip(starts, lengths):
            stop = min(n, int(start) + int(length))
            lost += int(stalled[start:stop].sum())
            stalled[start:stop] = 0
        if lost == 0:
            return None
        self.events_dropped += lost
        return stalled

    def _perturb_conflicts(
        self, recs: ConflictRecords
    ) -> Optional[ConflictRecords]:
        n = recs.times.size
        if self.p <= 0.0 or n == 0 or self.rng.random() >= self.p:
            return None
        start = int(self.rng.integers(0, n))
        length = int(self.rng.integers(1, self.max_len + 1))
        keep = np.ones(n, dtype=bool)
        keep[start:start + length] = False
        lost = int(n - keep.sum())
        if lost == 0:
            return None
        self.events_dropped += lost
        return ConflictRecords(
            times=recs.times[keep],
            replacers=recs.replacers[keep],
            victims=recs.victims[keep],
        )


class BitFlipInjector(FaultInjector):
    """Flip one random bit in each counter read with probability ``p``.

    Models single-event upsets / bus glitches on the auditor's counter
    readout path: a corrupted Δt-window count can jump anywhere within
    the ``bit_width``-bit range. Only burst channels carry counters.
    """

    kind = "bitflip"

    def __init__(self, p: float, bit_width: int = 16, **kwargs):
        super().__init__(**kwargs)
        self.p = float(p)
        self.bit_width = int(bit_width)

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        n = counts.size
        if self.p <= 0.0 or n == 0:
            return None
        hit = self.rng.random(n) < self.p
        n_hit = int(hit.sum())
        if n_hit == 0:
            return None
        bits = self.rng.integers(0, self.bit_width, size=n_hit)
        flipped = counts.astype(np.int64).copy()
        flipped[hit] ^= np.int64(1) << bits
        self.values_corrupted += n_hit
        return flipped


class SaturateInjector(FaultInjector):
    """Force Δt windows to the 16-bit entry maximum with probability ``p``.

    Drives the saturating histogram accumulators (MonitorSlot /
    StreamingDensityHistogram) into their clamp path — the adversarial
    "pin the accumulator" scenario — without touching genuine counts in
    the unaffected windows.
    """

    kind = "saturate"

    #: The auditor's 16-bit histogram entry ceiling.
    SATURATED = 0xFFFF

    def __init__(self, p: float, **kwargs):
        super().__init__(**kwargs)
        self.p = float(p)

    def _perturb_counts(self, counts: np.ndarray) -> Optional[np.ndarray]:
        n = counts.size
        if self.p <= 0.0 or n == 0:
            return None
        hit = self.rng.random(n) < self.p
        n_hit = int(hit.sum())
        if n_hit == 0:
            return None
        pinned = counts.astype(np.int64).copy()
        pinned[hit] = self.SATURATED
        self.values_corrupted += n_hit
        return pinned


def apply_injectors(
    injectors,
    obs: QuantumObservation,
    conflict_channel: str = "cache",
) -> QuantumObservation:
    """Run ``obs`` through ``injectors`` left to right."""
    for injector in injectors:
        obs = injector.apply(obs, conflict_channel=conflict_channel)
    return obs
