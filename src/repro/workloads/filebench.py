"""Filebench-like server workload profiles.

- **webserver**: 100 threads doing open-read-close over a directory tree
  plus a log append. The thread pool re-walks a smallish working set, so
  its conflict-miss train shows *brief* periodicity (the paper observes it
  between lags ~120 and ~180) that dies out — the oscillation detector
  must reject it.
- **mailserver**: 16 threads doing create-append-sync / read-append-sync /
  delete in one directory. The sync-heavy pattern produces small clusters
  of bus locks — the paper's only benign second distribution (histogram
  bins #5-#8), whose likelihood ratio stays below 0.5.
"""

from __future__ import annotations

from repro.workloads.base import ActivityProfile, CacheLoopPattern

webserver = ActivityProfile(
    name="webserver",
    bus_lock_rate_per_s=60.0,
    cache_accesses_per_quantum=1_500,
    cache_tag_space=48,
    # ~150-set shared working set re-walked per episode, a few episodes
    # per quantum: short-range repeating conflict pattern.
    cache_loop_pattern=CacheLoopPattern(
        ws_sets=75, lines_per_set=5, repeats=2, episodes_per_quantum=3
    ),
)

mailserver = ActivityProfile(
    name="mailserver",
    bus_lock_rate_per_s=140.0,
    # fsync clusters: ~5 bursts per quantum of 5-8 locks each, spaced so a
    # burst lands inside one or two Δt windows (Δt = 100k cycles).
    bus_lock_bursts=(5, 5, 8, 12_000),
    cache_accesses_per_quantum=1_100,
    cache_tag_space=64,
)
