"""Benchmark-like workload generators.

Statistical emulations of the programs the paper uses for interference and
false-alarm testing: CPU-intensive SPEC2006 codes (gobmk, sjeng, bzip2,
h264ref), the STREAM memory benchmark, and Filebench's webserver and
mailserver personalities. Each generator stresses the same indicator
events as its namesake (bus locks, divider contention, cache conflicts)
*without* the recurrent modulated conflict patterns of a covert channel.
"""

from repro.workloads.base import ActivityProfile, workload_process
from repro.workloads.filebench import mailserver, webserver
from repro.workloads.noise import background_noise_processes
from repro.workloads.spec import WORKLOADS, bzip2, gobmk, h264ref, sjeng
from repro.workloads.stream import stream

__all__ = [
    "ActivityProfile",
    "workload_process",
    "gobmk",
    "sjeng",
    "bzip2",
    "h264ref",
    "stream",
    "webserver",
    "mailserver",
    "WORKLOADS",
    "background_noise_processes",
]
