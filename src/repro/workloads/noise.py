"""Background interference for covert-channel experiments.

The paper's threat model runs "a few other (at least three) active
processes alongside the trojan/spy" to model real-system interference.
This module builds that default noise population: a mix of mild bus,
divider and cache activity spread over the machine's remaining contexts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.machine import Machine
from repro.sim.process import Process
from repro.workloads.base import ActivityProfile, CacheLoopPattern, workload_process

#: The default interference mix: enough conflicts to perturb trains, not
#: enough to drown the channel (per the threat model, heavy noise breaks
#: the covert channel itself before it hides it).
_DEFAULT_PROFILES = (
    ActivityProfile(
        name="noise-mem",
        bus_lock_rate_per_s=6.0,
        cache_accesses_per_quantum=200,
        cache_tag_space=40,
        # Hot shared region (shared libraries / OS structures): co-running
        # noise processes evict and promptly re-fetch each other's lines
        # there, spreading benign cross-context conflict misses through
        # every quantum.
        cache_loop_pattern=CacheLoopPattern(
            ws_sets=32, lines_per_set=5, repeats=1,
            episodes_per_quantum=10, base_set=300, base_jitter=2,
        ),
    ),
    ActivityProfile(
        name="noise-div",
        divider_duty=0.05,
        divider_burst_cycles=25_000,
        cache_accesses_per_quantum=100,
        cache_loop_pattern=CacheLoopPattern(
            ws_sets=24, lines_per_set=5, repeats=1,
            episodes_per_quantum=8, base_set=310, base_jitter=2,
        ),
    ),
    ActivityProfile(
        name="noise-mixed",
        bus_lock_rate_per_s=3.0,
        divider_duty=0.02,
        cache_accesses_per_quantum=150,
        cache_tag_space=56,
        cache_loop_pattern=CacheLoopPattern(
            ws_sets=28, lines_per_set=5, repeats=1,
            episodes_per_quantum=8, base_set=290, base_jitter=2,
        ),
    ),
)


def background_noise_processes(
    machine: Machine,
    n_quanta: int,
    seed: int = 0,
    count: int = 3,
    avoid_contexts: Sequence[int] = (),
    profiles: Optional[Sequence[ActivityProfile]] = None,
) -> List[Process]:
    """Spawn ``count`` interference processes on free contexts.

    Contexts in ``avoid_contexts`` (e.g. the trojan/spy pair) are skipped;
    profiles cycle through the default mix. Returns the spawned processes.
    """
    if count < 0:
        raise ConfigError("noise process count cannot be negative")
    chosen_profiles = tuple(profiles) if profiles else _DEFAULT_PROFILES
    avoid = set(avoid_contexts)
    free = [
        ctx
        for ctx in range(machine.config.n_contexts)
        if ctx not in avoid and machine.scheduler.occupant(ctx) is None
    ]
    if count > len(free):
        raise ConfigError(
            f"need {count} free contexts for noise, only {len(free)} available"
        )
    spawned = []
    for i in range(count):
        profile = chosen_profiles[i % len(chosen_profiles)]
        proc = workload_process(
            profile, machine, n_quanta, seed=seed, instance=i
        )
        machine.spawn(proc, ctx=free[i])
        spawned.append(proc)
    return spawned
