"""SPEC2006-like workload profiles.

Rates are calibrated to the paper's pairing rationale: gobmk and sjeng
have "numerous repeated accesses to the memory bus" (here: elevated — but
random — benign bus-lock activity plus memory traffic), while bzip2 and
h264ref have "a significant number of integer divisions" (here: high
divider duty in irregular bursts). None of them modulates conflicts
recurrently, so CC-Hunter must stay quiet on any pairing.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import ActivityProfile

gobmk = ActivityProfile(
    name="gobmk",
    bus_lock_rate_per_s=220.0,
    cache_accesses_per_quantum=1_200,
    cache_tag_space=96,
)

sjeng = ActivityProfile(
    name="sjeng",
    bus_lock_rate_per_s=180.0,
    cache_accesses_per_quantum=900,
    cache_tag_space=80,
)

bzip2 = ActivityProfile(
    name="bzip2",
    divider_duty=0.22,
    divider_burst_cycles=30_000,
    divider_intensity=0.10,
    cache_accesses_per_quantum=700,
    bus_lock_rate_per_s=15.0,
)

h264ref = ActivityProfile(
    name="h264ref",
    divider_duty=0.30,
    divider_burst_cycles=20_000,
    divider_intensity=0.12,
    cache_accesses_per_quantum=900,
    bus_lock_rate_per_s=20.0,
)

#: A quieter, mostly-compute code for filler pairings.
namd = ActivityProfile(
    name="namd",
    divider_duty=0.04,
    cache_accesses_per_quantum=300,
    bus_lock_rate_per_s=5.0,
)

#: Registry of all SPEC-like profiles by name.
WORKLOADS: Dict[str, ActivityProfile] = {
    p.name: p for p in (gobmk, sjeng, bzip2, h264ref, namd)
}
