"""Workload framework: activity profiles driving a noise process.

A workload is described by an :class:`ActivityProfile` — per-quantum rates
of the behaviours that touch the audited resources — and realized as a
:class:`~repro.sim.process.Process` that splits each OS quantum into
chunks, registers that chunk's background activity (memory traffic,
divider bursts, occasional atomic operations — the ``Random*`` operations
are non-blocking registrations), optionally performs an active cache walk,
and advances to the next chunk. This phase-alternating structure is how
real programs behave and is what produces *random* rather than recurrent
conflict patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.engine import Priority
from repro.sim.machine import Machine
from repro.sim.process import (
    BusLockBurst,
    CacheAccessSeries,
    Process,
    RandomBusLocks,
    RandomCacheTraffic,
    RandomDividerUse,
    WaitUntil,
)
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class CacheLoopPattern:
    """A short-range repeating cache walk (webserver-style thread pools).

    Each episode re-walks a window of ``ws_sets`` consecutive cache sets,
    touching ``lines_per_set`` per-process lines in each, ``repeats``
    times. ``base_set`` anchors the window (a shared directory tree:
    co-running instances overlap), jittered a little per episode. Two
    instances walking the same region put ``2 x lines_per_set`` live lines
    into 8-way sets, so episodes evict each other's lines and produce a
    *brief* periodic conflict pattern — the behaviour the paper observed
    for the Filebench webserver (periodicity between lags ~120 and ~180
    that dies out), which the oscillation detector must reject.
    """

    ws_sets: int = 150
    lines_per_set: int = 5
    repeats: int = 2
    episodes_per_quantum: int = 3
    base_set: int = 200
    base_jitter: int = 8

    def __post_init__(self) -> None:
        if self.ws_sets <= 0 or self.lines_per_set <= 0 or self.repeats <= 0:
            raise ConfigError("cache loop pattern sizes must be positive")
        if self.episodes_per_quantum <= 0:
            raise ConfigError("need at least one episode per quantum")


@dataclass(frozen=True)
class ActivityProfile:
    """Per-quantum behavioural rates of a benign program."""

    name: str
    #: Poisson rate of isolated benign bus-lock events (events/second).
    bus_lock_rate_per_s: float = 0.0
    #: Optional clustered locking: (bursts per quantum, locks per burst lo,
    #: locks per burst hi, spacing cycles). Models fsync-style activity that
    #: produces small lock clusters (the mailserver's weak second mode).
    bus_lock_bursts: Optional[Tuple[int, int, int, int]] = None
    #: Fraction of the quantum spent in division-heavy bursts.
    divider_duty: float = 0.0
    divider_burst_cycles: int = 25_000
    #: Division issue-slot occupancy within a burst (benign code divides
    #: far below the saturation rate of a covert trojan).
    divider_intensity: float = 0.10
    #: L2 accesses per quantum and the set range / tag space they draw from.
    cache_accesses_per_quantum: int = 0
    cache_set_span: Optional[Tuple[int, int]] = None
    cache_tag_space: int = 64
    #: Optional short-range repeating cache walk (see CacheLoopPattern).
    cache_loop_pattern: Optional[CacheLoopPattern] = None
    #: How many chunks each quantum is split into.
    chunks_per_quantum: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.divider_duty <= 1.0:
            raise ConfigError("divider duty must be in [0, 1]")
        if not 0.0 < self.divider_intensity <= 1.0:
            raise ConfigError("divider intensity must be in (0, 1]")
        if self.chunks_per_quantum <= 0:
            raise ConfigError("need at least one chunk per quantum")
        if self.bus_lock_rate_per_s < 0 or self.cache_accesses_per_quantum < 0:
            raise ConfigError("activity rates cannot be negative")


def _loop_pattern_accesses(
    pattern: CacheLoopPattern,
    machine: Machine,
    ctx_salt: int,
    instance: int,
    rng: np.random.Generator,
) -> Tuple[Tuple[int, int], ...]:
    """One episode of the repeating cache walk (working set re-walked).

    Instances alternate between ``lines_per_set`` and one line fewer
    (different file sizes per server instance), so two co-running
    instances over-commit each 8-way set by about one line — one mutual
    eviction per set per walk, the paper's webserver signature.
    """
    n_sets = machine.config.l2.n_sets
    jitter = int(rng.integers(-pattern.base_jitter, pattern.base_jitter + 1))
    base = (pattern.base_set + jitter) % n_sets
    lines = max(1, pattern.lines_per_set - (instance % 2))
    accesses = []
    for _ in range(pattern.repeats):
        for offset in range(pattern.ws_sets):
            s = (base + offset) % n_sets
            for line in range(lines):
                tag = 3_000_000 + ctx_salt * 10_000 + offset * 8 + line
                accesses.append((s, tag))
    return tuple(accesses)


def workload_process(
    profile: ActivityProfile,
    machine: Machine,
    n_quanta: int,
    seed: int = 0,
    instance: int = 0,
) -> Process:
    """Build a Process that exhibits ``profile`` for ``n_quanta`` quanta."""
    if n_quanta <= 0:
        raise ConfigError("workload must run at least one quantum")
    rng = derive_rng(seed, "workload", profile.name, instance)
    quantum = machine.quantum_cycles
    chunk = quantum // profile.chunks_per_quantum

    def body(proc: Process):
        for q in range(n_quanta):
            q_start = q * quantum
            burst_chunks = set()
            if profile.bus_lock_bursts:
                n_bursts = profile.bus_lock_bursts[0]
                burst_chunks = set(
                    int(c)
                    for c in rng.integers(
                        0, profile.chunks_per_quantum, size=n_bursts
                    )
                )
            for c in range(profile.chunks_per_quantum):
                yield WaitUntil(q_start + c * chunk)
                # Background registrations — non-blocking, cover this chunk.
                if profile.bus_lock_rate_per_s > 0:
                    yield RandomBusLocks(
                        duration=chunk,
                        rate_per_second=profile.bus_lock_rate_per_s,
                    )
                if profile.divider_duty > 0:
                    yield RandomDividerUse(
                        duration=chunk,
                        duty=profile.divider_duty,
                        burst_cycles=profile.divider_burst_cycles,
                        intensity=profile.divider_intensity,
                    )
                if profile.cache_accesses_per_quantum > 0:
                    span = profile.cache_set_span or (
                        0, machine.config.l2.n_sets
                    )
                    yield RandomCacheTraffic(
                        duration=chunk,
                        count=max(
                            1,
                            profile.cache_accesses_per_quantum
                            // profile.chunks_per_quantum,
                        ),
                        set_lo=span[0],
                        set_hi=span[1],
                        tag_space=profile.cache_tag_space,
                    )
                # Active behaviours — these advance time within the chunk.
                if c in burst_chunks:
                    _n, lo, hi, spacing = profile.bus_lock_bursts
                    count = int(rng.integers(lo, hi + 1))
                    yield BusLockBurst(count=count, period=spacing)
                if profile.cache_loop_pattern:
                    pattern = profile.cache_loop_pattern
                    episodes = pattern.episodes_per_quantum
                    if rng.random() < episodes / profile.chunks_per_quantum:
                        yield CacheAccessSeries(
                            accesses=_loop_pattern_accesses(
                                pattern, machine, proc.ctx or 0, instance, rng
                            )
                        )

    return Process(
        f"{profile.name}#{instance}", body=body, priority=Priority.PRODUCER
    )
