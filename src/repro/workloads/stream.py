"""STREAM-like workload profile.

STREAM sweeps large arrays with unit stride: heavy memory-bus traffic
(but essentially no bus *locks*), a steady flood of cache fills whose
reuse distances exceed cache capacity (capacity misses, few conflict
misses), and no divider pressure. It is the paper's memory-intensive
false-alarm candidate.
"""

from __future__ import annotations

from repro.workloads.base import ActivityProfile

stream = ActivityProfile(
    name="stream",
    bus_lock_rate_per_s=4.0,
    cache_accesses_per_quantum=4_000,
    # Huge tag space: streaming data is essentially never re-referenced
    # soon enough to register as a conflict miss.
    cache_tag_space=1_000_000,
)
