"""Multi-tenant detection-as-a-service (docs/SERVING.md).

``repro.serve`` hosts many tenants' detection sessions behind one
asyncio endpoint: clients stream :class:`~repro.pipeline.source.
QuantumObservation` frames over a versioned length-prefixed JSON wire
protocol (:mod:`repro.serve.wire`), the service folds them into sharded
per-tenant :class:`~repro.pipeline.session.DetectionSession` pools, and
verdicts flow back periodically plus a final report at close.

The service is built to *degrade, not die*: per-tenant bounded queues
with credit-based backpressure, admission control with load-shedding
under overload (shed quanta surface as ``shed:*`` fault tags, i.e. the
tenant goes DEGRADED — never silently OK), per-tenant memory caps with
LRU session eviction, idle-tenant expiry, and a supervised shutdown
that drains queues and emits every tenant's final verdicts.
"""

from repro.errors import (
    FrameDecodeError,
    ServeError,
    ServeUnavailableError,
    WireError,
)
from repro.serve.client import ServeClient, TenantResult, stream_tenant
from repro.serve.service import (
    DetectionService,
    ServeConfig,
    TenantStats,
    run_service,
)
from repro.serve.traffic import (
    benign_observations,
    covert_observations,
    make_observations,
)
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    WIRE_FORMAT,
    Bye,
    Credit,
    ErrorFrame,
    Goodbye,
    Hello,
    ObsFrame,
    VerdictFrame,
    Welcome,
    decode_payload,
    encode_frame,
    read_frame,
    send_frame,
)

__all__ = [
    "Bye",
    "Credit",
    "DetectionService",
    "ErrorFrame",
    "FrameDecodeError",
    "Goodbye",
    "Hello",
    "MAX_FRAME_BYTES",
    "ObsFrame",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeUnavailableError",
    "TenantResult",
    "TenantStats",
    "VerdictFrame",
    "WIRE_FORMAT",
    "Welcome",
    "WireError",
    "benign_observations",
    "covert_observations",
    "decode_payload",
    "encode_frame",
    "make_observations",
    "read_frame",
    "run_service",
    "send_frame",
    "stream_tenant",
]
