"""The multi-tenant detection service (docs/SERVING.md).

One asyncio endpoint multiplexes many tenants into sharded
:class:`~repro.pipeline.session.DetectionSession` pools. The design
rule is *degrade, never die*: every overload and client-misbehavior
path has a bounded, observable response, and nothing a client does can
raise out of the event loop.

Data path
---------

Each connection's reader coroutine validates frames and appends
observations to the tenant's **bounded pending deque**; a per-shard
worker coroutine drains pending deques in bounded batches and folds
observations into the tenant's session (CPU work is chunked with
``await asyncio.sleep(0)`` so verdict evaluation never starves other
tenants). Server→client traffic (credits, verdicts, errors, goodbye)
goes through a **coalescing outbox** — credits sum, only the latest
verdict frame is kept — so a client that stops reading can never grow
server memory.

Backpressure & shedding ladder
------------------------------

1. **Credits**: the client may have at most ``initial_credits``
   unacknowledged observations in flight; the server re-grants credits
   as it consumes (folds *or* sheds) them. An honest client therefore
   can't overrun its queue by more than the credit window.
2. **Sampling shed**: past ``overload_queue_fraction`` of queue
   capacity the server keeps only one in ``shed_sample_every``
   arrivals.
3. **Hard shed**: at capacity every arrival is dropped.

Every shed quantum (and every transport-lost quantum, inferred from
sequence gaps) is stamped as a ``shed:*`` / ``lost:*`` fault tag on the
next observation that *is* folded, so the analyzers' health machine
turns overload into a DEGRADED verdict — an overloaded tenant is never
silently OK.

Memory & lifecycle
------------------

Admission control caps tenants; resident sessions are capped with LRU
eviction of disconnected tenants (their final report is sealed at
eviction); idle disconnected tenants expire. :meth:`DetectionService.stop`
drains every pending queue (bounded by ``drain_timeout``), closes every
session exactly once, and pushes each connected tenant its ``goodbye``
with final verdicts before the socket closes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import zlib
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import FrameDecodeError, ServeError, WireError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.slo import SloTracker
from repro.obs.telemetry import (
    TelemetryServer,
    json_response,
    text_response,
)
from repro.obs.tracing import get_profiler, get_recorder, trace_span
from repro.pipeline.health import Health, worst
from repro.pipeline.session import DetectionSession, build_session_from_specs
from repro.pipeline.source import ChannelSpec, QuantumObservation
from repro.serve.wire import (
    Bye,
    Credit,
    ErrorFrame,
    Goodbye,
    Hello,
    ObsFrame,
    VerdictFrame,
    Welcome,
    read_frame,
    send_frame,
)

_log = get_logger("serve.service")


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Service knobs; defaults favor small-footprint determinism."""

    host: str = "127.0.0.1"
    #: 0 = bind an ephemeral port (read it back from ``service.port``).
    port: int = 0
    #: Shard workers folding observations; tenants hash across them.
    shards: int = 2
    #: Per-tenant pending-observation cap (hard-shed point).
    queue_capacity: int = 64
    #: Credit window a tenant starts with (max obs in flight).
    initial_credits: int = 32
    #: Re-grant credits after this many consumed observations.
    credit_batch: int = 8
    #: Send a verdict frame every N folded observations.
    verdict_every: int = 8
    #: Admission cap on simultaneously known tenants.
    max_tenants: int = 64
    #: Resident DetectionSession cap (LRU-evicts disconnected tenants).
    max_resident_sessions: int = 48
    #: Disconnected tenants are expired after this long idle.
    idle_expiry: float = 30.0
    #: Queue fill fraction beyond which sampling shed kicks in.
    overload_queue_fraction: float = 0.75
    #: Under sampling shed, keep 1 of every N arrivals.
    shed_sample_every: int = 2
    #: Max observations a shard folds per tenant turn (fairness).
    fold_batch: int = 16
    #: Seconds a client may take to send its hello frame.
    hello_timeout: float = 5.0
    #: Seconds stop() waits for pending queues to drain.
    drain_timeout: float = 5.0
    #: With a port set (0 = ephemeral), serve the live telemetry plane
    #: (``/metrics``, ``/healthz``, ``/readyz``, ``/tenants``,
    #: ``/profile``) on it; ``None`` disables the admin endpoint.
    admin_port: Optional[int] = None
    #: Append-only JSONL file receiving fired SLO alerts.
    alerts_out: Optional[str] = None

    def __post_init__(self):
        if self.shards < 1:
            raise ServeError("shards must be >= 1")
        if self.queue_capacity < 2:
            raise ServeError("queue_capacity must be >= 2")
        if not 0 < self.initial_credits <= self.queue_capacity:
            raise ServeError(
                "initial_credits must be in [1, queue_capacity] "
                f"(got {self.initial_credits} vs {self.queue_capacity})"
            )
        if self.credit_batch < 1 or self.verdict_every < 1:
            raise ServeError("credit_batch/verdict_every must be >= 1")
        if self.max_tenants < 1 or self.max_resident_sessions < 1:
            raise ServeError(
                "max_tenants/max_resident_sessions must be >= 1"
            )
        if not 0.0 < self.overload_queue_fraction <= 1.0:
            raise ServeError("overload_queue_fraction must be in (0, 1]")
        if self.shed_sample_every < 1 or self.fold_batch < 1:
            raise ServeError("shed_sample_every/fold_batch must be >= 1")


@dataclasses.dataclass(frozen=True)
class TenantStats:
    """One tenant's delivery accounting, as of now."""

    tenant: str
    connected: bool
    resident: bool
    received: int
    shed: int
    lost: int
    health: str
    any_detected: bool
    #: Verdict frames silently superseded in the coalescing outbox.
    coalesced: int = 0


class _Outbox:
    """Coalescing server→client mailbox: bounded regardless of client.

    Credits accumulate as one integer; only the newest verdict frame is
    retained; errors keep the last few. The writer coroutine drains
    whatever is pending whenever the event fires.
    """

    __slots__ = ("event", "credits", "verdict", "errors", "goodbye")

    def __init__(self):
        self.event = asyncio.Event()
        self.credits = 0
        self.verdict: Optional[VerdictFrame] = None
        self.errors: Deque[ErrorFrame] = deque(maxlen=8)
        self.goodbye: Optional[Goodbye] = None

    def put_credits(self, n: int) -> None:
        self.credits += n
        self.event.set()

    def put_verdict(self, frame: VerdictFrame) -> bool:
        """Queue a verdict; True when it superseded an unsent one."""
        coalesced = self.verdict is not None
        self.verdict = frame
        self.event.set()
        return coalesced

    def put_error(self, frame: ErrorFrame) -> None:
        self.errors.append(frame)
        self.event.set()

    def put_goodbye(self, frame: Goodbye) -> None:
        if self.goodbye is None:
            self.goodbye = frame
        self.event.set()


class _Tenant:
    """Everything the service knows about one tenant."""

    __slots__ = (
        "name", "specs", "session", "final_report", "pending",
        "pending_tags", "outbox", "connected", "bye_requested",
        "queued", "shard", "next_seq", "client_credits", "uncredited",
        "received", "shed", "lost", "overload_tick", "last_active",
        "evictions", "arrivals", "trace_id", "coalesced", "last_verdict",
    )

    def __init__(self, name: str, specs: Tuple[ChannelSpec, ...], shard: int):
        self.name = name
        self.specs = specs
        self.shard = shard
        self.session: Optional[DetectionSession] = None
        self.final_report = None
        #: Bounded ingest queue (reader appends, shard worker pops).
        self.pending: Deque[QuantumObservation] = deque()
        #: shed:*/lost:* tags to stamp on the next folded observation.
        self.pending_tags: List[str] = []
        self.outbox: Optional[_Outbox] = None
        self.connected = False
        self.bye_requested = False
        #: True while the tenant sits in its shard's ready queue.
        self.queued = False
        self.next_seq = 0
        self.client_credits = 0
        #: Consumed observations not yet returned as credits.
        self.uncredited = 0
        self.received = 0
        self.shed = 0
        self.lost = 0
        self.overload_tick = 0
        self.last_active = 0.0
        self.evictions = 0
        #: ``perf_counter`` ingest stamps, in lockstep with ``pending``
        #: (same appends/pops), feeding queue-wait spans and SLO latency.
        self.arrivals: Deque[float] = deque()
        #: Client-provided trace id (hello frame); server spans for
        #: this tenant carry it so merge_remote_trace can join flows.
        self.trace_id: Optional[str] = None
        #: Verdict frames superseded before the writer sent them.
        self.coalesced = 0
        #: Small summary of the newest queued verdict (telemetry only).
        self.last_verdict: Optional[Dict[str, object]] = None


class DetectionService:
    """Asyncio server hosting many tenants' detection sessions."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        slo: Optional[SloTracker] = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else get_default()
        self.clock = clock
        #: Per-tenant SLO windows + burn-rate alerting, fed from the
        #: data path (verdict latency, shed fate, verdict health).
        self.slo = slo if slo is not None else SloTracker(
            metrics=self.metrics, alerts_path=self.config.alerts_out
        )
        self._tenants: Dict[str, _Tenant] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._admin: Optional[TelemetryServer] = None
        self._ready: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._reaper: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._draining = False
        self._stopped = False
        m = self.metrics
        self._m_connections = m.counter(
            "cchunter_serve_connections_total",
            "client connections accepted",
        )
        self._m_obs = m.counter(
            "cchunter_serve_obs_total",
            "observation frames accepted into tenant queues",
        )
        self._m_folded = m.counter(
            "cchunter_serve_folded_total",
            "observations folded into tenant sessions",
        )
        self._m_shed = m.counter(
            "cchunter_serve_shed_total",
            "observations shed by admission/overload control",
        )
        self._m_lost = m.counter(
            "cchunter_serve_lost_total",
            "observations lost in transit (sequence gaps)",
        )
        self._m_decode_errors = m.counter(
            "cchunter_serve_decode_errors_total",
            "recoverable frame decode failures answered with error frames",
        )
        self._m_rejected = m.counter(
            "cchunter_serve_rejected_total",
            "connections refused by admission control",
        )
        self._m_evictions = m.counter(
            "cchunter_serve_evictions_total",
            "resident sessions LRU-evicted or idle-expired",
        )
        self._m_tenants = m.gauge(
            "cchunter_serve_tenants",
            "tenants currently known to the service",
        )
        self._m_resident = m.gauge(
            "cchunter_serve_resident_sessions",
            "detection sessions currently resident in memory",
        )
        self._m_fold = m.histogram(
            "cchunter_serve_fold_seconds",
            "wall time of one shard fold batch (one tenant turn)",
        )

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServeError("service is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def admin_port(self) -> int:
        if self._admin is None:
            raise ServeError("admin endpoint is not enabled")
        return self._admin.port

    async def start(self) -> Tuple[str, int]:
        """Bind and start shard workers; returns ``(host, port)``."""
        if self._server is not None:
            raise ServeError("service already started")
        self._ready = [asyncio.Queue() for _ in range(self.config.shards)]
        self._workers = [
            asyncio.create_task(
                self._supervised(self._shard_worker(i), f"shard-{i}")
            )
            for i in range(self.config.shards)
        ]
        self._reaper = asyncio.create_task(
            self._supervised(self._reap_idle(), "reaper")
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.admin_port is not None:
            self._admin = TelemetryServer(
                self.config.host, self.config.admin_port
            )
            self._bind_admin_routes(self._admin)
            await self._admin.start()
            _log.info(
                "telemetry plane on %s:%d", self.host, self._admin.port
            )
        _log.info(
            "serving on %s:%d (%d shards)",
            self.host, self.port, self.config.shards,
        )
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> Dict[str, TenantStats]:
        """Graceful shutdown; returns final per-tenant stats.

        Stops accepting, drains pending queues (bounded by
        ``drain_timeout``), seals every session's final report, pushes
        ``goodbye`` to still-connected tenants, then tears down workers
        and connections. Idempotent.
        """
        if self._stopped:
            return self.stats()
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self.clock() + self.config.drain_timeout
        while (
            any(t.pending for t in self._tenants.values())
            and self.clock() < deadline
        ):
            await asyncio.sleep(0.005)
        leftover = sum(len(t.pending) for t in self._tenants.values())
        if leftover:
            _log.warning(
                "drain timeout: shedding %d undrained observation(s)",
                leftover,
            )
        for tenant in list(self._tenants.values()):
            if tenant.pending:
                self._shed_remaining(tenant)
            self._finalize(tenant)
        # Let writer coroutines flush goodbyes before we cancel tasks.
        for _ in range(40):
            if all(
                t.outbox is None or t.outbox.goodbye is None
                for t in self._tenants.values()
                if t.connected
            ):
                break
            await asyncio.sleep(0.01)
        self._stopped = True
        stats = self.stats()
        for task in [*self._workers, self._reaper]:
            if task is not None:
                task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(
            *self._workers,
            *(t for t in [self._reaper] if t is not None),
            *self._conn_tasks,
            return_exceptions=True,
        )
        self._workers = []
        self._reaper = None
        # The telemetry plane answers scrapes for the whole drain; it
        # goes down last so "/readyz 503, /healthz 200" is observable.
        if self._admin is not None:
            await self._admin.stop()
        return stats

    # ------------------------------------------------------------ accounting

    def stats(self) -> Dict[str, TenantStats]:
        return {name: self.tenant_stats(name) for name in self._tenants}

    def tenant_stats(self, name: str) -> TenantStats:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise ServeError(f"unknown tenant {name!r}")
        report = tenant.final_report
        if report is None and tenant.session is not None:
            report = tenant.session.current_verdicts()
        return TenantStats(
            tenant=name,
            connected=tenant.connected,
            resident=tenant.session is not None
            and not tenant.session.closed,
            received=tenant.received,
            shed=tenant.shed,
            lost=tenant.lost,
            health=report.health if report is not None else "ok",
            any_detected=(
                report.any_detected if report is not None else False
            ),
            coalesced=tenant.coalesced,
        )

    def tenant_telemetry(self, name: str) -> Dict[str, object]:
        """JSON-ready live view of one tenant (``/tenants/<id>``)."""
        stats = self.tenant_stats(name)
        tenant = self._tenants[name]
        return {
            "tenant": name,
            "connected": stats.connected,
            "resident": stats.resident,
            "shard": tenant.shard,
            "received": stats.received,
            "shed": stats.shed,
            "lost": stats.lost,
            "coalesced": stats.coalesced,
            "health": stats.health,
            "any_detected": stats.any_detected,
            "credit": {
                "client_credits": tenant.client_credits,
                "uncredited": tenant.uncredited,
                "pending": len(tenant.pending),
            },
            "last_verdict": tenant.last_verdict,
            "slo": self.slo.tenant_snapshot(name),
        }

    def _gauge_sync(self) -> None:
        self._m_tenants.set(len(self._tenants))
        self._m_resident.set(
            sum(
                1
                for t in self._tenants.values()
                if t.session is not None and not t.session.closed
            )
        )

    # ------------------------------------------------------- telemetry plane

    def _bind_admin_routes(self, admin: TelemetryServer) -> None:
        admin.route("/metrics", self._admin_metrics)
        admin.route("/healthz", self._admin_healthz)
        admin.route("/readyz", self._admin_readyz)
        admin.route("/tenants", self._admin_tenants)
        admin.route_prefix("/tenants/", self._admin_tenant)
        admin.route("/profile", self._admin_profile)

    def _worst_health(self) -> str:
        return worst(
            [Health.OK]
            + [Health(self.tenant_stats(n).health) for n in self._tenants]
        ).value

    def _admin_metrics(self):
        if not self.metrics.enabled:
            return text_response("# metrics registry disabled\n")
        return text_response(self.metrics.render_prometheus())

    def _admin_healthz(self):
        """Liveness + the session health ladder; 503 once stopped."""
        health = self._worst_health()
        doc = {
            "status": "stopped" if self._stopped else "alive",
            "health": health,
            "tenants": len(self._tenants),
        }
        return json_response(doc, status=503 if self._stopped else 200)

    def _admin_readyz(self):
        """Readiness: 503 while draining/stopped, so LBs stop routing."""
        ready = (
            self._server is not None
            and not self._draining
            and not self._stopped
        )
        return json_response(
            {"ready": ready, "draining": self._draining},
            status=200 if ready else 503,
        )

    def _admin_tenants(self):
        return json_response(
            {
                "format": "repro.serve.tenants/v1",
                "draining": self._draining,
                "tenants": [
                    self.tenant_telemetry(name)
                    for name in sorted(self._tenants)
                ],
            }
        )

    def _admin_tenant(self, name: str):
        if name not in self._tenants:
            return json_response(
                {"error": f"unknown tenant {name!r}"}, status=404
            )
        return json_response(self.tenant_telemetry(name))

    def _admin_profile(self):
        profiler = get_profiler()
        if profiler is None:
            return json_response(
                {"error": "profiling is not enabled"}, status=404
            )
        return json_response(profiler.to_dict())

    # ------------------------------------------------------------ admission

    def _admit(self, hello: Hello) -> _Tenant:
        """Find or create the tenant; raises ServeError to refuse."""
        if self._draining:
            raise ServeError("service is draining; try another endpoint")
        tenant = self._tenants.get(hello.tenant)
        if tenant is not None:
            if tenant.connected:
                raise ServeError(
                    f"tenant {hello.tenant!r} already has a live connection"
                )
            if tenant.specs != hello.channels:
                raise ServeError(
                    f"tenant {hello.tenant!r} reconnected with different "
                    "channels; finish the old stream first"
                )
            return tenant
        if len(self._tenants) >= self.config.max_tenants:
            raise ServeError(
                f"tenant limit reached ({self.config.max_tenants}); "
                "shed this client"
            )
        shard = zlib.crc32(hello.tenant.encode("utf-8")) % self.config.shards
        tenant = _Tenant(hello.tenant, hello.channels, shard)
        tenant.last_active = self.clock()
        self._tenants[hello.tenant] = tenant
        self._gauge_sync()
        return tenant

    def _ensure_resident(self, tenant: _Tenant) -> DetectionSession:
        """The tenant's live session, rebuilding after eviction."""
        if tenant.session is None or tenant.session.closed:
            self._evict_for_headroom()
            tenant.session = build_session_from_specs(
                tenant.specs, metrics=self.metrics
            )
            tenant.final_report = None
            if tenant.evictions:
                # A rebuilt session lost its history; make that visible.
                tenant.pending_tags.append("evicted:*")
            self._gauge_sync()
        return tenant.session

    def _evict_for_headroom(self) -> None:
        """LRU-evict disconnected sessions to stay under the cap."""
        while (
            sum(
                1
                for t in self._tenants.values()
                if t.session is not None and not t.session.closed
            )
            >= self.config.max_resident_sessions
        ):
            victims = [
                t
                for t in self._tenants.values()
                if t.session is not None
                and not t.session.closed
                and not t.connected
                and not t.pending
            ]
            if not victims:
                raise ServeError(
                    "session capacity exhausted and every resident "
                    "session is active; shed this client"
                )
            victim = min(victims, key=lambda t: t.last_active)
            _log.info(
                "LRU-evicting idle session of tenant %r",
                victim.name,
                extra={"tenant": victim.name, "shard": victim.shard},
            )
            victim.final_report = victim.session.close()
            victim.evictions += 1
            self._m_evictions.inc()
            self._gauge_sync()

    # ------------------------------------------------------------ data path

    def _enqueue(self, tenant: _Tenant, frame: ObsFrame) -> None:
        """Reader-side ingest: seq gaps, credits, shedding. Never blocks."""
        cfg = self.config
        tenant.last_active = self.clock()
        if frame.seq > tenant.next_seq:
            gap = frame.seq - tenant.next_seq
            tenant.lost += gap
            self._m_lost.inc(gap)
            tenant.pending_tags.extend(["lost:*"] * min(gap, 64))
            for _ in range(min(gap, 64)):
                self.slo.observe_shed(tenant.name, True)
            # Lost frames spent client credits that will never be
            # consumed by a fold; return them so the client can't starve.
            self._earn_credits(tenant, gap)
        tenant.next_seq = max(tenant.next_seq, frame.seq + 1)
        depth = len(tenant.pending)
        shed = False
        if depth >= cfg.queue_capacity:
            shed = True
        elif depth >= cfg.overload_queue_fraction * cfg.queue_capacity:
            tenant.overload_tick += 1
            shed = tenant.overload_tick % cfg.shed_sample_every != 0
        if shed:
            tenant.shed += 1
            self._m_shed.inc()
            tenant.pending_tags.append("shed:*")
            self.slo.observe_shed(tenant.name, True)
            self._earn_credits(tenant, 1)
            return
        tenant.pending.append(frame.observation)
        tenant.arrivals.append(time.perf_counter())
        self._m_obs.inc()
        self._kick(tenant)

    def _kick(self, tenant: _Tenant) -> None:
        if not tenant.queued:
            tenant.queued = True
            self._ready[tenant.shard].put_nowait(tenant.name)

    def _earn_credits(self, tenant: _Tenant, n: int) -> None:
        tenant.uncredited += n
        if (
            tenant.uncredited >= self.config.credit_batch
            and tenant.outbox is not None
        ):
            tenant.client_credits += tenant.uncredited
            tenant.outbox.put_credits(tenant.uncredited)
            tenant.uncredited = 0

    def _shed_remaining(self, tenant: _Tenant) -> None:
        n = len(tenant.pending)
        tenant.pending.clear()
        tenant.arrivals.clear()
        tenant.shed += n
        self._m_shed.inc(n)
        tenant.pending_tags.extend(["shed:*"] * min(n, 64))
        for _ in range(min(n, 64)):
            self.slo.observe_shed(tenant.name, True)

    def _fold_one(
        self,
        tenant: _Tenant,
        obs: QuantumObservation,
        arrival: Optional[float] = None,
    ) -> None:
        if self._draining and tenant.final_report is not None:
            # Shutdown already sealed this tenant's report; late
            # arrivals are shed, never folded into a rebuilt session.
            tenant.shed += 1
            self._m_shed.inc()
            self.slo.observe_shed(tenant.name, True)
            return
        session = self._ensure_resident(tenant)
        if tenant.pending_tags:
            obs = dataclasses.replace(
                obs, faults=obs.faults + tuple(tenant.pending_tags)
            )
            tenant.pending_tags.clear()
        with trace_span(
            "serve.fold",
            tenant=tenant.name,
            shard=tenant.shard,
            quantum=obs.quantum,
            trace_id=tenant.trace_id,
        ):
            session.push_quantum(obs)
        tenant.received += 1
        self._m_folded.inc()
        self.slo.observe_shed(tenant.name, False)
        self._earn_credits(tenant, 1)
        if (
            tenant.received % self.config.verdict_every == 0
            and tenant.outbox is not None
        ):
            with trace_span(
                "serve.analyze",
                tenant=tenant.name,
                shard=tenant.shard,
                quantum=obs.quantum,
                trace_id=tenant.trace_id,
            ):
                report = session.current_verdicts()
            if tenant.outbox.put_verdict(
                VerdictFrame(
                    quantum=obs.quantum,
                    verdicts=report.verdicts,
                    health=report.health,
                )
            ):
                tenant.coalesced += 1
                if self.metrics.enabled:
                    self.metrics.counter(
                        "cchunter_serve_verdicts_coalesced_total",
                        "verdict frames superseded in the outbox before "
                        "the client read them",
                        labels={"tenant": tenant.name},
                    ).inc()
            latency = (
                time.perf_counter() - arrival if arrival is not None else None
            )
            tenant.last_verdict = {
                "quantum": obs.quantum,
                "health": report.health,
                "any_detected": report.any_detected,
                "latency_s": latency,
            }
            if latency is not None:
                self.slo.observe_latency(tenant.name, latency)
            self.slo.observe_health(tenant.name, report.health)
            self.slo.evaluate(tenant.name)

    def _finalize(self, tenant: _Tenant) -> None:
        """Seal the tenant's final report and queue its goodbye."""
        if tenant.session is not None and not tenant.session.closed:
            tenant.final_report = tenant.session.close()
        if tenant.final_report is None and tenant.session is not None:
            tenant.final_report = tenant.session.close()
        if tenant.final_report is not None and tenant.outbox is not None:
            tenant.outbox.put_goodbye(
                Goodbye(
                    report=tenant.final_report,
                    received=tenant.received,
                    shed=tenant.shed,
                )
            )
        self._gauge_sync()

    async def _shard_worker(self, shard: int) -> None:
        queue = self._ready[shard]
        while True:
            name = await queue.get()
            tenant = self._tenants.get(name)
            if tenant is None:
                continue
            tenant.queued = False
            timed = self.metrics.enabled
            t0 = time.perf_counter() if timed else 0.0
            budget = self.config.fold_batch
            recorder = get_recorder()
            try:
                while tenant.pending and budget > 0:
                    obs = tenant.pending.popleft()
                    arrival = (
                        tenant.arrivals.popleft()
                        if tenant.arrivals
                        else None
                    )
                    if (
                        recorder is not None
                        and tenant.trace_id is not None
                        and arrival is not None
                    ):
                        # Retroactive span: ingest → this pop is the
                        # time the observation sat in the pending queue.
                        recorder.record(
                            "serve.queue_wait",
                            arrival,
                            time.perf_counter() - arrival,
                            {
                                "tenant": tenant.name,
                                "shard": shard,
                                "quantum": obs.quantum,
                                "trace_id": tenant.trace_id,
                            },
                        )
                    self._fold_one(tenant, obs, arrival=arrival)
                    budget -= 1
            except ServeError as exc:
                # Capacity exhaustion mid-fold: shed what's left.
                _log.error(
                    "fold failed for %r: %s",
                    name,
                    exc,
                    extra={"tenant": name, "shard": shard},
                )
                self._shed_remaining(tenant)
            if timed:
                self._m_fold.observe(time.perf_counter() - t0)
            if tenant.pending:
                self._kick(tenant)
            elif tenant.bye_requested:
                self._finalize(tenant)
            # Yield so one hot tenant can't monopolize the loop.
            await asyncio.sleep(0)

    async def _reap_idle(self) -> None:
        interval = max(0.05, self.config.idle_expiry / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = self.clock()
            for name, tenant in list(self._tenants.items()):
                if tenant.connected or tenant.pending:
                    continue
                if now - tenant.last_active < self.config.idle_expiry:
                    continue
                _log.info(
                    "expiring idle tenant %r",
                    name,
                    extra={"tenant": name, "shard": tenant.shard},
                )
                if tenant.session is not None and not tenant.session.closed:
                    tenant.final_report = tenant.session.close()
                    self._m_evictions.inc()
                del self._tenants[name]
            self._gauge_sync()

    # ----------------------------------------------------------- connection

    async def _supervised(self, coro, label: str) -> None:
        """Run a service coroutine; log-and-restart instead of dying."""
        while True:
            try:
                await coro
                return
            except asyncio.CancelledError:
                raise
            except Exception:
                _log.exception("%s crashed; restarting", label)
                if label.startswith("shard-"):
                    coro = self._shard_worker(int(label.split("-")[1]))
                elif label == "reaper":
                    coro = self._reap_idle()
                else:
                    return
                await asyncio.sleep(0.05)

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._m_connections.inc()
        tenant: Optional[_Tenant] = None
        writer_task: Optional[asyncio.Task] = None
        try:
            tenant, writer_task = await self._open_session(reader, writer)
            if tenant is None:
                return
            graceful = await self._reader_loop(reader, tenant)
            if graceful:
                # Bye path: the goodbye may still be waiting on a shard
                # worker draining the queue; give it the full drain
                # budget before tearing the writer down.
                try:
                    await asyncio.wait_for(
                        asyncio.shield(writer_task),
                        timeout=self.config.drain_timeout,
                    )
                except asyncio.TimeoutError:
                    _log.warning(
                        "goodbye flush for %r timed out",
                        tenant.name,
                        extra={
                            "tenant": tenant.name,
                            "shard": tenant.shard,
                        },
                    )
        except asyncio.CancelledError:
            pass
        except Exception:
            # Containment backstop: a connection bug degrades one
            # client, never the loop.
            _log.exception("connection handler crashed")
        finally:
            if tenant is not None:
                tenant.connected = False
                tenant.last_active = self.clock()
            if writer_task is not None and not writer_task.done():
                # Give the writer a beat to flush queued error frames.
                try:
                    await asyncio.wait_for(
                        asyncio.shield(writer_task), timeout=0.25
                    )
                except asyncio.CancelledError:
                    writer_task.cancel()
                except (asyncio.TimeoutError, Exception):
                    writer_task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            if tenant is not None:
                tenant.outbox = None
            self._conn_tasks.discard(task)

    async def _open_session(self, reader, writer):
        """Handshake: hello → admission → welcome. None on refusal."""
        try:
            frame = await asyncio.wait_for(
                read_frame(reader), timeout=self.config.hello_timeout
            )
        except asyncio.TimeoutError:
            await self._refuse(writer, "timeout", "no hello frame")
            return None, None
        except WireError as exc:
            await self._refuse(writer, "protocol", str(exc))
            return None, None
        if not isinstance(frame, Hello):
            await self._refuse(
                writer, "protocol",
                f"expected hello, got {getattr(frame, 'type', 'EOF')!r}",
            )
            return None, None
        try:
            tenant = self._admit(frame)
            self._ensure_resident(tenant)
        except ServeError as exc:
            self._m_rejected.inc()
            await self._refuse(writer, "admission", str(exc))
            return None, None
        tenant.connected = True
        tenant.bye_requested = False
        tenant.last_active = self.clock()
        if frame.trace is not None:
            tenant.trace_id = frame.trace.trace_id
        tenant.outbox = _Outbox()
        tenant.client_credits = self.config.initial_credits
        tenant.uncredited = 0
        await send_frame(
            writer,
            Welcome(
                credits=self.config.initial_credits,
                verdict_every=self.config.verdict_every,
            ),
        )
        writer_task = asyncio.create_task(
            self._writer_loop(writer, tenant.outbox)
        )
        return tenant, writer_task

    async def _refuse(self, writer, code: str, message: str) -> None:
        try:
            await send_frame(
                writer, ErrorFrame(code=code, message=message, fatal=True)
            )
        except Exception:
            pass

    async def _reader_loop(self, reader, tenant: _Tenant) -> bool:
        """Consume client frames; True when the client said ``bye``."""
        while True:
            try:
                frame = await read_frame(reader)
            except FrameDecodeError as exc:
                # Stream still aligned: answer and keep going. The bad
                # frame may have been an obs the client paid a credit
                # for, so refund one.
                self._m_decode_errors.inc()
                tenant.outbox.put_error(
                    ErrorFrame(code="decode", message=str(exc), fatal=False)
                )
                self._earn_credits(tenant, 1)
                continue
            except WireError as exc:
                tenant.outbox.put_error(
                    ErrorFrame(code="stream", message=str(exc), fatal=True)
                )
                return False
            if frame is None:
                # Client vanished without bye; session stays resident
                # until idle expiry or reconnect.
                return False
            if isinstance(frame, ObsFrame):
                if tenant.client_credits <= 0:
                    tenant.outbox.put_error(
                        ErrorFrame(
                            code="credit",
                            message="observation sent with no credit",
                            fatal=True,
                        )
                    )
                    return False
                tenant.client_credits -= 1
                self._enqueue(tenant, frame)
            elif isinstance(frame, Bye):
                tenant.bye_requested = True
                if tenant.pending:
                    self._kick(tenant)
                else:
                    self._finalize(tenant)
                return True
            else:
                tenant.outbox.put_error(
                    ErrorFrame(
                        code="protocol",
                        message=f"unexpected {frame.type!r} frame "
                        "from client",
                        fatal=True,
                    )
                )
                return False

    async def _writer_loop(self, writer, outbox: _Outbox) -> None:
        """Drain the coalescing outbox until the goodbye is flushed."""
        try:
            while True:
                await outbox.event.wait()
                outbox.event.clear()
                if outbox.credits:
                    n, outbox.credits = outbox.credits, 0
                    await send_frame(writer, Credit(credits=n))
                while outbox.errors:
                    await send_frame(writer, outbox.errors.popleft())
                if outbox.verdict is not None:
                    frame, outbox.verdict = outbox.verdict, None
                    await send_frame(writer, frame)
                if outbox.goodbye is not None:
                    await send_frame(writer, outbox.goodbye)
                    outbox.goodbye = None
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:
            _log.exception("writer loop crashed")


async def run_service(
    config: Optional[ServeConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    ready: Optional[asyncio.Event] = None,
) -> Dict[str, TenantStats]:
    """Start a service and serve until cancelled; returns final stats."""
    service = DetectionService(config=config, metrics=metrics)
    await service.start()
    if ready is not None:
        ready.set()
    try:
        await service.serve_forever()
    finally:
        stats = await service.stop()
    return stats
