"""Serve client: stream observations, honor credits, collect verdicts.

:class:`ServeClient` is the protocol-complete asyncio client the CLI
(``repro stream``), the examples, and the load benchmark all use. It
enforces the credit window on its own side (``send`` suspends when the
client is out of credits), runs a background reader that dispatches
credits / verdicts / errors / goodbye, and optionally routes every
observation frame through a :class:`~repro.faults.wire.FlakyFrameLink`
to emulate a lossy client — dropped frames still consume a sequence
number, which is exactly how the server learns to tag ``lost:*``.

:func:`stream_tenant` is the one-call convenience: connect, stream an
iterable of observations, say bye, return the :class:`TenantResult`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Tuple

from repro.core.report import DetectionReport
from repro.errors import ServeError, ServeUnavailableError
from repro.faults.wire import GARBAGE_BODY, FlakyFrameLink
from repro.obs.tracing import (
    SpanRecorder,
    TraceContext,
    get_recorder,
    new_span_id,
)
from repro.pipeline.source import ChannelSpec, QuantumObservation
from repro.serve.wire import (
    Bye,
    Credit,
    ErrorFrame,
    Goodbye,
    Hello,
    ObsFrame,
    VerdictFrame,
    Welcome,
    _HEADER,
    encode_frame,
    read_frame,
    send_frame,
)


@dataclass
class TenantResult:
    """Everything one streamed tenant got back from the service."""

    tenant: str
    goodbye: Goodbye
    verdicts: List[VerdictFrame] = field(default_factory=list)
    errors: List[ErrorFrame] = field(default_factory=list)
    #: Observation frames the client attempted (sent + dropped + garbled).
    attempted: int = 0

    @property
    def report(self) -> DetectionReport:
        return self.goodbye.report


class ServeClient:
    """One tenant's connection to a :class:`DetectionService`."""

    def __init__(
        self,
        host: str,
        port: int,
        link: Optional[FlakyFrameLink] = None,
        on_verdict=None,
        trace_id: Optional[str] = None,
        recorder: Optional[SpanRecorder] = None,
    ):
        self.host = host
        self.port = port
        self.link = link
        #: Optional callback fired (from the reader task) on every
        #: verdict frame — the load bench uses it to timestamp arrivals.
        self.on_verdict = on_verdict
        #: With a trace id set, hello/obs frames carry a
        #: :class:`TraceContext` and the client records ``client.emit``
        #: / ``client.wire`` spans (into ``recorder`` or the global
        #: one), joinable with the server's via ``merge_remote_trace``.
        self.trace_id = trace_id
        self._recorder = recorder
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._credits: Optional[asyncio.Semaphore] = None
        self._goodbye: Optional[asyncio.Future] = None
        self._fatal: Optional[ErrorFrame] = None
        self.welcome: Optional[Welcome] = None
        self.verdicts: List[VerdictFrame] = []
        self.errors: List[ErrorFrame] = []
        self._seq = 0

    # ------------------------------------------------------------ lifecycle

    async def connect(self, tenant: str, channels: Iterable[ChannelSpec]):
        """Dial, handshake, and start the background reader."""
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServeUnavailableError(
                f"cannot reach detection service at "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        self.tenant = tenant
        trace = None
        if self.trace_id is not None:
            trace = TraceContext(
                trace_id=self.trace_id, parent_span=new_span_id()
            )
        await send_frame(
            self._writer,
            Hello(tenant=tenant, channels=tuple(channels), trace=trace),
        )
        frame = await read_frame(self._reader)
        if isinstance(frame, ErrorFrame):
            await self.aclose()
            raise ServeUnavailableError(
                f"service refused tenant {tenant!r}: "
                f"[{frame.code}] {frame.message}"
            )
        if not isinstance(frame, Welcome):
            await self.aclose()
            raise ServeError(
                f"expected welcome, got {getattr(frame, 'type', 'EOF')!r}"
            )
        self.welcome = frame
        self._credits = asyncio.Semaphore(frame.credits)
        self._goodbye = asyncio.get_running_loop().create_future()
        self._reader_task = asyncio.create_task(self._read_loop())
        return frame

    async def aclose(self) -> None:
        if (
            self._goodbye is not None
            and self._goodbye.done()
            and not self._goodbye.cancelled()
        ):
            # Mark any pending failure as retrieved; callers that care
            # already re-raised it via _raise_if_fatal/finish.
            self._goodbye.exception()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None

    # ------------------------------------------------------------ streaming

    def _trace_recorder(self) -> Optional[SpanRecorder]:
        """The span sink for client-side spans; None disables them."""
        if self.trace_id is None:
            return None
        return self._recorder if self._recorder is not None else get_recorder()

    async def send(self, obs: QuantumObservation) -> None:
        """Stream one observation, honoring the credit window.

        With a flaky link attached the frame may be dropped or replaced
        with garbage — either way it consumes a sequence number and a
        credit, exactly like a lossy network would.

        With tracing active (``trace_id`` + a recorder) two spans are
        recorded per observation: ``client.emit`` covers the whole call
        including the credit wait, ``client.wire`` just the transport
        write — their difference is client-side backpressure.
        """
        if self._writer is None or self._credits is None:
            raise ServeError("client is not connected")
        self._raise_if_fatal()
        rec = self._trace_recorder()
        t_emit = perf_counter() if rec is not None else 0.0
        await self._credits.acquire()
        self._raise_if_fatal()
        trace = None
        if self.trace_id is not None:
            trace = TraceContext(
                trace_id=self.trace_id, parent_span=new_span_id()
            )
        frame = ObsFrame(seq=self._seq, observation=obs, trace=trace)
        self._seq += 1
        t_wire = perf_counter() if rec is not None else 0.0
        await self._write_obs(frame)
        if rec is not None:
            t_done = perf_counter()
            attrs = {
                "tenant": self.tenant,
                "seq": frame.seq,
                "quantum": obs.quantum,
                "trace_id": self.trace_id,
            }
            rec.record("client.wire", t_wire, t_done - t_wire, attrs)
            rec.record("client.emit", t_emit, t_done - t_emit, attrs)

    async def _write_obs(self, frame: ObsFrame) -> None:
        if self.link is None:
            await send_frame(self._writer, frame)
            return
        action = self.link.action()
        if action.stall:
            await asyncio.sleep(action.stall)
        if action.drop:
            return
        if action.garbage:
            self._writer.write(
                _HEADER.pack(len(GARBAGE_BODY)) + GARBAGE_BODY
            )
            await self._writer.drain()
            return
        await send_frame(self._writer, frame)

    async def finish(self, timeout: float = 30.0) -> Goodbye:
        """Say bye, await the final report, and close."""
        if self._writer is None or self._goodbye is None:
            raise ServeError("client is not connected")
        await send_frame(self._writer, Bye())
        try:
            goodbye = await asyncio.wait_for(
                asyncio.shield(self._goodbye), timeout=timeout
            )
        except asyncio.TimeoutError:
            raise ServeError(
                f"no goodbye from service within {timeout}s"
            ) from None
        finally:
            await self.aclose()
        return goodbye

    def _raise_if_fatal(self) -> None:
        if self._fatal is not None:
            raise ServeError(
                f"service hung up: [{self._fatal.code}] "
                f"{self._fatal.message}"
            )
        if self._goodbye is not None and self._goodbye.done():
            exc = self._goodbye.exception()
            if exc is not None:
                raise exc

    # --------------------------------------------------------------- reader

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    self._fail(ServeError("service closed the connection"))
                    return
                if isinstance(frame, Credit):
                    for _ in range(frame.credits):
                        self._credits.release()
                elif isinstance(frame, VerdictFrame):
                    self.verdicts.append(frame)
                    if self.on_verdict is not None:
                        self.on_verdict(frame)
                elif isinstance(frame, ErrorFrame):
                    self.errors.append(frame)
                    if frame.fatal:
                        self._fatal = frame
                        self._fail(
                            ServeError(
                                f"[{frame.code}] {frame.message}"
                            )
                        )
                        return
                elif isinstance(frame, Goodbye):
                    if not self._goodbye.done():
                        self._goodbye.set_result(frame)
                    return
                else:
                    self._fail(
                        ServeError(
                            f"unexpected {frame.type!r} frame from server"
                        )
                    )
                    return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(ServeError(f"client reader failed: {exc}"))

    def _fail(self, exc: Exception) -> None:
        if self._goodbye is not None and not self._goodbye.done():
            self._goodbye.set_exception(exc)
        # Unblock any send() stuck waiting on credits.
        if self._credits is not None:
            self._credits.release()


async def stream_tenant(
    host: str,
    port: int,
    tenant: str,
    channels: Iterable[ChannelSpec],
    observations: Iterable[QuantumObservation],
    link: Optional[FlakyFrameLink] = None,
    finish_timeout: float = 30.0,
    trace_id: Optional[str] = None,
    recorder: Optional[SpanRecorder] = None,
) -> TenantResult:
    """Stream a whole observation sequence and return the final result."""
    client = ServeClient(
        host, port, link=link, trace_id=trace_id, recorder=recorder
    )
    await client.connect(tenant, channels)
    attempted = 0
    try:
        for obs in observations:
            await client.send(obs)
            attempted += 1
        goodbye = await client.finish(timeout=finish_timeout)
    finally:
        await client.aclose()
    return TenantResult(
        tenant=tenant,
        goodbye=goodbye,
        verdicts=list(client.verdicts),
        errors=list(client.errors),
        attempted=attempted,
    )
