"""Synthetic tenant traffic for the serve tests, bench, and examples.

Two seeded profiles over a single ``membus`` burst channel, shaped so
the paper's burst-pattern detector gives unambiguous answers fast:

- **covert**: alternating Δt windows of ~40 events and silence — the
  bimodal on/off density signature of a bus-locking covert sender.
  The likelihood ratio saturates at 1.0 and recurrence clusters within
  ~16 quanta (validated empirically against the in-process pipeline).
- **benign**: always-on background traffic, ``2 + Poisson(rate)``
  events per window. The floor matters: the paper's two-distribution
  burst test needs a non-burst mode below 1 event per Δt, so traffic
  that never idles can never satisfy it — benign stays clear for
  every seed, not just the lucky ones.

Each quantum spans ``windows`` Δt slots of width ``dt`` cycles. The
generators are pure functions of their seed, so a serve client, an
in-process session, and a replay all see bit-identical observations.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import ServeError
from repro.pipeline.source import ChannelKind, ChannelSpec, QuantumObservation
from repro.util.rng import derive_rng

#: Δt window width (cycles) the serve traffic uses everywhere.
DT = 1000
#: Δt windows per quantum (quantum spans ``WINDOWS * DT`` cycles).
WINDOWS = 50

#: The channel list a serve-traffic tenant declares in its hello frame.
CHANNELS: Tuple[ChannelSpec, ...] = (
    ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=DT),
)


def covert_observations(
    n_quanta: int, seed: int = 0, windows: int = WINDOWS, dt: int = DT
) -> Iterator[QuantumObservation]:
    """On/off alternating burst traffic: detected within ~16 quanta."""
    rng = derive_rng(seed, "serve", "covert")
    span = windows * dt
    for q in range(n_quanta):
        counts = np.zeros(windows, dtype=np.int64)
        counts[::2] = 40 + rng.integers(0, 3, size=counts[::2].size)
        yield QuantumObservation(
            quantum=q,
            t0=q * span,
            t1=(q + 1) * span,
            counts={"membus": counts},
        )


def benign_observations(
    n_quanta: int,
    seed: int = 0,
    rate: float = 2.0,
    windows: int = WINDOWS,
    dt: int = DT,
) -> Iterator[QuantumObservation]:
    """Always-on Poisson background traffic: stays clear.

    Every window carries at least 2 events, so the burst test's
    "non-burst mean < 1 event per Δt" precondition can never hold —
    clear verdicts are guaranteed by construction, for any seed.
    """
    rng = derive_rng(seed, "serve", "benign")
    span = windows * dt
    for q in range(n_quanta):
        counts = 2 + rng.poisson(rate, size=windows).astype(np.int64)
        yield QuantumObservation(
            quantum=q,
            t0=q * span,
            t1=(q + 1) * span,
            counts={"membus": counts},
        )


def make_observations(
    profile: str, n_quanta: int, seed: int = 0
) -> Iterator[QuantumObservation]:
    """Dispatch on profile name ("covert" or "benign")."""
    if profile == "covert":
        return covert_observations(n_quanta, seed=seed)
    if profile == "benign":
        return benign_observations(n_quanta, seed=seed)
    raise ServeError(
        f"unknown traffic profile {profile!r} (known: covert, benign)"
    )
