"""The ``repro.serve.wire/v1`` protocol: length-prefixed JSON frames.

Every frame on the wire is a 4-byte big-endian length prefix followed by
exactly that many bytes of UTF-8 JSON — one object per frame, with a
mandatory ``"type"`` key. Client-to-server types are ``hello`` (tenant
name + channel specs), ``obs`` (one sequenced quantum observation), and
``bye``; server-to-client types are ``welcome`` (initial credits +
verdict cadence), ``credit`` (backpressure grants), ``verdict``
(periodic per-unit verdicts), ``error``, and ``goodbye`` (final
detection report + delivery accounting).

Decoding is **strict**, riding on :mod:`repro.pipeline.codec`: unknown
fields, missing fields, wrong types, and foreign protocol versions all
raise. The error taxonomy separates *recoverable* payload problems
(:class:`~repro.errors.FrameDecodeError` — the length framing is still
aligned, so the service answers with an ``error`` frame and keeps the
connection) from *fatal* stream problems (any other
:class:`~repro.errors.WireError`: absurd length prefix, truncation
mid-frame — the byte stream can no longer be trusted).

The frame-size cap exists because the length prefix is attacker- (or
bug-) controlled: without it, four garbage bytes could make the server
buffer 4 GiB. Frames above :data:`MAX_FRAME_BYTES` are refused on both
encode and decode.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.report import DetectionReport, UnitVerdict
from repro.errors import FrameDecodeError, WireError
from repro.obs.tracing import TraceContext
from repro.pipeline.codec import (
    CodecError,
    channel_spec_from_dict,
    channel_spec_to_dict,
    observation_from_dict,
    observation_to_dict,
    trace_context_from_dict,
    trace_context_to_dict,
    verdict_from_dict,
    verdict_to_dict,
)
from repro.pipeline.source import ChannelSpec, QuantumObservation

WIRE_FORMAT = "repro.serve.wire/v1"

#: Hard cap on one frame's JSON body. Large enough for an observation
#: with tens of thousands of Δt windows or a goodbye report carrying
#: evidence bundles; small enough that a garbage length prefix cannot
#: balloon server memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


def _need(
    payload: Mapping[str, Any],
    fields: Tuple[str, ...],
    what: str,
    optional: Tuple[str, ...] = (),
):
    for name in fields:
        if name not in payload:
            raise FrameDecodeError(
                f"{what}: missing required field {name!r}"
            )
    unknown = sorted(set(payload) - set(fields) - set(optional))
    if unknown:
        raise FrameDecodeError(
            f"{what}: unknown field(s) {', '.join(map(repr, unknown))}"
        )


def _uint(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise FrameDecodeError(
            f"{what}: expected a non-negative integer, got {value!r}"
        )
    return value


def _text(value: Any, what: str, max_len: int = 4096) -> str:
    if not isinstance(value, str) or not value or len(value) > max_len:
        raise FrameDecodeError(
            f"{what}: expected a non-empty string (≤{max_len} chars), "
            f"got {value!r}"
        )
    return value


# ----------------------------------------------------------------- frames


@dataclass(frozen=True)
class Hello:
    """Client opener: who I am and which channels my sessions audit.

    ``trace`` is an **optional** v1 extension (PR 10): a trace-
    correlation context binding the server's spans for this tenant to
    the client's recorder. v1 peers that predate it reject nothing —
    the field is simply absent when unset, and decoders tolerate it
    via ``_need``'s ``optional`` list.
    """

    tenant: str
    channels: Tuple[ChannelSpec, ...]
    trace: Optional[TraceContext] = None

    type = "hello"

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "type": self.type,
            "proto": WIRE_FORMAT,
            "tenant": self.tenant,
            "channels": [channel_spec_to_dict(c) for c in self.channels],
        }
        if self.trace is not None:
            payload["trace"] = trace_context_to_dict(self.trace)
        return payload


@dataclass(frozen=True)
class ObsFrame:
    """One sequenced quantum observation.

    ``seq`` counts the frames the client *sent* (0-based, gapless on an
    honest transport); the server turns sequence gaps into ``lost:*``
    fault tags so transport drops degrade — not silently skew — the
    tenant's verdicts.
    """

    seq: int
    observation: QuantumObservation
    #: Optional per-frame trace context (same v1-tolerated extension
    #: as on :class:`Hello`); ``parent_span`` points at the client's
    #: emit span for *this* observation.
    trace: Optional[TraceContext] = None

    type = "obs"

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "type": self.type,
            "seq": self.seq,
            "observation": observation_to_dict(self.observation),
        }
        if self.trace is not None:
            payload["trace"] = trace_context_to_dict(self.trace)
        return payload


@dataclass(frozen=True)
class Bye:
    """Client is done; asks for the final report (``goodbye``)."""

    type = "bye"

    def to_payload(self) -> Dict[str, Any]:
        return {"type": self.type}


@dataclass(frozen=True)
class Welcome:
    """Server accepts the tenant: initial credits + verdict cadence."""

    credits: int
    verdict_every: int

    type = "welcome"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "proto": WIRE_FORMAT,
            "credits": self.credits,
            "verdict_every": self.verdict_every,
        }


@dataclass(frozen=True)
class Credit:
    """Backpressure grant: the client may send ``credits`` more obs."""

    credits: int

    type = "credit"

    def to_payload(self) -> Dict[str, Any]:
        return {"type": self.type, "credits": self.credits}


@dataclass(frozen=True)
class VerdictFrame:
    """Periodic verdicts as of ``quantum`` (session-combined health)."""

    quantum: int
    verdicts: Tuple[UnitVerdict, ...]
    health: str

    type = "verdict"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "quantum": self.quantum,
            "verdicts": [verdict_to_dict(v) for v in self.verdicts],
            "health": self.health,
        }


@dataclass(frozen=True)
class ErrorFrame:
    """Something went wrong; ``fatal`` means the server will hang up."""

    code: str
    message: str
    fatal: bool = False

    type = "error"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "code": self.code,
            "message": self.message,
            "fatal": self.fatal,
        }


@dataclass(frozen=True)
class Goodbye:
    """Final report plus delivery accounting for the tenant."""

    report: DetectionReport
    #: Observations folded into the session.
    received: int
    #: Observations the server shed under overload (tagged ``shed:*``
    #: on the next delivered observation, so they degrade health).
    shed: int = 0

    type = "goodbye"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": self.type,
            "received": self.received,
            "shed": self.shed,
            "report": {
                "any_detected": bool(self.report.any_detected),
                "health": self.report.health,
                "verdicts": [
                    verdict_to_dict(v) for v in self.report.verdicts
                ],
            },
        }


Frame = Any  # union of the dataclasses above; kept loose for py3.9


# ---------------------------------------------------------------- parsing


def _parse_trace(payload: Mapping[str, Any], what: str):
    raw = payload.get("trace")
    if raw is None:
        return None
    try:
        return trace_context_from_dict(raw)
    except CodecError as exc:
        raise FrameDecodeError(f"{what}.trace: {exc}") from None


def _parse_hello(payload: Mapping[str, Any]) -> Hello:
    _need(
        payload,
        ("type", "proto", "tenant", "channels"),
        "hello",
        optional=("trace",),
    )
    proto = payload["proto"]
    if proto != WIRE_FORMAT:
        raise FrameDecodeError(
            f"hello: protocol must be {WIRE_FORMAT!r}, got {proto!r}"
        )
    tenant = _text(payload["tenant"], "hello.tenant", max_len=128)
    raw = payload["channels"]
    if not isinstance(raw, list) or not raw:
        raise FrameDecodeError("hello.channels: expected a non-empty list")
    try:
        channels = tuple(channel_spec_from_dict(c) for c in raw)
    except CodecError as exc:
        raise FrameDecodeError(f"hello.channels: {exc}") from None
    names = [c.name for c in channels]
    if len(set(names)) != len(names):
        raise FrameDecodeError("hello.channels: duplicate channel names")
    return Hello(
        tenant=tenant,
        channels=channels,
        trace=_parse_trace(payload, "hello"),
    )


def _parse_obs(payload: Mapping[str, Any]) -> ObsFrame:
    _need(
        payload, ("type", "seq", "observation"), "obs", optional=("trace",)
    )
    seq = _uint(payload["seq"], "obs.seq")
    try:
        observation = observation_from_dict(payload["observation"])
    except CodecError as exc:
        raise FrameDecodeError(f"obs.observation: {exc}") from None
    return ObsFrame(
        seq=seq, observation=observation, trace=_parse_trace(payload, "obs")
    )


def _parse_bye(payload: Mapping[str, Any]) -> Bye:
    _need(payload, ("type",), "bye")
    return Bye()


def _parse_welcome(payload: Mapping[str, Any]) -> Welcome:
    _need(payload, ("type", "proto", "credits", "verdict_every"), "welcome")
    if payload["proto"] != WIRE_FORMAT:
        raise FrameDecodeError(
            f"welcome: protocol must be {WIRE_FORMAT!r}, "
            f"got {payload['proto']!r}"
        )
    credits = _uint(payload["credits"], "welcome.credits")
    every = _uint(payload["verdict_every"], "welcome.verdict_every")
    if credits == 0 or every == 0:
        raise FrameDecodeError("welcome: credits/verdict_every must be > 0")
    return Welcome(credits=credits, verdict_every=every)


def _parse_credit(payload: Mapping[str, Any]) -> Credit:
    _need(payload, ("type", "credits"), "credit")
    credits = _uint(payload["credits"], "credit.credits")
    if credits == 0:
        raise FrameDecodeError("credit.credits: must be > 0")
    return Credit(credits=credits)


def _parse_verdict(payload: Mapping[str, Any]) -> VerdictFrame:
    _need(payload, ("type", "quantum", "verdicts", "health"), "verdict frame")
    quantum = _uint(payload["quantum"], "verdict.quantum")
    raw = payload["verdicts"]
    if not isinstance(raw, list):
        raise FrameDecodeError("verdict.verdicts: expected a list")
    try:
        verdicts = tuple(verdict_from_dict(v) for v in raw)
    except CodecError as exc:
        raise FrameDecodeError(f"verdict.verdicts: {exc}") from None
    health = payload["health"]
    if health not in ("ok", "degraded", "failed"):
        raise FrameDecodeError(f"verdict.health: invalid value {health!r}")
    return VerdictFrame(quantum=quantum, verdicts=verdicts, health=health)


def _parse_error(payload: Mapping[str, Any]) -> ErrorFrame:
    _need(payload, ("type", "code", "message", "fatal"), "error frame")
    code = _text(payload["code"], "error.code", max_len=64)
    message = _text(payload["message"], "error.message")
    fatal = payload["fatal"]
    if not isinstance(fatal, bool):
        raise FrameDecodeError(f"error.fatal: expected a bool, got {fatal!r}")
    return ErrorFrame(code=code, message=message, fatal=fatal)


def _parse_goodbye(payload: Mapping[str, Any]) -> Goodbye:
    _need(payload, ("type", "received", "shed", "report"), "goodbye")
    received = _uint(payload["received"], "goodbye.received")
    shed = _uint(payload["shed"], "goodbye.shed")
    raw = payload["report"]
    if not isinstance(raw, Mapping):
        raise FrameDecodeError("goodbye.report: expected an object")
    _need(raw, ("any_detected", "health", "verdicts"), "goodbye.report")
    raw_verdicts = raw["verdicts"]
    if not isinstance(raw_verdicts, list):
        raise FrameDecodeError("goodbye.report.verdicts: expected a list")
    try:
        verdicts = tuple(verdict_from_dict(v) for v in raw_verdicts)
    except CodecError as exc:
        raise FrameDecodeError(f"goodbye.report.verdicts: {exc}") from None
    report = DetectionReport(verdicts=verdicts)
    if bool(raw["any_detected"]) != report.any_detected:
        raise FrameDecodeError(
            "goodbye.report: any_detected disagrees with the verdicts"
        )
    return Goodbye(report=report, received=received, shed=shed)


_PARSERS = {
    "hello": _parse_hello,
    "obs": _parse_obs,
    "bye": _parse_bye,
    "welcome": _parse_welcome,
    "credit": _parse_credit,
    "verdict": _parse_verdict,
    "error": _parse_error,
    "goodbye": _parse_goodbye,
}


def parse_frame(payload: Any) -> Frame:
    """Validate one decoded JSON payload into a frame dataclass."""
    if not isinstance(payload, Mapping):
        raise FrameDecodeError(
            f"frame: expected a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("type")
    parser = _PARSERS.get(kind)
    if parser is None:
        raise FrameDecodeError(f"frame: unknown type {kind!r}")
    return parser(payload)


# --------------------------------------------------------------- framing


def encode_frame(frame: Frame, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Length-prefixed wire bytes for one frame."""
    body = json.dumps(frame.to_payload(), sort_keys=True).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise WireError(
            f"{frame.type} frame body is {len(body)} bytes "
            f"(cap {max_frame_bytes})"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Frame:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameDecodeError(f"frame body is not valid JSON: {exc}") from None
    return parse_frame(payload)


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Optional[Frame]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameDecodeError` for a malformed *body* (stream
    still aligned — the caller may continue) and plain
    :class:`WireError` for framing damage (bad length, truncation —
    the caller must hang up).
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError(
            f"connection closed mid-header ({len(exc.partial)}/4 bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > max_frame_bytes:
        raise WireError(
            f"frame length {length} outside (0, {max_frame_bytes}]"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_payload(body)


async def send_frame(writer: asyncio.StreamWriter, frame: Frame) -> None:
    """Write one frame and drain (honors transport backpressure)."""
    writer.write(encode_frame(frame))
    await writer.drain()
