"""Dependency-free inline-SVG chart primitives for forensic reports.

Small, deliberate subset of charting: a line chart (trajectories,
correlograms) and a bar chart (density histograms), both emitting
self-contained ``<svg>`` fragments. Styling is entirely class-based —
the document that embeds these fragments defines the color roles as CSS
custom properties (see :mod:`repro.report.render`), so light/dark
theming never touches this module.

Marks follow the repo's chart rules: thin strokes, hairline grid, one
y-axis, direct labels only where they inform (the burst bin, the
highest peak), and a ``<title>`` tooltip on every discrete mark.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

_PAD_L, _PAD_R, _PAD_T, _PAD_B = 52, 14, 10, 30


def _esc(text) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _fmt(value: float) -> str:
    """Compact numeric label: no trailing float noise."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


class _Scale:
    """Affine data→pixel mapping for one plot area."""

    def __init__(self, lo: float, hi: float, p0: float, p1: float):
        if hi <= lo:
            hi = lo + 1.0
        self.lo, self.hi, self.p0, self.p1 = lo, hi, p0, p1

    def __call__(self, v: float) -> float:
        frac = (v - self.lo) / (self.hi - self.lo)
        return self.p0 + frac * (self.p1 - self.p0)


def _frame(
    width: int,
    height: int,
    xs: _Scale,
    ys: _Scale,
    x_label: str,
    y_label: str,
    y_ticks: Sequence[float],
    x_ticks: Sequence[float],
) -> List[str]:
    """Grid, baseline, and tick labels shared by both chart forms."""
    parts = []
    for tick in y_ticks:
        y = ys(tick)
        parts.append(
            f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
            f'x2="{width - _PAD_R}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    base = height - _PAD_B
    parts.append(
        f'<line class="axis" x1="{_PAD_L}" y1="{base}" '
        f'x2="{width - _PAD_R}" y2="{base}"/>'
    )
    for tick in x_ticks:
        x = xs(tick)
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{base + 14}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text class="label" x="{(width + _PAD_L - _PAD_R) / 2:.0f}" '
            f'y="{height - 4}" text-anchor="middle">{_esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text class="label" x="12" y="{_PAD_T + 2}" '
            f'transform="rotate(-90 12 {_PAD_T + 2})" '
            f'text-anchor="end">{_esc(y_label)}</text>'
        )
    return parts


def _open_svg(width: int, height: int, desc: str) -> str:
    return (
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        f'aria-label="{_esc(desc)}">'
    )


def line_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 640,
    height: int = 200,
    x_label: str = "",
    y_label: str = "",
    threshold: Optional[float] = None,
    threshold_label: str = "",
    markers: Iterable[Tuple[float, float]] = (),
    marker_label: str = "",
    y_floor: Optional[float] = None,
    y_ceil: Optional[float] = None,
    desc: str = "line chart",
) -> str:
    """One series as a thin polyline, optional dashed threshold rule.

    ``markers`` draws labeled dots (e.g. correlogram peaks); a single
    point falls back to one visible dot so short runs still render.
    """
    points = [(float(x), float(y)) for x, y in points]
    if not points:
        return '<p class="empty">no data captured</p>'
    xs_ = [p[0] for p in points]
    ys_ = [p[1] for p in points]
    lo = min(ys_) if y_floor is None else y_floor
    hi = max(ys_) if y_ceil is None else y_ceil
    if threshold is not None:
        lo, hi = min(lo, threshold), max(hi, threshold)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    xscale = _Scale(min(xs_), max(xs_), _PAD_L, width - _PAD_R)
    yscale = _Scale(hi, lo, _PAD_T, height - _PAD_B)  # inverted: y grows down
    parts = [_open_svg(width, height, desc)]
    parts += _frame(
        width, height, xscale, yscale, x_label, y_label,
        y_ticks=(lo, (lo + hi) / 2, hi),
        x_ticks=(min(xs_), max(xs_)) if len(points) > 1 else (xs_[0],),
    )
    if threshold is not None:
        ty = yscale(threshold)
        parts.append(
            f'<line class="thr" x1="{_PAD_L}" y1="{ty:.1f}" '
            f'x2="{width - _PAD_R}" y2="{ty:.1f}"/>'
        )
        if threshold_label:
            parts.append(
                f'<text class="tick thr-label" x="{width - _PAD_R}" '
                f'y="{ty - 4:.1f}" text-anchor="end">'
                f"{_esc(threshold_label)}</text>"
            )
    if len(points) > 1:
        coords = " ".join(
            f"{xscale(x):.1f},{yscale(y):.1f}" for x, y in points
        )
        parts.append(f'<polyline class="series" points="{coords}"/>')
    else:
        x, y = points[0]
        parts.append(
            f'<circle class="dot" cx="{xscale(x):.1f}" '
            f'cy="{yscale(y):.1f}" r="4">'
            f"<title>{_fmt(x)}: {_fmt(y)}</title></circle>"
        )
    for mx, my in markers:
        parts.append(
            f'<circle class="dot marker" cx="{xscale(mx):.1f}" '
            f'cy="{yscale(my):.1f}" r="4">'
            f"<title>{_esc(marker_label)} {_fmt(mx)}: {_fmt(my)}</title>"
            f"</circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


def bar_chart(
    values: Sequence[float],
    width: int = 640,
    height: int = 200,
    x_label: str = "",
    y_label: str = "",
    highlight_from: Optional[int] = None,
    highlight_label: str = "",
    log_scale: bool = True,
    desc: str = "bar chart",
) -> str:
    """Per-bin bars; bins from ``highlight_from`` up use the accent role.

    Density histograms are dominated by the idle bin, so the default
    y-scale is log10(1+count) — labeled as such — to keep burst bins
    visible without hiding the imbalance.
    """
    values = [float(v) for v in values]
    if not values:
        return '<p class="empty">no data captured</p>'
    display = (
        [math.log10(1.0 + v) for v in values] if log_scale else values
    )
    top = max(display) or 1.0
    xscale = _Scale(0, len(values), _PAD_L, width - _PAD_R)
    yscale = _Scale(top, 0.0, _PAD_T, height - _PAD_B)
    parts = [_open_svg(width, height, desc)]
    raw_top = max(values)
    parts += _frame(
        width, height, xscale, yscale,
        x_label, y_label + (" (log scale)" if log_scale else ""),
        y_ticks=(0.0, top),
        x_ticks=(0, len(values) - 1),
    )
    # Re-label the top tick with the raw count (the log value is
    # meaningless to a reader).
    base = height - _PAD_B
    slot = (width - _PAD_L - _PAD_R) / len(values)
    bar_w = max(1.0, slot - 2.0)  # 2px surface gap between fills
    peak_i = display.index(max(display))
    for i, (raw, disp) in enumerate(zip(values, display)):
        if raw <= 0:
            continue
        x = xscale(i) + (slot - bar_w) / 2
        y = yscale(disp)
        hot = highlight_from is not None and i >= highlight_from
        cls = "bar hot" if hot else "bar"
        parts.append(
            f'<rect class="{cls}" x="{x:.1f}" y="{y:.1f}" '
            f'width="{bar_w:.1f}" height="{max(1.0, base - y):.1f}" '
            f'rx="1"><title>bin {i}: {_fmt(raw)}</title></rect>'
        )
    # Direct labels: the tallest bar's raw count, and the highlight edge.
    parts.append(
        f'<text class="tick" x="{xscale(peak_i) + slot / 2:.1f}" '
        f'y="{yscale(display[peak_i]) - 4:.1f}" text-anchor="middle">'
        f"{_fmt(values[peak_i])}</text>"
    )
    if highlight_from is not None and 0 <= highlight_from < len(values):
        hx = xscale(highlight_from)
        parts.append(
            f'<line class="thr" x1="{hx:.1f}" y1="{_PAD_T}" '
            f'x2="{hx:.1f}" y2="{base}"/>'
        )
        if highlight_label:
            parts.append(
                f'<text class="tick thr-label" x="{hx + 4:.1f}" '
                f'y="{_PAD_T + 10}">{_esc(highlight_label)}</text>'
            )
    _ = raw_top
    parts.append("</svg>")
    return "".join(parts)
