"""Live watch view: a redrawing per-quantum status block for long runs.

:class:`WatchSink` is a verdict sink (see :mod:`repro.pipeline.sinks`)
that keeps a small status block — one line per audited unit plus a
header — refreshed in place on a TTY using ANSI cursor movement. On a
non-TTY stream (file, pipe, CI log) it degrades to appending a full
block every ``refresh_every`` quanta, so redirected output stays a
readable log instead of a soup of escape codes.

Wired up as ``repro detect --watch``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO

from repro.core.report import DetectionReport, UnitVerdict

_ANSI_PREV_LINE = "\x1b[F"  # cursor up one line, to column 0
_ANSI_CLEAR_LINE = "\x1b[2K"  # erase entire line


class LiveBlock:
    """In-place redraw of a multi-line status block on a TTY.

    The redraw machinery WatchSink has always used, extracted so other
    live views (``repro top``) share it: on a TTY the previous block is
    erased with ANSI cursor movement and redrawn; on a non-TTY stream
    each draw appends a fresh block, keeping redirected output a
    readable log.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, sticky: Optional[bool] = None
    ):
        self.stream = stream if stream is not None else sys.stderr
        if sticky is None:
            isatty = getattr(self.stream, "isatty", None)
            sticky = bool(isatty and isatty())
        self.sticky = sticky
        self._drawn_lines = 0

    def draw(self, lines: List[str]) -> None:
        out = []
        if self.sticky and self._drawn_lines:
            out.append(
                (_ANSI_PREV_LINE + _ANSI_CLEAR_LINE) * self._drawn_lines
            )
        out.append("\n".join(lines))
        out.append("\n")
        self.stream.write("".join(out))
        self.stream.flush()
        self._drawn_lines = len(lines) if self.sticky else 0

    def release(self) -> None:
        """Keep the current block on screen; stop redrawing over it."""
        self._drawn_lines = 0


def _signal(verdict: UnitVerdict) -> str:
    if verdict.method == "burst":
        lr = (
            f"{verdict.max_likelihood_ratio:.3f}"
            if verdict.max_likelihood_ratio is not None
            else "  n/a"
        )
        return f"lr={lr}"
    peak = (
        f"{verdict.max_peak:.3f}" if verdict.max_peak is not None else "  n/a"
    )
    return f"peak={peak} windows={verdict.oscillating_windows or 0}"


class WatchSink:
    """Renders a compact, continuously refreshed detection status block."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_every: int = 1,
        sticky: Optional[bool] = None,
    ):
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        #: Redraw in place (ANSI) vs append blocks. Defaults to whether
        #: the stream is an interactive terminal (see LiveBlock).
        self._block = LiveBlock(stream, sticky=sticky)
        self.refresh_every = refresh_every
        self._quanta_seen = 0

    @property
    def stream(self) -> TextIO:
        return self._block.stream

    @property
    def sticky(self) -> bool:
        return self._block.sticky

    # ------------------------------------------------------------- rendering

    def _render(self, header: str, report: DetectionReport) -> List[str]:
        lines = [header]
        for verdict in report.verdicts:
            flag = "LIKELY" if verdict.detected else "clear "
            health = (
                "" if verdict.health == "ok"
                else f"  [{verdict.health.upper()}]"
            )
            lines.append(
                f"  {verdict.unit:<18} {verdict.method:<11} {flag} "
                f"{_signal(verdict)}{health}"
            )
        if not report.verdicts:
            lines.append("  (no audited units)")
        return lines

    def _draw(self, lines: List[str]) -> None:
        self._block.draw(lines)

    # ------------------------------------------------------------- sink API

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self._quanta_seen += 1
        if self._quanta_seen % self.refresh_every:
            return
        self._draw(
            self._render(f"CC-Hunter watch — quantum {quantum}", report)
        )

    def on_close(self, report: DetectionReport) -> None:
        verdict = (
            "channel activity detected" if report.any_detected
            else "no channel activity"
        )
        self._draw(
            self._render(
                f"CC-Hunter watch — session closed: {verdict}", report
            )
        )
        # The final block stays on screen; stop treating it as redrawable.
        self._block.release()
