"""Live watch view: a redrawing per-quantum status block for long runs.

:class:`WatchSink` is a verdict sink (see :mod:`repro.pipeline.sinks`)
that keeps a small status block — one line per audited unit plus a
header — refreshed in place on a TTY using ANSI cursor movement. On a
non-TTY stream (file, pipe, CI log) it degrades to appending a full
block every ``refresh_every`` quanta, so redirected output stays a
readable log instead of a soup of escape codes.

Wired up as ``repro detect --watch``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO

from repro.core.report import DetectionReport, UnitVerdict

_ANSI_PREV_LINE = "\x1b[F"  # cursor up one line, to column 0
_ANSI_CLEAR_LINE = "\x1b[2K"  # erase entire line


def _signal(verdict: UnitVerdict) -> str:
    if verdict.method == "burst":
        lr = (
            f"{verdict.max_likelihood_ratio:.3f}"
            if verdict.max_likelihood_ratio is not None
            else "  n/a"
        )
        return f"lr={lr}"
    peak = (
        f"{verdict.max_peak:.3f}" if verdict.max_peak is not None else "  n/a"
    )
    return f"peak={peak} windows={verdict.oscillating_windows or 0}"


class WatchSink:
    """Renders a compact, continuously refreshed detection status block."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_every: int = 1,
        sticky: Optional[bool] = None,
    ):
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_every = refresh_every
        #: Redraw in place (ANSI) vs append blocks. Defaults to whether
        #: the stream is an interactive terminal.
        if sticky is None:
            isatty = getattr(self.stream, "isatty", None)
            sticky = bool(isatty and isatty())
        self.sticky = sticky
        self._drawn_lines = 0
        self._quanta_seen = 0

    # ------------------------------------------------------------- rendering

    def _render(self, header: str, report: DetectionReport) -> List[str]:
        lines = [header]
        for verdict in report.verdicts:
            flag = "LIKELY" if verdict.detected else "clear "
            health = (
                "" if verdict.health == "ok"
                else f"  [{verdict.health.upper()}]"
            )
            lines.append(
                f"  {verdict.unit:<18} {verdict.method:<11} {flag} "
                f"{_signal(verdict)}{health}"
            )
        if not report.verdicts:
            lines.append("  (no audited units)")
        return lines

    def _draw(self, lines: List[str]) -> None:
        out = []
        if self.sticky and self._drawn_lines:
            out.append((_ANSI_PREV_LINE + _ANSI_CLEAR_LINE) * self._drawn_lines)
        out.append("\n".join(lines))
        out.append("\n")
        self.stream.write("".join(out))
        self.stream.flush()
        self._drawn_lines = len(lines) if self.sticky else 0

    # ------------------------------------------------------------- sink API

    def on_quantum(self, quantum: int, report: DetectionReport) -> None:
        self._quanta_seen += 1
        if self._quanta_seen % self.refresh_every:
            return
        self._draw(
            self._render(f"CC-Hunter watch — quantum {quantum}", report)
        )

    def on_close(self, report: DetectionReport) -> None:
        verdict = (
            "channel activity detected" if report.any_detected
            else "no channel activity"
        )
        self._draw(
            self._render(
                f"CC-Hunter watch — session closed: {verdict}", report
            )
        )
        # The final block stays on screen; stop treating it as redrawable.
        self._drawn_lines = 0
