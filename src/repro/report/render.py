"""Forensic report renderer: evidence documents → HTML / Markdown.

Takes the self-describing evidence document produced by
:func:`repro.obs.evidence.evidence_document` (optionally plus a metrics
time series from :mod:`repro.obs.timeseries`) and renders a single
self-contained file — no external assets, scripts, or network fetches —
that walks an auditor through every audited unit the way the paper does:

- the burst likelihood-ratio trajectory against its 0.5 decision rule;
- the density histogram frozen at the decisive threshold crossing, with
  the burst bins highlighted (Figure 6);
- the autocorrelogram with its peak lags marked (Figure 8);
- cluster assignments behind the recurrence verdict (Figure 4 context);
- the verdict timeline annotated with fault tags and health transitions.

Colors are CSS custom properties with an automatic dark theme
(``prefers-color-scheme``) and an explicit ``data-theme`` override;
health states always pair color with a text label. Raw numbers are kept
reachable via ``<details>`` data tables so the charts never become the
only copy of the evidence.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeseries import series_keys, series_values
from repro.report.svg import bar_chart, line_chart

#: Health → (CSS status class, visible text label). Text label always
#: accompanies the color so state is never encoded by color alone.
_HEALTH_BADGES = {
    "ok": ("good", "OK"),
    "degraded": ("warn", "DEGRADED"),
    "failed": ("crit", "FAILED"),
}

#: Palette roles (light, dark) — the validated default palette.
_CSS = """\
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #5f5e58;
  --grid: #e1e0d9; --series: #2a78d6; --accent: #eb6834;
  --good: #0ca30c; --warn: #fab219; --crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #b4b2aa;
    --grid: #2c2c2a; --series: #3987e5;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #5f5e58;
  --grid: #e1e0d9; --series: #2a78d6;
}
[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #b4b2aa;
  --grid: #2c2c2a; --series: #3987e5;
}
body {
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif;
  max-width: 760px; margin: 2rem auto; padding: 0 1rem;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; color: var(--ink-2); }
.chart { display: block; margin: 0.5rem 0; }
.chart .grid { stroke: var(--grid); stroke-width: 1; }
.chart .axis { stroke: var(--ink-2); stroke-width: 1; }
.chart .tick, .chart .label { fill: var(--ink-2); font-size: 10px; }
.chart .series { fill: none; stroke: var(--series); stroke-width: 2; }
.chart .dot { fill: var(--series); }
.chart .dot.marker { fill: var(--accent); }
.chart .bar { fill: var(--series); }
.chart .bar.hot { fill: var(--accent); }
.chart .thr { stroke: var(--accent); stroke-width: 1;
  stroke-dasharray: 4 3; }
.chart .thr-label { fill: var(--accent); }
.badge { display: inline-block; padding: 0 0.5em; border-radius: 3px;
  font-size: 0.8rem; font-weight: 600; color: #fff; }
.badge.good { background: var(--good); }
.badge.warn { background: var(--warn); color: #0b0b0b; }
.badge.crit { background: var(--crit); }
.badge.neutral { background: var(--ink-2); }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border-bottom: 1px solid var(--grid); padding: 2px 10px;
  text-align: left; font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
details { margin: 0.5rem 0; }
summary { cursor: pointer; color: var(--ink-2); }
.empty { color: var(--ink-2); font-style: italic; }
footer { margin-top: 3rem; color: var(--ink-2); font-size: 0.8rem; }
"""


def _esc(text) -> str:
    return html.escape(str(text), quote=True)


def _badge(kind: str, text: str) -> str:
    return f'<span class="badge {kind}">{_esc(text)}</span>'


def _health_badge(health: str) -> str:
    kind, label = _HEALTH_BADGES.get(health, ("crit", health.upper()))
    return _badge(kind, f"health: {label}")


def _verdict_badge(detected: Optional[bool]) -> str:
    if detected is None:
        return _badge("neutral", "no verdict")
    return (
        _badge("crit", "CHANNEL LIKELY") if detected
        else _badge("good", "clear")
    )


def _table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    if not body:
        return '<p class="empty">none recorded</p>'
    return f"<table><tr>{head}</tr>{body}</table>"


def _details(summary: str, inner: str) -> str:
    return f"<details><summary>{_esc(summary)}</summary>{inner}</details>"


def _verdict_for(doc: Mapping[str, Any], unit: str) -> Optional[Dict[str, Any]]:
    """The unit's final verdict dict from meta, if the run attached one."""
    report = doc.get("meta", {}).get("report")
    if isinstance(report, Mapping):
        for verdict in report.get("verdicts", ()):
            if verdict.get("unit") == unit:
                return dict(verdict)
    return None


def _detected(
    bundle: Mapping[str, Any], verdict: Optional[Mapping[str, Any]]
) -> Optional[bool]:
    if verdict is not None:
        return bool(verdict.get("detected"))
    timeline = bundle.get("verdict_timeline") or []
    return bool(timeline[-1][1]) if timeline else None


def _latest_histogram(bundle: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    snaps = bundle.get("histogram_snapshots") or []
    if snaps:
        return dict(snaps[-1])
    cluster = bundle.get("cluster_snapshot")
    if cluster and cluster.get("aggregate_hist"):
        return {
            "quantum": cluster["quantum"],
            "reason": "aggregate over all windows",
            "hist": cluster["aggregate_hist"],
            "threshold_bin": None,
            "likelihood_ratio": None,
        }
    return None


def _burst_figures(bundle: Mapping[str, Any], lr_threshold: float) -> str:
    parts = []
    parts.append("<h3>Likelihood-ratio trajectory</h3>")
    parts.append(
        line_chart(
            bundle.get("lr_trajectory") or (),
            x_label="quantum",
            y_label="likelihood ratio",
            threshold=lr_threshold,
            threshold_label=f"detection threshold {lr_threshold:g}",
            y_floor=0.0,
            desc="likelihood ratio per quantum",
        )
    )
    snap = _latest_histogram(bundle)
    if snap is not None:
        reason = snap.get("reason", "")
        lr = snap.get("likelihood_ratio")
        caption = f"quantum {snap.get('quantum')}, {reason}"
        if lr is not None:
            caption += f", LR {lr:.3f}"
        parts.append(f"<h3>Density histogram ({_esc(caption)})</h3>")
        parts.append(
            bar_chart(
                snap.get("hist") or (),
                x_label="events per Δt window (bin)",
                y_label="windows",
                highlight_from=snap.get("threshold_bin"),
                highlight_label="burst bins",
                desc="burst density histogram",
            )
        )
    cluster = bundle.get("cluster_snapshot")
    if cluster:
        labels = cluster.get("labels") or []
        burst = set(cluster.get("burst_clusters") or ())
        strip = "".join(
            "&#9632;" if lab in burst else "&#9633;" for lab in labels
        )
        parts.append("<h3>Recurrence clustering</h3>")
        parts.append(
            "<p>window clusters (&#9632; = burst cluster): "
            f'<span style="letter-spacing:2px">{strip}</span><br>'
            f"recurrent: <strong>{cluster.get('recurrent')}</strong>, "
            f"burst clusters {sorted(burst)}, "
            f"{len(labels)} windows</p>"
        )
    return "".join(parts)


def _oscillation_figures(bundle: Mapping[str, Any]) -> str:
    parts = []
    parts.append("<h3>Correlogram peak trajectory</h3>")
    parts.append(
        line_chart(
            bundle.get("peak_trajectory") or (),
            x_label="quantum (window close)",
            y_label="max ACF peak",
            y_floor=0.0,
            y_ceil=1.0,
            desc="max autocorrelogram peak per window",
        )
    )
    snap = bundle.get("acf_snapshot")
    if snap and snap.get("acf"):
        acf = snap["acf"]
        points = list(enumerate(acf))
        lags = set(snap.get("peak_lags") or ())
        markers = [(lag, acf[lag]) for lag in sorted(lags) if lag < len(acf)]
        sig = "significant" if snap.get("significant") else "not significant"
        parts.append(
            f"<h3>Autocorrelogram (quantum {snap.get('quantum')}, "
            f"{sig} window)</h3>"
        )
        parts.append(
            line_chart(
                points,
                x_label="lag (events)",
                y_label="autocorrelation",
                markers=markers,
                marker_label="peak at lag",
                desc="event-train autocorrelogram",
            )
        )
    windows = bundle.get("acf_windows") or []
    if windows:
        parts.append(
            _details(
                f"per-window peak data ({len(windows)} windows)",
                _table(
                    (
                        "quantum", "peaks", "top peak", "period",
                        "min dip", "coverage", "significant",
                    ),
                    (
                        (
                            w.get("quantum"),
                            len(w.get("peak_lags") or ()),
                            (
                                f"{max(w['peak_heights']):.3f}"
                                if w.get("peak_heights") else "—"
                            ),
                            (
                                f"{w['dominant_period']:.0f}"
                                if w.get("dominant_period") else "—"
                            ),
                            f"{w.get('min_dip', 0):.3f}",
                            f"{w.get('coverage', 0):.2f}",
                            w.get("significant"),
                        )
                        for w in windows
                    ),
                ),
            )
        )
    return "".join(parts)


def _timeline_section(bundle: Mapping[str, Any]) -> str:
    parts = ["<h3>Verdict timeline &amp; pipeline health</h3>"]
    rows: List[Tuple[int, str, str]] = []
    for quantum, detected in bundle.get("verdict_timeline") or ():
        rows.append(
            (quantum, "verdict", "detected" if detected else "clear")
        )
    for quantum, health in bundle.get("health_transitions") or ():
        kind, label = _HEALTH_BADGES.get(health, ("crit", health))
        rows.append((quantum, "health", _badge(kind, label)))
    for quantum, tag in bundle.get("fault_events") or ():
        rows.append((quantum, "fault", _esc(tag)))
    rows.sort(key=lambda r: (r[0], r[1]))
    if not rows:
        return parts[0] + '<p class="empty">no transitions recorded</p>'
    body = "".join(
        f"<tr><td>{q}</td><td>{kind}</td><td>{what}</td></tr>"
        for q, kind, what in rows
    )
    parts.append(
        "<table><tr><th>quantum</th><th>event</th><th>detail</th></tr>"
        f"{body}</table>"
    )
    return "".join(parts)


def _dropped_note(bundle: Mapping[str, Any]) -> str:
    dropped = {k: v for k, v in (bundle.get("dropped") or {}).items() if v}
    if not dropped:
        return ""
    items = ", ".join(f"{k}: {v}" for k, v in sorted(dropped.items()))
    return (
        f'<p class="empty">ring-buffer evictions (oldest records '
        f"dropped): {_esc(items)}</p>"
    )


def _raw_tables(bundle: Mapping[str, Any]) -> str:
    inner = []
    lr = bundle.get("lr_trajectory") or []
    if lr:
        inner.append(
            _table(("quantum", "likelihood ratio"),
                   ((q, f"{v:.4f}") for q, v in lr))
        )
    peaks = bundle.get("peak_trajectory") or []
    if peaks:
        inner.append(
            _table(("quantum", "max peak"),
                   ((q, f"{v:.4f}") for q, v in peaks))
        )
    if not inner:
        return ""
    return _details("raw trajectory data", "".join(inner))


def _unit_section(
    unit: str,
    bundle: Mapping[str, Any],
    doc: Mapping[str, Any],
    lr_threshold: float,
) -> str:
    verdict = _verdict_for(doc, unit)
    detected = _detected(bundle, verdict)
    health = (
        verdict.get("health") if verdict
        else (bundle.get("health_transitions") or [[0, "ok"]])[-1][1]
    )
    parts = [
        f'<section id="unit-{_esc(unit)}">',
        f"<h2>{_esc(unit)} <small>({_esc(bundle.get('method', '?'))} "
        f"method)</small> {_verdict_badge(detected)} "
        f"{_health_badge(health or 'ok')}</h2>",
    ]
    if verdict:
        keys = (
            "quanta_analyzed", "max_likelihood_ratio", "recurrent",
            "burst_window_fraction", "oscillating_windows", "max_peak",
            "dominant_period",
        )
        rows = [(k, verdict[k]) for k in keys if verdict.get(k) is not None]
        parts.append(_table(("measure", "value"), rows))
        for note in verdict.get("notes") or ():
            parts.append(f"<p>note: {_esc(note)}</p>")
    if bundle.get("method") == "burst":
        parts.append(_burst_figures(bundle, lr_threshold))
    else:
        parts.append(_oscillation_figures(bundle))
    parts.append(_timeline_section(bundle))
    parts.append(_dropped_note(bundle))
    parts.append(_raw_tables(bundle))
    parts.append("</section>")
    return "".join(parts)


def _interesting_series(records: Sequence[Mapping[str, Any]]) -> List[str]:
    """Series worth charting: ≥2 points and not constant."""
    chosen = []
    for key in series_keys(records):
        values = series_values(records, key)
        if len(values) >= 2 and len({v for _x, v in values}) > 1:
            chosen.append(key)
    return chosen


def _timeseries_section(
    records: Sequence[Mapping[str, Any]], max_charts: int = 8
) -> str:
    records = list(records)
    if not records:
        return ""
    parts = ["<h2>Metrics time series</h2>"]
    keys = _interesting_series(records)
    shown = keys[:max_charts]
    x_is_quantum = any(r.get("quantum") is not None for r in records)
    for key in shown:
        parts.append(f"<h3>{_esc(key)}</h3>")
        parts.append(
            line_chart(
                series_values(records, key),
                x_label="quantum" if x_is_quantum else "seconds",
                y_label="value",
                desc=f"time series for {key}",
            )
        )
    if len(keys) > len(shown):
        parts.append(
            f'<p class="empty">{len(keys) - len(shown)} further varying '
            "series omitted from charts (see final values below)</p>"
        )
    last = records[-1].get("values", {})
    parts.append(
        _details(
            f"final sample ({len(last)} series)",
            _table(
                ("series", "value"),
                ((k, last[k]) for k in sorted(last)),
            ),
        )
    )
    return "".join(parts)


def _meta_section(doc: Mapping[str, Any]) -> str:
    meta = doc.get("meta") or {}
    rows = [
        (key, value)
        for key, value in sorted(meta.items())
        if isinstance(value, (str, int, float, bool))
    ]
    if not rows:
        return ""
    return "<h3>Run context</h3>" + _table(("key", "value"), rows)


def forensic_report_html(
    doc: Mapping[str, Any],
    timeseries: Optional[Sequence[Mapping[str, Any]]] = None,
    title: str = "CC-Hunter forensic report",
) -> str:
    """Render one evidence document as a self-contained HTML page."""
    units = doc.get("units") or {}
    report = doc.get("meta", {}).get("report")
    overall = (
        _verdict_badge(bool(report.get("any_detected")))
        if isinstance(report, Mapping) else ""
    )
    body = [
        f"<h1>{_esc(title)} {overall}</h1>",
        _meta_section(doc),
    ]
    lr_threshold = float(doc.get("meta", {}).get("lr_threshold", 0.5))
    for unit in sorted(units):
        body.append(_unit_section(unit, units[unit], doc, lr_threshold))
    if not units:
        body.append('<p class="empty">document contains no unit bundles</p>')
    if timeseries:
        body.append(_timeseries_section(timeseries))
    body.append(
        f"<footer>format {_esc(doc.get('format', '?'))} · rendered by "
        "repro report · charts carry data tables under "
        "&ldquo;details&rdquo;</footer>"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title>"
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


# ------------------------------------------------------------------ markdown


def _md_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    if len(lines) == 2:
        return "_none recorded_\n"
    return "\n".join(lines) + "\n"


def forensic_report_markdown(
    doc: Mapping[str, Any],
    timeseries: Optional[Sequence[Mapping[str, Any]]] = None,
    title: str = "CC-Hunter forensic report",
) -> str:
    """Render one evidence document as plain Markdown (no figures)."""
    out = [f"# {title}\n"]
    report = doc.get("meta", {}).get("report")
    if isinstance(report, Mapping):
        overall = (
            "covert timing channel activity detected"
            if report.get("any_detected")
            else "no covert timing channel activity detected"
        )
        out.append(f"**Overall:** {overall} (health: {report.get('health')})\n")
    units = doc.get("units") or {}
    for unit in sorted(units):
        bundle = units[unit]
        verdict = _verdict_for(doc, unit)
        detected = _detected(bundle, verdict)
        flag = (
            "no verdict" if detected is None
            else ("CHANNEL LIKELY" if detected else "clear")
        )
        out.append(f"## {unit} ({bundle.get('method')}) — {flag}\n")
        if verdict:
            rows = [
                (k, v) for k, v in verdict.items()
                if k not in ("unit", "evidence", "notes")
                and v is not None
            ]
            out.append(_md_table(("measure", "value"), rows))
        lr = bundle.get("lr_trajectory") or []
        if lr:
            out.append("### Likelihood-ratio trajectory\n")
            out.append(
                _md_table(("quantum", "LR"), ((q, f"{v:.4f}") for q, v in lr))
            )
        snap = _latest_histogram(bundle)
        if snap is not None:
            hist = snap.get("hist") or []
            out.append(
                f"### Density histogram (quantum {snap.get('quantum')}, "
                f"{snap.get('reason')})\n"
            )
            out.append(
                _md_table(
                    ("bin", "count"),
                    ((i, c) for i, c in enumerate(hist) if c),
                )
            )
        peaks = bundle.get("peak_trajectory") or []
        if peaks:
            out.append("### Correlogram peak trajectory\n")
            out.append(
                _md_table(
                    ("quantum", "max peak"),
                    ((q, f"{v:.4f}") for q, v in peaks),
                )
            )
        acf_snap = bundle.get("acf_snapshot")
        if acf_snap and acf_snap.get("peak_lags"):
            acf = acf_snap.get("acf") or []
            out.append(
                f"### Autocorrelogram peaks (quantum "
                f"{acf_snap.get('quantum')})\n"
            )
            out.append(
                _md_table(
                    ("lag", "height"),
                    (
                        (lag, f"{acf[lag]:.4f}" if lag < len(acf) else "—")
                        for lag in acf_snap["peak_lags"]
                    ),
                )
            )
        events = []
        for q, detected_flip in bundle.get("verdict_timeline") or ():
            events.append(
                (q, "verdict", "detected" if detected_flip else "clear")
            )
        for q, health in bundle.get("health_transitions") or ():
            events.append((q, "health", health))
        for q, tag in bundle.get("fault_events") or ():
            events.append((q, "fault", tag))
        if events:
            events.sort(key=lambda r: (r[0], r[1]))
            out.append("### Timeline\n")
            out.append(_md_table(("quantum", "event", "detail"), events))
    if timeseries:
        records = list(timeseries)
        keys = _interesting_series(records)
        if keys:
            out.append("## Metrics time series (varying series)\n")
            for key in keys:
                values = series_values(records, key)
                out.append(f"### `{key}`\n")
                out.append(
                    _md_table(
                        ("x", "value"),
                        ((f"{x:g}", f"{v:g}") for x, v in values),
                    )
                )
    out.append(f"---\nformat `{doc.get('format', '?')}` · rendered by "
               "`repro report`\n")
    return "\n".join(out)


def render_report(
    doc: Mapping[str, Any],
    fmt: str = "html",
    timeseries: Optional[Sequence[Mapping[str, Any]]] = None,
    title: str = "CC-Hunter forensic report",
) -> str:
    """Dispatch on ``fmt`` ("html" or "md"/"markdown")."""
    if fmt == "html":
        return forensic_report_html(doc, timeseries=timeseries, title=title)
    if fmt in ("md", "markdown"):
        return forensic_report_markdown(
            doc, timeseries=timeseries, title=title
        )
    raise ValueError(f"unknown report format {fmt!r} (expected html or md)")
