"""Forensic report generation: evidence documents → human-facing views.

The rendering counterpart of :mod:`repro.obs.evidence`: given the
bundles a detection session captured (plus an optional metrics time
series from :mod:`repro.obs.timeseries`), produce

- a **self-contained HTML report** — per-unit LR trajectories, density
  histograms, and autocorrelograms as inline SVG (no external assets),
  with verdict/health badges, fault timelines, and raw-data tables;
- a **Markdown report** with the same structure rendered as tables;
- a **live watch view** (:class:`WatchSink`) that refreshes a compact
  status block in place during long runs.

Exposed on the CLI as ``repro report`` and via ``repro detect/analyze
--report-out`` / ``--watch``. See docs/FORENSICS.md.
"""

from repro.report.live import LiveBlock, WatchSink
from repro.report.render import (
    forensic_report_html,
    forensic_report_markdown,
    render_report,
)
from repro.report.svg import bar_chart, line_chart
from repro.report.top import fetch_tenants, render_fleet, run_top

__all__ = [
    "LiveBlock",
    "WatchSink",
    "fetch_tenants",
    "render_fleet",
    "run_top",
    "forensic_report_html",
    "forensic_report_markdown",
    "render_report",
    "bar_chart",
    "line_chart",
]
