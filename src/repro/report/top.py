"""``repro top``: a live TTY dashboard over the serve telemetry plane.

Polls a :class:`repro.obs.telemetry.TelemetryServer` admin endpoint
(``/tenants``) and renders the tenant fleet as a redrawing status block
— tenants sorted by SLO burn rate, worst first, so the tenant the
auditor is closest to losing sight of is the first line on screen.

Reuses :class:`repro.report.live.LiveBlock` for the redraw machinery:
on a TTY the table refreshes in place; redirected to a file it appends
one block per poll, staying a readable log. Plain-function rendering
(:func:`render_fleet`) is separate from the polling loop so tests can
exercise the table without a socket.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, TextIO

from repro.errors import ServeUnavailableError
from repro.obs.telemetry import fetch
from repro.report.live import LiveBlock

_HEADER = (
    f"{'TENANT':<20} {'HEALTH':<8} {'BURN':>6} {'ALERTS':>6} "
    f"{'RECV':>6} {'SHED':>5} {'LOST':>5} {'COAL':>5}  FLAGS"
)


def _flags(doc: Dict[str, Any]) -> str:
    flags = []
    if doc.get("any_detected"):
        flags.append("DETECTED")
    slo = doc.get("slo") or {}
    for firing in slo.get("firing", []):
        flags.append(f"{firing['rule']}:{firing['objective']}")
    if not doc.get("connected", False):
        flags.append("idle")
    return " ".join(flags) or "-"


def render_fleet(doc: Dict[str, Any], title: str = "repro top") -> List[str]:
    """Lines for one ``/tenants`` document, sorted by burn rate."""
    tenants = sorted(
        doc.get("tenants", []),
        key=lambda t: (t.get("slo") or {}).get("max_burn_rate", 0.0),
        reverse=True,
    )
    state = "draining" if doc.get("draining") else "serving"
    lines = [f"{title} — {len(tenants)} tenant(s), {state}", _HEADER]
    for tenant in tenants:
        slo = tenant.get("slo") or {}
        lines.append(
            f"{tenant.get('tenant', '?'):<20} "
            f"{tenant.get('health', '?'):<8} "
            f"{slo.get('max_burn_rate', 0.0):>6.1f} "
            f"{slo.get('alerts_total', 0):>6d} "
            f"{tenant.get('received', 0):>6d} "
            f"{tenant.get('shed', 0):>5d} "
            f"{tenant.get('lost', 0):>5d} "
            f"{tenant.get('coalesced', 0):>5d}  "
            f"{_flags(tenant)}"
        )
    if not tenants:
        lines.append("  (no tenants)")
    return lines


async def fetch_tenants(host: str, port: int) -> Dict[str, Any]:
    """One ``/tenants`` poll; raises ServeUnavailableError when down."""
    try:
        status, body = await fetch(host, port, "/tenants")
    except (ConnectionError, OSError) as exc:
        raise ServeUnavailableError(
            f"cannot reach telemetry endpoint at {host}:{port}: {exc}"
        ) from None
    if status != 200:
        raise ServeUnavailableError(
            f"telemetry endpoint at {host}:{port} answered {status}"
        )
    try:
        return json.loads(body)
    except ValueError as exc:
        raise ServeUnavailableError(
            f"telemetry endpoint sent invalid JSON: {exc}"
        ) from None


async def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Poll and redraw until interrupted (or for ``iterations`` polls).

    Returns the number of polls completed. The *first* poll failing
    raises :class:`ServeUnavailableError` (exit code 9 at the CLI); a
    later failure means the service went away — render that and stop.
    """
    block = LiveBlock(stream)
    polls = 0
    while iterations is None or polls < iterations:
        try:
            doc = await fetch_tenants(host, port)
        except ServeUnavailableError:
            if polls == 0:
                raise
            block.draw([f"repro top — endpoint {host}:{port} went away"])
            break
        block.draw(render_fleet(doc, title=f"repro top {host}:{port}"))
        polls += 1
        if iterations is not None and polls >= iterations:
            break
        await asyncio.sleep(interval)
    block.release()
    return polls


__all__ = ["fetch_tenants", "render_fleet", "run_top"]
