"""The simulated machine: hardware assembly plus process execution.

``Machine`` wires the discrete-event engine to the resource models (bus,
per-core dividers, shared L2), owns the indicator-event taps the
CC-auditor reads, spawns processes, dispatches their operations, and runs
the quantum loop that drives per-OS-quantum detection hooks.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional, Tuple


from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.hardware.conflict_tracker import (
    ConflictMissTracker,
    GenerationConflictTracker,
)
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.events import EventTap, LabeledEventTap, RateSegmentTap
from repro.sim.process import (
    BusLockBurst,
    BusSample,
    CacheAccessSeries,
    Compute,
    DividerLoop,
    DividerSaturate,
    Process,
    RandomBusLocks,
    RandomCacheTraffic,
    RandomDividerUse,
    WaitUntil,
)
from repro.sim.resources.bus import MemoryBus
from repro.sim.resources.cache import SharedCache
from repro.sim.resources.divider import DividerUnit
from repro.sim.scheduler import Scheduler
from repro.util.rng import derive_rng

#: Signature of per-quantum hooks: (quantum index, window start, window end).
QuantumHook = Callable[[int, int, int], None]

_log = get_logger("sim.machine")


class Machine:
    """A quad-core, 2-way SMT machine with auditable shared resources."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        tracker: Optional[ConflictMissTracker] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache_vectorized: bool = True,
    ):
        self.config = config or MachineConfig()
        self.seed = seed
        self.clock = Clock(self.config.frequency_hz)
        self.engine = Engine()
        self.metrics = metrics if metrics is not None else get_default()
        self.scheduler = Scheduler(self.config, metrics=self.metrics)
        self._m_quanta = self.metrics.counter(
            "cchunter_sim_quanta_total", "OS quanta simulated"
        )
        self._m_events = self.metrics.counter(
            "cchunter_sim_events_total", "discrete-event callbacks executed"
        )
        self._m_cycles = self.metrics.counter(
            "cchunter_sim_cycles_total", "simulated cycles advanced"
        )
        self._m_wall = self.metrics.counter(
            "cchunter_sim_wall_seconds_total",
            "wall-clock seconds spent inside run_quanta",
        )
        self._m_qps = self.metrics.gauge(
            "cchunter_sim_quanta_per_second",
            "simulated quanta per wall second (last run_quanta call)",
        )
        self._m_time_ratio = self.metrics.gauge(
            "cchunter_sim_time_ratio",
            "simulated seconds per wall second (last run_quanta call)",
        )
        self._m_quantum_wall = self.metrics.histogram(
            "cchunter_sim_quantum_wall_seconds",
            "wall time of one simulated OS quantum (events + hooks)",
        )

        # Indicator-event taps the CC-auditor can be pointed at.
        self.bus_lock_tap = EventTap("membus.lock")
        self.divider_wait_taps: List[RateSegmentTap] = [
            RateSegmentTap(f"divider{core}.wait")
            for core in range(self.config.n_cores)
        ]
        self.multiplier_wait_taps: List[RateSegmentTap] = [
            RateSegmentTap(f"multiplier{core}.wait")
            for core in range(self.config.n_cores)
        ]
        self.cache_miss_tap = LabeledEventTap("l2.conflict_miss")

        self.bus = MemoryBus(
            self.config.bus, self.bus_lock_tap, derive_rng(seed, "bus")
        )
        self.dividers: List[DividerUnit] = [
            DividerUnit(
                core,
                self.config.divider,
                self.divider_wait_taps[core],
                derive_rng(seed, "divider", core),
            )
            for core in range(self.config.n_cores)
        ]
        self.multipliers: List[DividerUnit] = [
            DividerUnit(
                core,
                self.config.multiplier,
                self.multiplier_wait_taps[core],
                derive_rng(seed, "multiplier", core),
            )
            for core in range(self.config.n_cores)
        ]
        self.tracker: ConflictMissTracker = tracker or GenerationConflictTracker(
            capacity=self.config.l2.n_blocks
        )
        self.l2 = SharedCache(
            self.config.l2,
            self.tracker,
            self.cache_miss_tap,
            derive_rng(seed, "l2"),
            vectorized=cache_vectorized,
        )
        self._processes: List[Process] = []
        self._quantum_hooks: List[QuantumHook] = []
        self.quanta_completed = 0
        # Exact-type operation dispatch: one dict probe instead of a
        # cascade of isinstance checks on the per-event hot path
        # (subclasses of the op types fall back to the isinstance scan).
        self._op_handlers = {
            Compute: self._op_compute,
            WaitUntil: self._op_wait_until,
            BusLockBurst: self._op_bus_lock_burst,
            BusSample: self._op_bus_sample,
            DividerSaturate: self._op_divider_saturate,
            DividerLoop: self._op_divider_loop,
            CacheAccessSeries: self._op_cache_access_series,
            RandomBusLocks: self._op_random_bus_locks,
            RandomDividerUse: self._op_random_divider_use,
            RandomCacheTraffic: self._op_random_cache_traffic,
        }

    # ---------------------------------------------------------------- spawn

    def spawn(
        self,
        process: Process,
        ctx: Optional[int] = None,
        core: Optional[int] = None,
        start_time: Optional[int] = None,
    ) -> Process:
        """Place a process on a hardware context and start it.

        ``ctx`` pins a specific SMT thread; ``core`` picks any free thread
        of that core. The process starts at ``start_time`` (default: now).
        """
        self.scheduler.place(process, ctx=ctx, core=core)
        process.machine = self
        self._processes.append(process)
        t0 = self.engine.now if start_time is None else int(start_time)
        process.start_time = t0
        self.engine.schedule(t0, self._continuation(process), process.priority)
        return process

    def _continuation(self, process: Process) -> Callable[[], None]:
        """The process's single resumption callback.

        One closure serves the process's whole life — the next ``send``
        value rides in a one-cell box — so advancing a process costs a
        plain call, with no per-event closure allocation (this is the
        per-event hot path: every simulated operation passes through
        here once).
        """
        gen = process.run()
        engine = self.engine
        execute = self._execute
        schedule = engine.schedule
        priority = process.priority
        send = getattr(gen, "send", None)
        if send is None:
            # A plain iterable body (no generator protocol): results of
            # executed operations are simply dropped, as before.
            it = iter(gen)

            def send(_value):
                return next(it)

        box = [None]

        def resume() -> None:
            try:
                op = send(box[0])
            except StopIteration:
                process.finished = True
                process.finish_time = engine.now
                self.scheduler.release(process)
                return
            end, box[0] = execute(process, op)
            if end < engine.now:
                raise SimulationError(
                    f"operation {op!r} of {process.name!r} ended in the past"
                )
            schedule(end, resume, priority)

        return resume

    # ------------------------------------------------------------- execution

    def _execute(self, process: Process, op) -> Tuple[int, object]:
        """Run one operation against the hardware; returns (end time, result)."""
        now = self.engine.now
        ctx = process.ctx
        if ctx is None:
            raise SimulationError(f"{process.name!r} has no hardware context")
        handler = self._op_handlers.get(type(op))
        if handler is None:
            for op_type, candidate in self._op_handlers.items():
                if isinstance(op, op_type):
                    handler = candidate
                    break
            else:
                raise SimulationError(f"unknown operation type: {op!r}")
        return handler(process, op, now, ctx)

    def _op_compute(self, process, op, now, ctx):
        return now + op.cycles, None

    def _op_wait_until(self, process, op, now, ctx):
        return max(now, op.time), None

    def _op_bus_lock_burst(self, process, op, now, ctx):
        return self.bus.lock_burst(ctx, now, op.count, op.period), None

    def _op_bus_sample(self, process, op, now, ctx):
        return self.bus.sample(ctx, now, op.count, op.period)

    def _op_divider_saturate(self, process, op, now, ctx):
        units = self.functional_units(op.unit)
        return units[process.core].saturate(ctx, now, op.duration), None

    def _op_divider_loop(self, process, op, now, ctx):
        units = self.functional_units(op.unit)
        return units[process.core].run_loop(
            ctx, now, op.iterations, op.divs_per_iter
        )

    def _op_cache_access_series(self, process, op, now, ctx):
        return self.l2.access_series(ctx, op.accesses, op.gap, now)

    # The Random* operations are non-blocking *registrations*: they
    # commit activity covering [now, now + duration) and complete
    # immediately, so one noise process can register several activity
    # types for the same window (advancing time is the body's job, via
    # WaitUntil/Compute — see repro.workloads.base).

    def _op_random_bus_locks(self, process, op, now, ctx):
        rate_per_cycle = op.rate_per_second / self.clock.frequency_hz
        self.bus.noise_locks(ctx, now, op.duration, rate_per_cycle)
        return now, None

    def _op_random_divider_use(self, process, op, now, ctx):
        self.dividers[process.core].random_use(
            ctx,
            now,
            op.duration,
            op.duty,
            op.burst_cycles,
            intensity=op.intensity,
        )
        return now, None

    def _op_random_cache_traffic(self, process, op, now, ctx):
        self.l2.random_traffic(
            ctx,
            now,
            op.duration,
            op.count,
            set_lo=op.set_lo,
            set_hi=op.set_hi,
            tag_space=op.tag_space,
        )
        return now, None

    # ------------------------------------------------------------- run loop

    @property
    def quantum_cycles(self) -> int:
        return self.config.quantum_cycles

    def on_quantum_end(self, hook: QuantumHook) -> None:
        """Register a hook fired at every OS-quantum boundary.

        Hooks receive ``(quantum_index, window_start, window_end)`` and run
        after every process event inside the window has executed — this is
        where the CC-Hunter daemon reads the auditor.
        """
        self._quantum_hooks.append(hook)

    def run_quanta(self, n_quanta: int) -> None:
        """Advance the simulation by ``n_quanta`` OS time quanta."""
        if n_quanta <= 0:
            raise SimulationError(f"must run a positive number of quanta: {n_quanta}")
        width = self.quantum_cycles
        timed = self.metrics.enabled
        t_start = perf_counter() if timed else 0.0
        events_before = self.engine.events_executed
        for _ in range(n_quanta):
            q = self.quanta_completed
            t0, t1 = q * width, (q + 1) * width
            t_quantum = perf_counter() if timed else 0.0
            with trace_span("sim.quantum", quantum=q):
                self.engine.run_until(t1)
                for hook in self._quantum_hooks:
                    hook(q, t0, t1)
            if timed:
                self._m_quantum_wall.observe(perf_counter() - t_quantum)
            self.quanta_completed += 1
        if timed:
            elapsed = perf_counter() - t_start
            events = self.engine.events_executed - events_before
            self._m_quanta.inc(n_quanta)
            self._m_events.inc(events)
            self._m_cycles.inc(n_quanta * width)
            self._m_wall.inc(elapsed)
            if elapsed > 0:
                self._m_qps.set(n_quanta / elapsed)
                self._m_time_ratio.set(
                    n_quanta * self.config.os_quantum_seconds / elapsed
                )
            _log.debug(
                "ran %d quanta (%d events) in %.3fs",
                n_quanta,
                events,
                elapsed,
            )

    def run_until(self, t_end: int) -> None:
        """Advance to an absolute cycle without quantum bookkeeping."""
        self.engine.run_until(t_end)

    @property
    def now(self) -> int:
        return self.engine.now

    @property
    def processes(self) -> Tuple[Process, ...]:
        return tuple(self._processes)

    def functional_units(self, kind: str) -> List[DividerUnit]:
        """The per-core units of a kind ('divider' or 'multiplier')."""
        if kind == "divider":
            return self.dividers
        if kind == "multiplier":
            return self.multipliers
        raise SimulationError(f"unknown functional unit kind {kind!r}")

    def divider_wait_tap_for(self, core: int) -> RateSegmentTap:
        """The wait-event tap of a core's divider unit."""
        if not 0 <= core < self.config.n_cores:
            raise SimulationError(f"core {core} outside machine")
        return self.divider_wait_taps[core]

    def multiplier_wait_tap_for(self, core: int) -> RateSegmentTap:
        """The wait-event tap of a core's multiplier unit."""
        if not 0 <= core < self.config.n_cores:
            raise SimulationError(f"core {core} outside machine")
        return self.multiplier_wait_taps[core]
