"""Virtual time: cycles at a fixed clock frequency.

All simulator timestamps are integer CPU cycles. The paper quotes
quantities both in cycles (Δt = 100 000 cycles for the bus) and in seconds
(OS quantum = 0.1 s, bandwidths in bits/s); this class converts between
the two at the configured core frequency (2.5 GHz by default).
"""

from __future__ import annotations

from repro.errors import ConfigError


class Clock:
    """Cycle/second conversions at a fixed frequency."""

    def __init__(self, frequency_hz: float = 2.5e9):
        if frequency_hz <= 0:
            raise ConfigError(f"clock frequency must be positive, got {frequency_hz}")
        self.frequency_hz = float(frequency_hz)

    def cycles(self, seconds: float) -> int:
        """Convert seconds to (rounded) cycles.

        >>> Clock(2.5e9).cycles(0.1)
        250000000
        """
        return int(round(seconds * self.frequency_hz))

    def seconds(self, cycles: int) -> float:
        """Convert cycles to seconds."""
        return cycles / self.frequency_hz

    def cycles_per_bit(self, bandwidth_bps: float) -> int:
        """Length of one covert bit period in cycles at ``bandwidth_bps``."""
        if bandwidth_bps <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth_bps}")
        return int(round(self.frequency_hz / bandwidth_bps))

    def __repr__(self) -> str:
        return f"Clock({self.frequency_hz / 1e9:.2f} GHz)"
