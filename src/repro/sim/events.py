"""Indicator-event collection.

Shared resources report the paper's *indicator events* into taps:

- :class:`EventTap` — sparse events with explicit cycle timestamps and a
  source context (memory bus lock operations, benign conflicts).
- :class:`RateSegmentTap` — dense event activity expressed as
  ``(start, end, rate)`` segments plus optional sparse extras. The divider
  channel produces one wait-on-busy event every few cycles for millions of
  cycles; materializing each timestamp would be wasteful, and the detector
  only ever needs *per-Δt-window counts*, which segments yield exactly.
- :class:`LabeledEventTap` — cache conflict misses carrying the
  (replacer context, victim context) ordered pair the CC-auditor's vector
  registers record.

Taps accumulate for the whole run; consumers slice by window with the
``*_in`` methods. ``clear()`` supports streaming consumers that drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def _concat_chunks(chunks: Sequence[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(c, dtype=dtype) for c in chunks])


class EventTap:
    """Collects sparse indicator events as (cycle, context) pairs."""

    def __init__(self, name: str):
        self.name = name
        self._time_chunks: List[np.ndarray] = []
        self._ctx_chunks: List[np.ndarray] = []
        self._sorted_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def record(self, time: int, ctx: int) -> None:
        """Record a single event."""
        self._time_chunks.append(np.array([time], dtype=np.int64))
        self._ctx_chunks.append(np.array([ctx], dtype=np.int16))
        self._sorted_cache = None

    def record_batch(self, times: np.ndarray, ctx: int) -> None:
        """Record many events from one context (times need not be sorted)."""
        arr = np.asarray(times, dtype=np.int64)
        if arr.size == 0:
            return
        self._time_chunks.append(arr)
        self._ctx_chunks.append(np.full(arr.size, ctx, dtype=np.int16))
        self._sorted_cache = None

    @property
    def count(self) -> int:
        return sum(c.size for c in self._time_chunks)

    def _sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._sorted_cache is None:
            times = _concat_chunks(self._time_chunks, np.int64)
            ctxs = _concat_chunks(self._ctx_chunks, np.int16)
            order = np.argsort(times, kind="stable")
            self._sorted_cache = (times[order], ctxs[order])
        return self._sorted_cache

    def times(self) -> np.ndarray:
        """All event timestamps, sorted ascending."""
        return self._sorted()[0]

    def times_and_contexts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Timestamps (sorted) with their matching context ids."""
        return self._sorted()

    def times_in(self, t0: int, t1: int) -> np.ndarray:
        """Sorted timestamps within the half-open window ``[t0, t1)``."""
        times = self.times()
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="left")
        return times[lo:hi]

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Event count per Δt window tiling ``[t0, t1)``."""
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        n_windows = -(-(t1 - t0) // dt)
        times = self.times_in(t0, t1)
        if times.size == 0:
            return np.zeros(n_windows, dtype=np.int64)
        idx = (times - t0) // dt
        return np.bincount(idx, minlength=n_windows).astype(np.int64)

    def clear(self) -> None:
        self._time_chunks.clear()
        self._ctx_chunks.clear()
        self._sorted_cache = None


@dataclass(frozen=True)
class RateSegment:
    """Uniform event activity: ``rate`` events/cycle over ``[start, end)``."""

    start: int
    end: int
    rate: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError("rate segment end precedes start")
        if self.rate < 0:
            raise SimulationError("event rate cannot be negative")

    @property
    def expected_events(self) -> float:
        return self.rate * (self.end - self.start)


class RateSegmentTap:
    """Collects dense event activity as rate segments plus sparse extras.

    The segment representation is exact for the quantity the detector uses
    (events per Δt window) and allows million-event contention phases to be
    recorded in O(1). ``materialize_times`` synthesizes explicit timestamps
    for plots and for consumers (like the autocorrelation analysis) that
    need individual events; synthesis is deterministic.
    """

    def __init__(self, name: str):
        self.name = name
        self._seg_starts: List[int] = []
        self._seg_ends: List[int] = []
        self._seg_rates: List[float] = []
        self._seg_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._sparse = EventTap(name + ".sparse")

    def record_segment(self, start: int, end: int, rate: float) -> None:
        """Record uniform activity of ``rate`` events/cycle over [start, end)."""
        if end <= start or rate <= 0:
            return
        self._seg_starts.append(int(start))
        self._seg_ends.append(int(end))
        self._seg_rates.append(float(rate))
        self._seg_cache = None

    def record_segments_batch(
        self, starts: np.ndarray, ends: np.ndarray, rates: np.ndarray
    ) -> None:
        """Record many segments at once (empty/zero-rate entries skipped)."""
        keep = (np.asarray(ends) > np.asarray(starts)) & (np.asarray(rates) > 0)
        if not keep.any():
            return
        self._seg_starts.extend(int(s) for s in np.asarray(starts)[keep])
        self._seg_ends.extend(int(e) for e in np.asarray(ends)[keep])
        self._seg_rates.extend(float(r) for r in np.asarray(rates)[keep])
        self._seg_cache = None

    def record(self, time: int, ctx: int = -1) -> None:
        """Record one sparse event (e.g. an isolated benign conflict)."""
        self._sparse.record(time, ctx)

    def record_batch(self, times: np.ndarray, ctx: int = -1) -> None:
        self._sparse.record_batch(times, ctx)

    def _segment_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, rates), sorted by start, with a sort cache."""
        if self._seg_cache is None:
            starts = np.asarray(self._seg_starts, dtype=np.int64)
            ends = np.asarray(self._seg_ends, dtype=np.int64)
            rates = np.asarray(self._seg_rates, dtype=np.float64)
            order = np.argsort(starts, kind="stable")
            self._seg_cache = (starts[order], ends[order], rates[order])
        return self._seg_cache

    def _segments_in(
        self, t0: int, t1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        starts, ends, rates = self._segment_arrays()
        if starts.size == 0:
            return starts, ends, rates
        hi = int(np.searchsorted(starts, t1, side="left"))
        sel = ends[:hi] > t0
        return starts[:hi][sel], ends[:hi][sel], rates[:hi][sel]

    @property
    def segments(self) -> Tuple[RateSegment, ...]:
        starts, ends, rates = self._segment_arrays()
        return tuple(
            RateSegment(int(s), int(e), float(r))
            for s, e, r in zip(starts, ends, rates)
        )

    @property
    def count(self) -> float:
        """Expected total events (segments) plus exact sparse events."""
        starts, ends, rates = self._segment_arrays()
        return float(((ends - starts) * rates).sum()) + self._sparse.count

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Events per Δt window in ``[t0, t1)``; segment mass is spread exactly.

        Vectorized over segments: each segment contributes its partial
        first/last windows via scatter-add and its uniform middle windows
        via a difference array (one cumulative sum at the end), so cost is
        O(#segments + #windows) regardless of segment lengths.
        """
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        n_windows = -(-(t1 - t0) // dt)
        counts = self._sparse.density_counts(dt, t0, t1).astype(np.float64)
        starts, ends, rates = self._segments_in(t0, t1)
        if starts.size:
            s = np.maximum(starts, t0)
            e = np.minimum(ends, t1)
            first = (s - t0) // dt
            last = (e - 1 - t0) // dt
            single = first == last
            # Segments confined to one window.
            np.add.at(
                counts, first[single], (e[single] - s[single]) * rates[single]
            )
            multi = ~single
            if multi.any():
                fm, lm = first[multi], last[multi]
                sm, em, rm = s[multi], e[multi], rates[multi]
                first_end = t0 + (fm + 1) * dt
                np.add.at(counts, fm, (first_end - sm) * rm)
                last_start = t0 + lm * dt
                np.add.at(counts, lm, (em - last_start) * rm)
                # Uniform middle windows fm+1 .. lm-1 via difference array.
                diff = np.zeros(n_windows + 1, dtype=np.float64)
                has_mid = lm > fm + 1
                np.add.at(diff, fm[has_mid] + 1, rm[has_mid] * dt)
                np.add.at(diff, lm[has_mid], -rm[has_mid] * dt)
                counts += np.cumsum(diff[:-1])
        # Round half-up with an epsilon so float residue from the cumsum
        # cannot flip a x.5 boundary either way.
        return np.floor(counts + 0.5 + 1e-6).astype(np.int64)

    def materialize_times(
        self, t0: int, t1: int, max_events: Optional[int] = None
    ) -> np.ndarray:
        """Synthesize explicit sorted timestamps for ``[t0, t1)``.

        Segment events are placed on a uniform grid at each segment's rate.
        If ``max_events`` is given and the total would exceed it, events are
        uniformly thinned (for plotting).
        """
        pieces = [self._sparse.times_in(t0, t1)]
        starts, ends, rates = self._segments_in(t0, t1)
        for s, e, r in zip(starts, ends, rates):
            lo, hi = max(int(s), t0), min(int(e), t1)
            if hi <= lo:
                continue
            period = 1.0 / r
            n = int((hi - lo) * r)
            if n <= 0:
                continue
            pieces.append((lo + (np.arange(n) + 0.5) * period).astype(np.int64))
        times = np.sort(np.concatenate(pieces)) if pieces else np.zeros(0, np.int64)
        if max_events is not None and times.size > max_events:
            keep = np.linspace(0, times.size - 1, max_events).astype(np.int64)
            times = times[keep]
        return times

    def clear(self) -> None:
        self._seg_starts.clear()
        self._seg_ends.clear()
        self._seg_rates.clear()
        self._seg_cache = None
        self._sparse.clear()


class LabeledEventTap:
    """Cache conflict-miss events labeled (replacer context, victim context).

    This mirrors the CC-auditor's 128-byte vector registers, which record
    the three-bit context ids of the replacer (the context requesting the
    block) and the victim (the owner context in the replaced block's
    metadata) for every detected conflict miss.
    """

    def __init__(self, name: str, context_id_bits: int = 3):
        self.name = name
        self.context_id_bits = context_id_bits
        self._time_chunks: List[np.ndarray] = []
        self._replacer_chunks: List[np.ndarray] = []
        self._victim_chunks: List[np.ndarray] = []
        # Single-event appends land in plain-list staging buffers and are
        # consolidated lazily — the cache records conflicts one at a time
        # on its hot path.
        self._stage_times: List[int] = []
        self._stage_replacers: List[int] = []
        self._stage_victims: List[int] = []
        self._sorted_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None

    def record(self, time: int, replacer: int, victim: int) -> None:
        limit = 1 << self.context_id_bits
        if not (0 <= replacer < limit and 0 <= victim < limit):
            raise SimulationError(
                f"context ids must fit in {self.context_id_bits} bits"
            )
        self._stage_times.append(time)
        self._stage_replacers.append(replacer)
        self._stage_victims.append(victim)
        self._sorted_cache = None

    def _flush_stage(self) -> None:
        if not self._stage_times:
            return
        self._time_chunks.append(np.array(self._stage_times, dtype=np.int64))
        self._replacer_chunks.append(
            np.array(self._stage_replacers, dtype=np.int16)
        )
        self._victim_chunks.append(
            np.array(self._stage_victims, dtype=np.int16)
        )
        self._stage_times = []
        self._stage_replacers = []
        self._stage_victims = []

    def record_batch(
        self, times: np.ndarray, replacers: np.ndarray, victims: np.ndarray
    ) -> None:
        t = np.asarray(times, dtype=np.int64)
        r = np.asarray(replacers, dtype=np.int16)
        v = np.asarray(victims, dtype=np.int16)
        if not (t.size == r.size == v.size):
            raise SimulationError("labeled event batch arrays must align")
        if t.size == 0:
            return
        limit = 1 << self.context_id_bits
        if r.size and (r.min() < 0 or r.max() >= limit or v.min() < 0 or v.max() >= limit):
            raise SimulationError(
                f"context ids must fit in {self.context_id_bits} bits"
            )
        self._time_chunks.append(t)
        self._replacer_chunks.append(r)
        self._victim_chunks.append(v)
        self._sorted_cache = None

    @property
    def count(self) -> int:
        return sum(c.size for c in self._time_chunks) + len(self._stage_times)

    def records(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, replacers, victims), sorted by time (stable)."""
        if self._sorted_cache is None:
            self._flush_stage()
            times = _concat_chunks(self._time_chunks, np.int64)
            reps = _concat_chunks(self._replacer_chunks, np.int16)
            vics = _concat_chunks(self._victim_chunks, np.int16)
            order = np.argsort(times, kind="stable")
            self._sorted_cache = (times[order], reps[order], vics[order])
        return self._sorted_cache

    def records_in(
        self, t0: int, t1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Records within ``[t0, t1)``, time-sorted."""
        times, reps, vics = self.records()
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="left")
        return times[lo:hi], reps[lo:hi], vics[lo:hi]

    def clear(self) -> None:
        self._time_chunks.clear()
        self._replacer_chunks.clear()
        self._victim_chunks.clear()
        self._stage_times = []
        self._stage_replacers = []
        self._stage_victims = []
        self._sorted_cache = None
