"""Indicator-event collection.

Shared resources report the paper's *indicator events* into taps:

- :class:`EventTap` — sparse events with explicit cycle timestamps and a
  source context (memory bus lock operations, benign conflicts).
- :class:`RateSegmentTap` — dense event activity expressed as
  ``(start, end, rate)`` segments plus optional sparse extras. The divider
  channel produces one wait-on-busy event every few cycles for millions of
  cycles; materializing each timestamp would be wasteful, and the detector
  only ever needs *per-Δt-window counts*, which segments yield exactly.
- :class:`LabeledEventTap` — cache conflict misses carrying the
  (replacer context, victim context) ordered pair the CC-auditor's vector
  registers record.

Taps accumulate for the whole run; consumers either slice by window with
the ``*_in`` methods (full-history reads for trace export and plots) or
attach a *window reader* (``window_reader()``) that consumes the tap's
append-only chunk columns incrementally. Readers are the streaming hot
path: each read costs O(events in the window) instead of re-sorting the
whole history at every quantum boundary, the tap keeps its full record,
and any number of readers can coexist on one tap. ``clear()`` supports
streaming consumers that drain destructively (readers detect it and fail
loudly rather than silently skipping history).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError


def _concat_chunks(chunks: Sequence[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(c, dtype=dtype) for c in chunks])


def _round_density_counts(counts: np.ndarray) -> np.ndarray:
    """Round spread float counts half-up with an epsilon.

    The epsilon keeps float residue from the segment cumsum from
    flipping an x.5 boundary either way. Shared by the full-history and
    windowed density paths so both round identically.
    """
    return np.floor(counts + 0.5 + 1e-6).astype(np.int64)


def spread_segment_counts(
    counts: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    rates: np.ndarray,
    dt: int,
    t0: int,
    t1: int,
    n_windows: int,
) -> None:
    """Spread each segment's event mass over the Δt windows tiling [t0, t1).

    Mutates the float64 ``counts`` array in place. Vectorized over
    segments: each segment contributes its partial first/last windows via
    scatter-add and its uniform middle windows via a difference array
    (one cumulative sum at the end), so cost is O(#segments + #windows)
    regardless of segment lengths.

    This is THE segment-spread kernel: both
    :meth:`RateSegmentTap.density_counts` (full history) and
    :class:`SegmentWindowReader` (streaming) call it with identically
    ordered segment columns, so the two paths agree bit for bit — float
    accumulation order included.
    """
    if starts.size == 0:
        return
    s = np.maximum(starts, t0)
    e = np.minimum(ends, t1)
    first = (s - t0) // dt
    last = (e - 1 - t0) // dt
    single = first == last
    # Segments confined to one window.
    np.add.at(
        counts, first[single], (e[single] - s[single]) * rates[single]
    )
    multi = ~single
    if multi.any():
        fm, lm = first[multi], last[multi]
        sm, em, rm = s[multi], e[multi], rates[multi]
        first_end = t0 + (fm + 1) * dt
        np.add.at(counts, fm, (first_end - sm) * rm)
        last_start = t0 + lm * dt
        np.add.at(counts, lm, (em - last_start) * rm)
        # Uniform middle windows fm+1 .. lm-1 via difference array.
        diff = np.zeros(n_windows + 1, dtype=np.float64)
        has_mid = lm > fm + 1
        np.add.at(diff, fm[has_mid] + 1, rm[has_mid] * dt)
        np.add.at(diff, lm[has_mid], -rm[has_mid] * dt)
        counts += np.cumsum(diff[:-1])


class EventTap:
    """Collects sparse indicator events as (cycle, context) pairs.

    Storage is columnar: timestamp chunks are int64 arrays appended as
    recorded; a chunk's context column is either an int16 array (mixed
    contexts, from single-event staging) or a plain int scalar (one
    context for the whole chunk — the batch-record case), expanded only
    when a consumer actually needs per-event contexts.
    """

    def __init__(self, name: str):
        self.name = name
        self._time_chunks: List[np.ndarray] = []
        self._ctx_chunks: List[Union[np.ndarray, int]] = []
        # Single-event appends land in plain-list staging buffers and
        # are consolidated into one chunk lazily. Periodic bursts stage
        # symbolically as (starts, count, period, ctx) and materialize
        # on flush. At most one of the two stages is non-empty at any
        # time, so flush order never affects record order.
        self._stage_times: List[int] = []
        self._stage_ctxs: List[int] = []
        self._stage_grid: Optional[Tuple[List[int], int, int, int]] = None
        self._sorted_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._clear_epoch = 0

    def record(self, time: int, ctx: int) -> None:
        """Record a single event."""
        if self._stage_grid is not None:
            self._flush_stage()
        self._stage_times.append(int(time))
        self._stage_ctxs.append(int(ctx))
        self._sorted_cache = None

    def record_batch(self, times: np.ndarray, ctx: int) -> None:
        """Record many events from one context (times need not be sorted)."""
        arr = np.asarray(times, dtype=np.int64)
        if arr.size == 0:
            return
        if self._stage_times or self._stage_grid is not None:
            self._flush_stage()
        self._time_chunks.append(arr)
        self._ctx_chunks.append(int(ctx))
        self._sorted_cache = None

    def record_grid(self, start: int, count: int, period: int, ctx: int) -> None:
        """Record ``count`` events at ``start, start+period, ...`` (one ctx).

        Bursts stay symbolic — one Python-list append per burst — until a
        consumer reads; consecutive same-shape bursts then materialize
        into a single chunk with one vectorized broadcast instead of one
        numpy allocation per burst. The chunk's row-major layout equals
        record order, so sorting and tie order match per-burst
        ``record_batch`` calls exactly.
        """
        if count <= 0 or period <= 0:
            raise SimulationError("event grid needs positive count and period")
        if self._stage_times:
            self._flush_stage()
        g = self._stage_grid
        if g is not None and g[1] == count and g[2] == period and g[3] == ctx:
            g[0].append(int(start))
        else:
            if g is not None:
                self._flush_stage()
            self._stage_grid = ([int(start)], count, period, int(ctx))
        self._sorted_cache = None

    def _flush_stage(self) -> None:
        if self._stage_times:
            self._time_chunks.append(
                np.array(self._stage_times, dtype=np.int64)
            )
            self._ctx_chunks.append(np.array(self._stage_ctxs, dtype=np.int16))
            self._stage_times = []
            self._stage_ctxs = []
        g = self._stage_grid
        if g is not None:
            starts, count, period, ctx = g
            self._stage_grid = None
            base = np.asarray(starts, dtype=np.int64)[:, None]
            offsets = period * np.arange(count, dtype=np.int64)
            self._time_chunks.append((base + offsets).ravel())
            self._ctx_chunks.append(ctx)

    @property
    def count(self) -> int:
        n = sum(c.size for c in self._time_chunks) + len(self._stage_times)
        if self._stage_grid is not None:
            n += len(self._stage_grid[0]) * self._stage_grid[1]
        return n

    def _ctx_arrays(self) -> List[np.ndarray]:
        """Context chunks with scalar (single-context) chunks expanded."""
        return [
            c if isinstance(c, np.ndarray)
            else np.full(t.size, c, dtype=np.int16)
            for t, c in zip(self._time_chunks, self._ctx_chunks)
        ]

    def _sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._sorted_cache is None:
            self._flush_stage()
            times = _concat_chunks(self._time_chunks, np.int64)
            ctxs = _concat_chunks(self._ctx_arrays(), np.int16)
            order = np.argsort(times, kind="stable")
            self._sorted_cache = (times[order], ctxs[order])
        return self._sorted_cache

    def times(self) -> np.ndarray:
        """All event timestamps, sorted ascending."""
        return self._sorted()[0]

    def times_and_contexts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Timestamps (sorted) with their matching context ids."""
        return self._sorted()

    def times_in(self, t0: int, t1: int) -> np.ndarray:
        """Sorted timestamps within the half-open window ``[t0, t1)``."""
        times = self.times()
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="left")
        return times[lo:hi]

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Event count per Δt window tiling ``[t0, t1)``."""
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        n_windows = -(-(t1 - t0) // dt)
        times = self.times_in(t0, t1)
        if times.size == 0:
            return np.zeros(n_windows, dtype=np.int64)
        idx = (times - t0) // dt
        return np.bincount(idx, minlength=n_windows).astype(np.int64)

    def window_reader(self) -> "EventWindowReader":
        """An incremental windowed reader over this tap (hot path)."""
        return EventWindowReader(self)

    def clear(self) -> None:
        self._time_chunks.clear()
        self._ctx_chunks.clear()
        self._stage_times = []
        self._stage_ctxs = []
        self._stage_grid = None
        self._sorted_cache = None
        self._clear_epoch += 1


class EventWindowReader:
    """Incremental windowed timestamp reader over one :class:`EventTap`.

    Streaming consumers read consecutive half-open windows; the reader
    consumes the tap's append-only chunk list through a private cursor
    and carries events recorded ahead of the current window (resources
    commit usage covering an operation's whole future duration) into the
    windows they belong to. The tap keeps its full history, so trace
    export and plots still see everything, and independent readers never
    interfere with each other.

    Window selection matches ``EventTap.times_in`` on the fully sorted
    history exactly: chunks are merged with a stable sort, and carried
    events always precede later-recorded chunks, so tie order equals the
    global record order.
    """

    def __init__(self, tap: EventTap):
        self._tap = tap
        self._chunk_idx = 0
        self._pending = np.zeros(0, dtype=np.int64)
        self._cursor: Optional[int] = None
        self._epoch = tap._clear_epoch

    def _check_epoch(self) -> None:
        if self._tap._clear_epoch != self._epoch:
            raise SimulationError(
                f"tap {self._tap.name!r} was cleared under an active "
                "window reader; create a new reader after clear()"
            )

    def _merged(self) -> np.ndarray:
        """All unconsumed timestamps (pending carry + new chunks), sorted."""
        self._check_epoch()
        tap = self._tap
        tap._flush_stage()
        chunks = tap._time_chunks
        if len(chunks) > self._chunk_idx:
            merged = np.concatenate([self._pending] + chunks[self._chunk_idx:])
            self._chunk_idx = len(chunks)
            if merged.size > 1 and (merged[1:] < merged[:-1]).any():
                merged.sort(kind="stable")
            if (
                self._cursor is not None
                and merged.size
                and merged[0] < self._cursor
            ):
                raise SimulationError(
                    f"tap {tap.name!r} recorded an event at cycle "
                    f"{int(merged[0])}, before the reader cursor at "
                    f"{self._cursor} — windows already read would be wrong"
                )
            self._pending = merged
        return self._pending

    def read(self, t0: int, t1: int) -> np.ndarray:
        """Sorted timestamps in ``[t0, t1)``; advances the cursor to t1."""
        if t1 < t0:
            raise SimulationError(f"window end {t1} precedes start {t0}")
        if self._cursor is not None and t0 < self._cursor:
            raise SimulationError(
                f"window readers advance monotonically: [{t0}, {t1}) "
                f"starts before the cursor at {self._cursor}"
            )
        times = self._merged()
        hi = int(np.searchsorted(times, t1, side="left"))
        window = times[:hi]
        self._pending = times[hi:]
        self._cursor = int(t1)
        lo = int(np.searchsorted(window, t0, side="left"))
        return window[lo:]

    def read_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Event count per Δt window tiling ``[t0, t1)`` (hot-path kernel).

        Same formula as ``EventTap.density_counts`` — one subtraction,
        one integer divide, one bincount over the window's column.
        """
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        n_windows = -(-(t1 - t0) // dt)
        times = self.read(t0, t1)
        if times.size == 0:
            return np.zeros(n_windows, dtype=np.int64)
        idx = (times - t0) // dt
        return np.bincount(idx, minlength=n_windows).astype(np.int64)


@dataclass(frozen=True)
class RateSegment:
    """Uniform event activity: ``rate`` events/cycle over ``[start, end)``."""

    start: int
    end: int
    rate: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError("rate segment end precedes start")
        if self.rate < 0:
            raise SimulationError("event rate cannot be negative")

    @property
    def expected_events(self) -> float:
        return self.rate * (self.end - self.start)


class RateSegmentTap:
    """Collects dense event activity as rate segments plus sparse extras.

    The segment representation is exact for the quantity the detector uses
    (events per Δt window) and allows million-event contention phases to be
    recorded in O(1). ``materialize_times`` synthesizes explicit timestamps
    for plots and for consumers (like the autocorrelation analysis) that
    need individual events; synthesis is deterministic.
    """

    def __init__(self, name: str):
        self.name = name
        self._seg_starts: List[int] = []
        self._seg_ends: List[int] = []
        self._seg_rates: List[float] = []
        self._seg_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._sparse = EventTap(name + ".sparse")
        self._clear_epoch = 0

    def record_segment(self, start: int, end: int, rate: float) -> None:
        """Record uniform activity of ``rate`` events/cycle over [start, end)."""
        if end <= start or rate <= 0:
            return
        self._seg_starts.append(int(start))
        self._seg_ends.append(int(end))
        self._seg_rates.append(float(rate))
        self._seg_cache = None

    def record_segments_batch(
        self, starts: np.ndarray, ends: np.ndarray, rates: np.ndarray
    ) -> None:
        """Record many segments at once (empty/zero-rate entries skipped)."""
        keep = (np.asarray(ends) > np.asarray(starts)) & (np.asarray(rates) > 0)
        if not keep.any():
            return
        self._seg_starts.extend(int(s) for s in np.asarray(starts)[keep])
        self._seg_ends.extend(int(e) for e in np.asarray(ends)[keep])
        self._seg_rates.extend(float(r) for r in np.asarray(rates)[keep])
        self._seg_cache = None

    def record(self, time: int, ctx: int = -1) -> None:
        """Record one sparse event (e.g. an isolated benign conflict)."""
        self._sparse.record(time, ctx)

    def record_batch(self, times: np.ndarray, ctx: int = -1) -> None:
        self._sparse.record_batch(times, ctx)

    def _segment_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, rates), sorted by start, with a sort cache."""
        if self._seg_cache is None:
            starts = np.asarray(self._seg_starts, dtype=np.int64)
            ends = np.asarray(self._seg_ends, dtype=np.int64)
            rates = np.asarray(self._seg_rates, dtype=np.float64)
            order = np.argsort(starts, kind="stable")
            self._seg_cache = (starts[order], ends[order], rates[order])
        return self._seg_cache

    def _segments_in(
        self, t0: int, t1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        starts, ends, rates = self._segment_arrays()
        if starts.size == 0:
            return starts, ends, rates
        hi = int(np.searchsorted(starts, t1, side="left"))
        sel = ends[:hi] > t0
        return starts[:hi][sel], ends[:hi][sel], rates[:hi][sel]

    @property
    def segments(self) -> Tuple[RateSegment, ...]:
        starts, ends, rates = self._segment_arrays()
        return tuple(
            RateSegment(int(s), int(e), float(r))
            for s, e, r in zip(starts, ends, rates)
        )

    @property
    def count(self) -> float:
        """Expected total events (segments) plus exact sparse events."""
        starts, ends, rates = self._segment_arrays()
        return float(((ends - starts) * rates).sum()) + self._sparse.count

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Events per Δt window in ``[t0, t1)``; segment mass is spread exactly.

        Delegates to :func:`spread_segment_counts`, the kernel shared
        with the streaming :class:`SegmentWindowReader`.
        """
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        n_windows = -(-(t1 - t0) // dt)
        counts = self._sparse.density_counts(dt, t0, t1).astype(np.float64)
        starts, ends, rates = self._segments_in(t0, t1)
        spread_segment_counts(
            counts, starts, ends, rates, dt, t0, t1, n_windows
        )
        return _round_density_counts(counts)

    def window_reader(self) -> "SegmentWindowReader":
        """An incremental windowed reader over this tap (hot path)."""
        return SegmentWindowReader(self)

    def materialize_times(
        self, t0: int, t1: int, max_events: Optional[int] = None
    ) -> np.ndarray:
        """Synthesize explicit sorted timestamps for ``[t0, t1)``.

        Segment events are placed on a uniform grid at each segment's rate.
        If ``max_events`` is given and the total would exceed it, events are
        uniformly thinned (for plotting).
        """
        pieces = [self._sparse.times_in(t0, t1)]
        starts, ends, rates = self._segments_in(t0, t1)
        for s, e, r in zip(starts, ends, rates):
            lo, hi = max(int(s), t0), min(int(e), t1)
            if hi <= lo:
                continue
            period = 1.0 / r
            n = int((hi - lo) * r)
            if n <= 0:
                continue
            pieces.append((lo + (np.arange(n) + 0.5) * period).astype(np.int64))
        times = np.sort(np.concatenate(pieces)) if pieces else np.zeros(0, np.int64)
        if max_events is not None and times.size > max_events:
            keep = np.linspace(0, times.size - 1, max_events).astype(np.int64)
            times = times[keep]
        return times

    def clear(self) -> None:
        self._seg_starts.clear()
        self._seg_ends.clear()
        self._seg_rates.clear()
        self._seg_cache = None
        self._sparse.clear()
        self._clear_epoch += 1


class SegmentWindowReader:
    """Incremental windowed reader over a :class:`RateSegmentTap`.

    The dense counterpart of :class:`EventWindowReader`: new segments are
    consumed from the tap's append-only columns exactly once, segments
    still overlapping future windows are carried (sorted by start, tie
    order = record order — the same order the full-history path uses),
    and per-window counts come from :func:`spread_segment_counts`, so the
    streaming and full-history paths agree bit for bit, float
    accumulation order included.
    """

    def __init__(self, tap: RateSegmentTap):
        self._tap = tap
        self._seg_idx = 0
        self._p_starts = np.zeros(0, dtype=np.int64)
        self._p_ends = np.zeros(0, dtype=np.int64)
        self._p_rates = np.zeros(0, dtype=np.float64)
        self._cursor: Optional[int] = None
        self._epoch = tap._clear_epoch
        self._sparse = tap._sparse.window_reader()

    def _merge_new(self) -> None:
        tap = self._tap
        if tap._clear_epoch != self._epoch:
            raise SimulationError(
                f"tap {tap.name!r} was cleared under an active "
                "window reader; create a new reader after clear()"
            )
        n = len(tap._seg_starts)
        if n == self._seg_idx:
            return
        new_starts = np.asarray(tap._seg_starts[self._seg_idx:], dtype=np.int64)
        new_ends = np.asarray(tap._seg_ends[self._seg_idx:], dtype=np.int64)
        new_rates = np.asarray(tap._seg_rates[self._seg_idx:], dtype=np.float64)
        self._seg_idx = n
        if (
            self._cursor is not None
            and new_starts.size
            and int(new_starts.min()) < self._cursor
        ):
            raise SimulationError(
                f"tap {tap.name!r} recorded a segment starting at cycle "
                f"{int(new_starts.min())}, before the reader cursor at "
                f"{self._cursor} — windows already read would be wrong"
            )
        starts = np.concatenate([self._p_starts, new_starts])
        order = np.argsort(starts, kind="stable")
        self._p_starts = starts[order]
        self._p_ends = np.concatenate([self._p_ends, new_ends])[order]
        self._p_rates = np.concatenate([self._p_rates, new_rates])[order]

    def read_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Events per Δt window in ``[t0, t1)``; advances the cursor."""
        if dt <= 0:
            raise SimulationError(f"Δt must be positive, got {dt}")
        if t1 < t0:
            raise SimulationError(f"window end {t1} precedes start {t0}")
        if self._cursor is not None and t0 < self._cursor:
            raise SimulationError(
                f"window readers advance monotonically: [{t0}, {t1}) "
                f"starts before the cursor at {self._cursor}"
            )
        self._merge_new()
        n_windows = -(-(t1 - t0) // dt)
        counts = self._sparse.read_counts(dt, t0, t1).astype(np.float64)
        starts, ends, rates = self._p_starts, self._p_ends, self._p_rates
        if starts.size:
            sel = (starts < t1) & (ends > t0)
            spread_segment_counts(
                counts,
                starts[sel],
                ends[sel],
                rates[sel],
                dt,
                t0,
                t1,
                n_windows,
            )
            keep = ends > t1
            if not keep.all():
                self._p_starts = starts[keep]
                self._p_ends = ends[keep]
                self._p_rates = rates[keep]
        self._cursor = int(t1)
        return _round_density_counts(counts)


class LabeledEventTap:
    """Cache conflict-miss events labeled (replacer context, victim context).

    This mirrors the CC-auditor's 128-byte vector registers, which record
    the three-bit context ids of the replacer (the context requesting the
    block) and the victim (the owner context in the replaced block's
    metadata) for every detected conflict miss.
    """

    def __init__(self, name: str, context_id_bits: int = 3):
        self.name = name
        self.context_id_bits = context_id_bits
        self._time_chunks: List[np.ndarray] = []
        self._replacer_chunks: List[np.ndarray] = []
        self._victim_chunks: List[np.ndarray] = []
        # Single-event appends land in plain-list staging buffers and are
        # consolidated lazily — the cache records conflicts one at a time
        # on its hot path.
        self._stage_times: List[int] = []
        self._stage_replacers: List[int] = []
        self._stage_victims: List[int] = []
        self._sorted_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._clear_epoch = 0

    def record(self, time: int, replacer: int, victim: int) -> None:
        limit = 1 << self.context_id_bits
        if not (0 <= replacer < limit and 0 <= victim < limit):
            raise SimulationError(
                f"context ids must fit in {self.context_id_bits} bits"
            )
        self._stage_times.append(time)
        self._stage_replacers.append(replacer)
        self._stage_victims.append(victim)
        self._sorted_cache = None

    def _flush_stage(self) -> None:
        if not self._stage_times:
            return
        self._time_chunks.append(np.array(self._stage_times, dtype=np.int64))
        self._replacer_chunks.append(
            np.array(self._stage_replacers, dtype=np.int16)
        )
        self._victim_chunks.append(
            np.array(self._stage_victims, dtype=np.int16)
        )
        self._stage_times = []
        self._stage_replacers = []
        self._stage_victims = []

    def record_batch(
        self, times: np.ndarray, replacers: np.ndarray, victims: np.ndarray
    ) -> None:
        t = np.asarray(times, dtype=np.int64)
        r = np.asarray(replacers, dtype=np.int16)
        v = np.asarray(victims, dtype=np.int16)
        if not (t.size == r.size == v.size):
            raise SimulationError("labeled event batch arrays must align")
        if t.size == 0:
            return
        limit = 1 << self.context_id_bits
        if r.size and (r.min() < 0 or r.max() >= limit or v.min() < 0 or v.max() >= limit):
            raise SimulationError(
                f"context ids must fit in {self.context_id_bits} bits"
            )
        self._flush_stage()
        self._time_chunks.append(t)
        self._replacer_chunks.append(r)
        self._victim_chunks.append(v)
        self._sorted_cache = None

    @property
    def count(self) -> int:
        return sum(c.size for c in self._time_chunks) + len(self._stage_times)

    def records(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, replacers, victims), sorted by time (stable)."""
        if self._sorted_cache is None:
            self._flush_stage()
            times = _concat_chunks(self._time_chunks, np.int64)
            reps = _concat_chunks(self._replacer_chunks, np.int16)
            vics = _concat_chunks(self._victim_chunks, np.int16)
            order = np.argsort(times, kind="stable")
            self._sorted_cache = (times[order], reps[order], vics[order])
        return self._sorted_cache

    def records_in(
        self, t0: int, t1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Records within ``[t0, t1)``, time-sorted."""
        times, reps, vics = self.records()
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="left")
        return times[lo:hi], reps[lo:hi], vics[lo:hi]

    def window_reader(self) -> "LabeledWindowReader":
        """An incremental windowed reader over this tap (hot path)."""
        return LabeledWindowReader(self)

    def clear(self) -> None:
        self._time_chunks.clear()
        self._replacer_chunks.clear()
        self._victim_chunks.clear()
        self._stage_times = []
        self._stage_replacers = []
        self._stage_victims = []
        self._sorted_cache = None
        self._clear_epoch += 1


class LabeledWindowReader:
    """Incremental windowed reader over a :class:`LabeledEventTap`.

    Three parallel columns (times, replacers, victims) are consumed
    chunk-wise and merged with one stable argsort per read, preserving
    the exact tie order of the full-history ``records_in`` path — record
    order matters here, because the (replacer, victim) sequence becomes
    the oscillation analyzer's identifier train.
    """

    def __init__(self, tap: LabeledEventTap):
        self._tap = tap
        self._chunk_idx = 0
        self._p_times = np.zeros(0, dtype=np.int64)
        self._p_reps = np.zeros(0, dtype=np.int16)
        self._p_vics = np.zeros(0, dtype=np.int16)
        self._cursor: Optional[int] = None
        self._epoch = tap._clear_epoch

    def _merge_new(self) -> None:
        tap = self._tap
        if tap._clear_epoch != self._epoch:
            raise SimulationError(
                f"tap {tap.name!r} was cleared under an active "
                "window reader; create a new reader after clear()"
            )
        tap._flush_stage()
        chunks = tap._time_chunks
        if len(chunks) == self._chunk_idx:
            return
        times = np.concatenate([self._p_times] + chunks[self._chunk_idx:])
        reps = np.concatenate(
            [self._p_reps] + tap._replacer_chunks[self._chunk_idx:]
        )
        vics = np.concatenate(
            [self._p_vics] + tap._victim_chunks[self._chunk_idx:]
        )
        self._chunk_idx = len(chunks)
        if times.size > 1 and (times[1:] < times[:-1]).any():
            order = np.argsort(times, kind="stable")
            times, reps, vics = times[order], reps[order], vics[order]
        if self._cursor is not None and times.size and times[0] < self._cursor:
            raise SimulationError(
                f"tap {tap.name!r} recorded an event at cycle "
                f"{int(times[0])}, before the reader cursor at "
                f"{self._cursor} — windows already read would be wrong"
            )
        self._p_times, self._p_reps, self._p_vics = times, reps, vics

    def read(
        self, t0: int, t1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Records within ``[t0, t1)``, time-sorted; advances the cursor."""
        if t1 < t0:
            raise SimulationError(f"window end {t1} precedes start {t0}")
        if self._cursor is not None and t0 < self._cursor:
            raise SimulationError(
                f"window readers advance monotonically: [{t0}, {t1}) "
                f"starts before the cursor at {self._cursor}"
            )
        self._merge_new()
        times, reps, vics = self._p_times, self._p_reps, self._p_vics
        hi = int(np.searchsorted(times, t1, side="left"))
        self._p_times = times[hi:]
        self._p_reps = reps[hi:]
        self._p_vics = vics[hi:]
        self._cursor = int(t1)
        lo = int(np.searchsorted(times[:hi], t0, side="left"))
        return times[lo:hi], reps[lo:hi], vics[lo:hi]
