"""Shared set-associative L2 cache with conflict-miss detection.

The cache covert channel (Xu et al.) works by trojan and spy alternately
evicting each other's blocks in pre-agreed groups of sets; the observable
CC-Hunter keys on is the resulting train of *conflict misses* labeled with
(replacer context, victim context). This model keeps true per-set LRU
order and per-block owner-context metadata, classifies conflict misses
through a pluggable tracker (ideal LRU stack or the paper's practical
generation/bloom design), and reports labeled conflict events to the tap.

Private L1s are modeled implicitly: operations issued here are the
accesses that reach L2 (covert-channel and noise working sets are sized to
defeat the 32 KB L1s, as in the paper's attack implementations).

Batched hot path: ``access_series`` and ``random_traffic`` are the
simulator's dominant cost, so by default they run through a vectorized
kernel — block keys, latency jitter, per-access times, and conflict-event
recording are computed in numpy over the whole series, and only the
state-dependent LRU/replacement/tracker walk remains a (tight,
locals-bound) Python loop. The per-access :meth:`SharedCache.access`
adapter and ``SharedCache(vectorized=False)`` keep the legacy per-event
path, which the parity suite proves bit-identical (events, latencies,
counters, RNG/jitter stepping). When ``access`` has been monkey-patched
(e.g. way-partition mitigation wraps it), the batch entry points
automatically fall back to the legacy loop so the wrapper stays in
charge.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.hardware.conflict_tracker import (
    ConflictMissTracker,
    GenerationConflictTracker,
)
from repro.sim.events import LabeledEventTap

#: Block keys pack (set index, tag) into one integer for dict/bloom speed.
_TAG_SHIFT = 20
_MAX_SET = 1 << _TAG_SHIFT


def block_key(set_index: int, tag: int) -> int:
    """Stable integer key for a cache block (set, tag) pair."""
    return (int(tag) << _TAG_SHIFT) | int(set_index)


class SharedCache:
    """Set-associative, true-LRU shared cache with labeled conflict events."""

    def __init__(
        self,
        config: CacheConfig,
        tracker: ConflictMissTracker,
        miss_tap: LabeledEventTap,
        rng: np.random.Generator,
        latency_jitter: int = 3,
        vectorized: bool = True,
    ):
        if config.n_sets > _MAX_SET:
            raise SimulationError(
                f"cache has {config.n_sets} sets; block keys support {_MAX_SET}"
            )
        self.config = config
        self.tracker = tracker
        self.miss_tap = miss_tap
        self._rng = rng
        self.latency_jitter = latency_jitter
        #: Batch-kernel switch; ``False`` forces the legacy per-access loop
        #: (the parity suite's reference path).
        self.vectorized = vectorized
        # Per-access jitter comes from a pre-drawn pool (drawing one numpy
        # random per access dominates the hot path otherwise).
        if latency_jitter:
            self._jitter_pool_np = rng.integers(
                -latency_jitter, latency_jitter + 1, size=65_536
            )
            self._jitter_pool = self._jitter_pool_np.tolist()
        else:
            self._jitter_pool_np = np.zeros(1, dtype=np.int64)
            self._jitter_pool = [0]
        self._jitter_idx = 0
        # Per-set LRU order: OrderedDict maps tag -> owner ctx, MRU at end.
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.conflict_misses = 0

    # ---------------------------------------------------------------- access

    def access(self, ctx: int, set_index: int, tag: int, time: int) -> Tuple[int, bool]:
        """One L2 access. Returns ``(latency, hit)``.

        On a miss, the incoming tag is checked against the conflict tracker
        *before* insertion; if it was recently prematurely evicted and the
        fill replaces a victim, a conflict-miss event labeled
        ``(replacer=ctx, victim=victim owner)`` is recorded, mirroring what
        the CC-auditor's vector registers capture.
        """
        if not 0 <= set_index < self.config.n_sets:
            raise SimulationError(
                f"set index {set_index} outside 0..{self.config.n_sets - 1}"
            )
        cache_set = self._sets[set_index]
        key = block_key(set_index, tag)
        was_hit = tag in cache_set
        if was_hit:
            cache_set.move_to_end(tag)
            cache_set[tag] = ctx
            self.tracker.on_access(key)
            self.hits += 1
            latency = self.config.hit_latency
        else:
            self.misses += 1
            is_conflict = self.tracker.check_recent_eviction(key)
            victim_owner: Optional[int] = None
            if len(cache_set) >= self.config.associativity:
                victim_tag, victim_owner = cache_set.popitem(last=False)
                self.tracker.on_replacement(block_key(set_index, victim_tag))
            cache_set[tag] = ctx
            self.tracker.on_access(key)
            if is_conflict and victim_owner is not None:
                self.conflict_misses += 1
                self.miss_tap.record(time, ctx, victim_owner)
            latency = self.config.miss_latency
        if self.latency_jitter:
            pool = self._jitter_pool
            self._jitter_idx = (self._jitter_idx + 1) % len(pool)
            latency += pool[self._jitter_idx]
        return latency, was_hit

    def _use_batch_kernel(self) -> bool:
        """Batch kernels apply unless disabled or ``access`` is wrapped.

        Mitigations (way partitioning) install an instance-level
        ``access`` override; the batch kernel would silently bypass it,
        so its presence forces the legacy per-access loop.
        """
        return self.vectorized and "access" not in self.__dict__

    def _run_keyed_accesses(self, ctx, sets_list, tags_list, keys_list):
        """The state-dependent core: per-set LRU plus conflict tracking.

        Pure-function work (keys, jitter, latencies, timestamps) is done
        vectorized by the callers; this loop touches only the mutable
        state. Returns ``(miss_positions, conflict_positions,
        conflict_victims)`` where positions index into the series. The
        stock generation tracker gets a fused loop with its state
        transitions inlined and its bloom traffic deferred into batch
        kernels; any other tracker goes through per-key calls.
        """
        if type(self.tracker) is GenerationConflictTracker:
            return self._run_keyed_accesses_fused(
                ctx, sets_list, tags_list, keys_list
            )
        return self._run_keyed_accesses_generic(
            ctx, sets_list, tags_list, keys_list
        )

    def _run_keyed_accesses_fused(self, ctx, sets_list, tags_list, keys_list):
        """Generation-tracker specialization of :meth:`_run_keyed_accesses`.

        Two ideas on top of the generic loop. First, the tracker's
        ``on_access`` transition (generation bits, membership, advance
        trigger) is inlined against its containers, eliminating a call
        per key. Second, all bloom traffic leaves the loop: eviction
        checks are read-only and inserts only set bits, so the loop
        merely *logs* which key was checked / inserted / flash-cleared
        at which position, and afterwards
        :meth:`GenerationConflictTracker.replay_check_batch` resolves
        every check as-of-its-position in one vectorized pass and
        ``add_batch`` applies the inserts that survive the series'
        clears. The observable outcome per access is exactly the scalar
        :meth:`access` order: hit → LRU touch, access-bit; miss →
        eviction check, replacement insert, fill, access-bit.
        """
        sets_ = self._sets
        assoc = self.config.associativity
        tracker = self.tracker
        gen_bits = tracker._gen_bits
        gb_get = gen_bits.get
        members = tracker._members
        blooms = tracker._blooms
        threshold = tracker.threshold
        generations = tracker.generations
        advance = tracker._advance_generation
        # Bloom words at series start, for the deferred check replay
        # (a handful of packed words per generation).
        snapshot = [list(bloom._words) for bloom in blooms]
        ins_pos: List[List[int]] = [[] for _ in range(generations)]
        ins_keys: List[List[int]] = [[] for _ in range(generations)]
        clears: List[Tuple[int, int]] = []
        cand_pos: List[int] = []
        cand_keys: List[int] = []
        cand_vic: List[int] = []
        miss_pos: List[int] = []
        miss_append = miss_pos.append
        cur = tracker._current
        bit = 1 << cur
        member_add = members[cur].add
        count = tracker._accessed_in_current
        shift = _TAG_SHIFT
        n = len(sets_list)
        # Two loop bodies with identical semantics: the hit-heavy one
        # folds the membership test into ``move_to_end`` (two dict ops
        # per hit, an exception per miss), the miss-heavy one tests
        # membership up front (exceptions cost ~0.2us each, which an
        # all-miss sweep would pay on every access). A residency sample
        # of the series' first accesses — deterministic, it reads only
        # cache state — picks the body; a mispredict is slower, never
        # wrong. The bodies must stay textually in sync apart from that
        # hit test (the parity suite exercises both).
        sample = min(16, n)
        resident = 0
        for j in range(sample):
            if tags_list[j] in sets_[sets_list[j]]:
                resident += 1
        if resident * 4 >= sample * 3:
            for i, s, tag, key in zip(
                range(n), sets_list, tags_list, keys_list
            ):
                cache_set = sets_[s]
                try:
                    cache_set.move_to_end(tag)
                    cache_set[tag] = ctx
                except KeyError:
                    miss_append(i)
                    if len(cache_set) >= assoc:
                        victim_tag, victim_owner = cache_set.popitem(False)
                        vkey = (victim_tag << shift) | s
                        # on_replacement: log the victim against its
                        # latest generation (skip if its bits aged out).
                        vmask = gb_get(vkey, 0)
                        if vmask:
                            for back in range(generations):
                                g = (cur - back) % generations
                                if vmask & (1 << g):
                                    break
                            ins_pos[g].append(i)
                            ins_keys[g].append(vkey)
                            del gen_bits[vkey]
                        cache_set[tag] = ctx
                        cand_pos.append(i)
                        cand_keys.append(key)
                        cand_vic.append(victim_owner)
                    else:
                        cache_set[tag] = ctx
                # on_access: set the current generation's bit.
                mask = gb_get(key, 0)
                if mask & bit:
                    continue
                gen_bits[key] = mask | bit
                member_add(key)
                count += 1
                if count >= threshold:
                    tracker._accessed_in_current = count
                    clears.append((i, (cur + 1) % generations))
                    advance()
                    cur = tracker._current
                    bit = 1 << cur
                    member_add = members[cur].add
                    count = 0
        else:
            for i, s, tag, key in zip(
                range(n), sets_list, tags_list, keys_list
            ):
                cache_set = sets_[s]
                if tag in cache_set:
                    cache_set.move_to_end(tag)
                    cache_set[tag] = ctx
                else:
                    miss_append(i)
                    if len(cache_set) >= assoc:
                        victim_tag, victim_owner = cache_set.popitem(False)
                        vkey = (victim_tag << shift) | s
                        # on_replacement: log the victim against its
                        # latest generation (skip if its bits aged out).
                        vmask = gb_get(vkey, 0)
                        if vmask:
                            for back in range(generations):
                                g = (cur - back) % generations
                                if vmask & (1 << g):
                                    break
                            ins_pos[g].append(i)
                            ins_keys[g].append(vkey)
                            del gen_bits[vkey]
                        cache_set[tag] = ctx
                        cand_pos.append(i)
                        cand_keys.append(key)
                        cand_vic.append(victim_owner)
                    else:
                        cache_set[tag] = ctx
                # on_access: set the current generation's bit.
                mask = gb_get(key, 0)
                if mask & bit:
                    continue
                gen_bits[key] = mask | bit
                member_add(key)
                count += 1
                if count >= threshold:
                    tracker._accessed_in_current = count
                    clears.append((i, (cur + 1) % generations))
                    advance()
                    cur = tracker._current
                    bit = 1 << cur
                    member_add = members[cur].add
                    count = 0
        tracker._accessed_in_current = count
        verdict = tracker.replay_check_batch(
            len(sets_list), cand_pos, cand_keys, ins_pos, ins_keys,
            clears, snapshot,
        )
        conf_pos = np.asarray(cand_pos, dtype=np.int64)[verdict]
        conf_vic = np.asarray(cand_vic, dtype=np.int64)[verdict]
        # Apply the logged inserts: anything inserted at or before a
        # generation's last flash-clear was wiped and never reaches the
        # post-series filter state.
        for g in range(generations):
            g_ins_pos = ins_pos[g]
            if not g_ins_pos:
                continue
            last_clear = -1
            for c, gg in clears:
                if gg == g:
                    last_clear = c
            keys_keep = ins_keys[g]
            if last_clear >= 0:
                keys_keep = [
                    k for j, k in zip(g_ins_pos, keys_keep) if j > last_clear
                ]
            if keys_keep:
                blooms[g].add_batch(keys_keep)
        return miss_pos, conf_pos, conf_vic

    def _run_keyed_accesses_generic(self, ctx, sets_list, tags_list, keys_list):
        sets_ = self._sets
        assoc = self.config.associativity
        tracker = self.tracker
        series_ops = getattr(tracker, "series_ops", None)
        if series_ops is not None:
            tr_access, tr_replace, tr_check = series_ops()
        else:
            tr_access = tracker.on_access
            tr_replace = tracker.on_replacement
            tr_check = tracker.check_recent_eviction
        miss_pos: List[int] = []
        miss_append = miss_pos.append
        conf_pos: List[int] = []
        conf_vic: List[int] = []
        shift = _TAG_SHIFT
        for i, s, tag, key in zip(
            range(len(sets_list)), sets_list, tags_list, keys_list
        ):
            cache_set = sets_[s]
            if tag in cache_set:
                cache_set.move_to_end(tag)
                cache_set[tag] = ctx
                tr_access(key)
            else:
                miss_append(i)
                is_conflict = tr_check(key)
                if len(cache_set) >= assoc:
                    victim_tag, victim_owner = cache_set.popitem(False)
                    tr_replace((victim_tag << shift) | s)
                    cache_set[tag] = ctx
                    tr_access(key)
                    if is_conflict:
                        conf_pos.append(i)
                        conf_vic.append(victim_owner)
                else:
                    cache_set[tag] = ctx
                    tr_access(key)
        return miss_pos, conf_pos, conf_vic

    def _consume_jitter(self, n: int) -> np.ndarray:
        """The next ``n`` pool values, exactly as ``access`` would step them.

        ``access`` pre-increments, so the slice starts one past the
        current index; the index afterwards equals ``n`` legacy steps.
        """
        pool = self._jitter_pool_np
        size = pool.size
        idx = self._jitter_idx
        positions = (idx + 1 + np.arange(n, dtype=np.int64)) % size
        self._jitter_idx = (idx + n) % size
        return pool[positions]

    def _record_conflicts(self, times, conf_pos, conf_vic, ctx) -> None:
        """One columnar tap append for a whole series of conflict events."""
        self.conflict_misses += len(conf_pos)
        self.miss_tap.record_batch(
            times[conf_pos],
            np.full(len(conf_pos), ctx, dtype=np.int16),
            np.asarray(conf_vic, dtype=np.int16),
        )

    def access_series(
        self,
        ctx: int,
        accesses: Sequence[Tuple[int, int]],
        gap: int,
        start: int,
    ) -> Tuple[int, np.ndarray]:
        """Issue accesses back-to-back; returns ``(end_time, latencies)``."""
        if not self._use_batch_kernel():
            return self._access_series_legacy(ctx, accesses, gap, start)
        n = len(accesses)
        if n == 0:
            return int(start), np.empty(0, dtype=np.int64)
        pairs = np.asarray(accesses, dtype=np.int64)
        sets_arr = pairs[:, 0]
        tags_arr = pairs[:, 1]
        lo, hi = int(sets_arr.min()), int(sets_arr.max())
        if lo < 0 or hi >= self.config.n_sets:
            bad = lo if lo < 0 else hi
            raise SimulationError(
                f"set index {bad} outside 0..{self.config.n_sets - 1}"
            )
        keys_arr = (tags_arr << _TAG_SHIFT) | sets_arr
        miss_pos, conf_pos, conf_vic = self._run_keyed_accesses(
            ctx, sets_arr.tolist(), tags_arr.tolist(), keys_arr.tolist()
        )
        n_miss = len(miss_pos)
        self.hits += n - n_miss
        self.misses += n_miss
        latencies = np.full(n, self.config.hit_latency, dtype=np.int64)
        if n_miss:
            latencies[np.asarray(miss_pos, dtype=np.int64)] = (
                self.config.miss_latency
            )
        if self.latency_jitter:
            latencies += self._consume_jitter(n)
        steps = latencies + gap
        ends = start + np.cumsum(steps)
        if len(conf_pos):
            self._record_conflicts(ends - steps, conf_pos, conf_vic, ctx)
        return int(ends[-1]), latencies

    def _access_series_legacy(
        self,
        ctx: int,
        accesses: Sequence[Tuple[int, int]],
        gap: int,
        start: int,
    ) -> Tuple[int, np.ndarray]:
        """Reference path: one :meth:`access` call per element."""
        if isinstance(accesses, np.ndarray):
            accesses = accesses.tolist()
        t = int(start)
        latencies = np.empty(len(accesses), dtype=np.int64)
        for i, (set_index, tag) in enumerate(accesses):
            latency, _hit = self.access(ctx, set_index, tag, t)
            latencies[i] = latency
            t += latency + gap
        return t, latencies

    def random_traffic(
        self,
        ctx: int,
        start: int,
        duration: int,
        count: int,
        set_lo: int = 0,
        set_hi: Optional[int] = None,
        tag_space: int = 64,
    ) -> int:
        """Benign traffic: ``count`` accesses at uniform random times.

        Each access picks a uniform set in ``[set_lo, set_hi)`` and one of
        ``tag_space`` per-context tags; re-use within the tag space produces
        the background conflict misses that perturb covert trains.
        """
        if count <= 0:
            return start + duration
        hi = self.config.n_sets if set_hi is None else set_hi
        if not 0 <= set_lo < hi <= self.config.n_sets:
            raise SimulationError(f"bad noise set range [{set_lo}, {hi})")
        times = np.sort(self._rng.integers(0, duration, size=count)) + start
        sets = self._rng.integers(set_lo, hi, size=count)
        # Tag namespace disjoint per context so noise cannot alias covert tags.
        tags = self._rng.integers(0, tag_space, size=count) + (ctx + 1) * 1_000_000
        if not self._use_batch_kernel():
            for t, s, tag in zip(times, sets, tags):
                self.access(ctx, int(s), int(tag), int(t))
            return start + duration
        keys = (tags << _TAG_SHIFT) | sets
        miss_pos, conf_pos, conf_vic = self._run_keyed_accesses(
            ctx, sets.tolist(), tags.tolist(), keys.tolist()
        )
        n_miss = len(miss_pos)
        self.hits += count - n_miss
        self.misses += n_miss
        if self.latency_jitter:
            # Latencies are discarded by noise traffic, but the pool index
            # must step exactly as the legacy per-access loop steps it.
            self._jitter_idx = (
                self._jitter_idx + count
            ) % self._jitter_pool_np.size
        if len(conf_pos):
            self._record_conflicts(
                np.asarray(times, dtype=np.int64), conf_pos, conf_vic, ctx
            )
        return start + duration

    # ------------------------------------------------------------- inspection

    def owner_of(self, set_index: int, tag: int) -> Optional[int]:
        """Owner context of a resident block, or None if not cached."""
        return self._sets[set_index].get(tag)

    def resident_tags(self, set_index: int) -> Tuple[int, ...]:
        """Tags currently resident in a set, LRU to MRU order."""
        return tuple(self._sets[set_index].keys())

    @property
    def occupancy(self) -> int:
        """Total resident blocks."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Empty the cache (tracker state is left to the caller)."""
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.misses = 0
        self.conflict_misses = 0
