"""Shared set-associative L2 cache with conflict-miss detection.

The cache covert channel (Xu et al.) works by trojan and spy alternately
evicting each other's blocks in pre-agreed groups of sets; the observable
CC-Hunter keys on is the resulting train of *conflict misses* labeled with
(replacer context, victim context). This model keeps true per-set LRU
order and per-block owner-context metadata, classifies conflict misses
through a pluggable tracker (ideal LRU stack or the paper's practical
generation/bloom design), and reports labeled conflict events to the tap.

Private L1s are modeled implicitly: operations issued here are the
accesses that reach L2 (covert-channel and noise working sets are sized to
defeat the 32 KB L1s, as in the paper's attack implementations).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.hardware.conflict_tracker import ConflictMissTracker
from repro.sim.events import LabeledEventTap

#: Block keys pack (set index, tag) into one integer for dict/bloom speed.
_TAG_SHIFT = 20
_MAX_SET = 1 << _TAG_SHIFT


def block_key(set_index: int, tag: int) -> int:
    """Stable integer key for a cache block (set, tag) pair."""
    return (int(tag) << _TAG_SHIFT) | int(set_index)


class SharedCache:
    """Set-associative, true-LRU shared cache with labeled conflict events."""

    def __init__(
        self,
        config: CacheConfig,
        tracker: ConflictMissTracker,
        miss_tap: LabeledEventTap,
        rng: np.random.Generator,
        latency_jitter: int = 3,
    ):
        if config.n_sets > _MAX_SET:
            raise SimulationError(
                f"cache has {config.n_sets} sets; block keys support {_MAX_SET}"
            )
        self.config = config
        self.tracker = tracker
        self.miss_tap = miss_tap
        self._rng = rng
        self.latency_jitter = latency_jitter
        # Per-access jitter comes from a pre-drawn pool (drawing one numpy
        # random per access dominates the hot path otherwise).
        if latency_jitter:
            self._jitter_pool = rng.integers(
                -latency_jitter, latency_jitter + 1, size=65_536
            ).tolist()
        else:
            self._jitter_pool = [0]
        self._jitter_idx = 0
        # Per-set LRU order: OrderedDict maps tag -> owner ctx, MRU at end.
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.conflict_misses = 0

    # ---------------------------------------------------------------- access

    def access(self, ctx: int, set_index: int, tag: int, time: int) -> Tuple[int, bool]:
        """One L2 access. Returns ``(latency, hit)``.

        On a miss, the incoming tag is checked against the conflict tracker
        *before* insertion; if it was recently prematurely evicted and the
        fill replaces a victim, a conflict-miss event labeled
        ``(replacer=ctx, victim=victim owner)`` is recorded, mirroring what
        the CC-auditor's vector registers capture.
        """
        if not 0 <= set_index < self.config.n_sets:
            raise SimulationError(
                f"set index {set_index} outside 0..{self.config.n_sets - 1}"
            )
        cache_set = self._sets[set_index]
        key = block_key(set_index, tag)
        was_hit = tag in cache_set
        if was_hit:
            cache_set.move_to_end(tag)
            cache_set[tag] = ctx
            self.tracker.on_access(key)
            self.hits += 1
            latency = self.config.hit_latency
        else:
            self.misses += 1
            is_conflict = self.tracker.check_recent_eviction(key)
            victim_owner: Optional[int] = None
            if len(cache_set) >= self.config.associativity:
                victim_tag, victim_owner = cache_set.popitem(last=False)
                self.tracker.on_replacement(block_key(set_index, victim_tag))
            cache_set[tag] = ctx
            self.tracker.on_access(key)
            if is_conflict and victim_owner is not None:
                self.conflict_misses += 1
                self.miss_tap.record(time, ctx, victim_owner)
            latency = self.config.miss_latency
        if self.latency_jitter:
            pool = self._jitter_pool
            self._jitter_idx = (self._jitter_idx + 1) % len(pool)
            latency += pool[self._jitter_idx]
        return latency, was_hit

    def access_series(
        self,
        ctx: int,
        accesses: Sequence[Tuple[int, int]],
        gap: int,
        start: int,
    ) -> Tuple[int, np.ndarray]:
        """Issue accesses back-to-back; returns ``(end_time, latencies)``."""
        t = int(start)
        latencies = np.empty(len(accesses), dtype=np.int64)
        for i, (set_index, tag) in enumerate(accesses):
            latency, _hit = self.access(ctx, set_index, tag, t)
            latencies[i] = latency
            t += latency + gap
        return t, latencies

    def random_traffic(
        self,
        ctx: int,
        start: int,
        duration: int,
        count: int,
        set_lo: int = 0,
        set_hi: Optional[int] = None,
        tag_space: int = 64,
    ) -> int:
        """Benign traffic: ``count`` accesses at uniform random times.

        Each access picks a uniform set in ``[set_lo, set_hi)`` and one of
        ``tag_space`` per-context tags; re-use within the tag space produces
        the background conflict misses that perturb covert trains.
        """
        if count <= 0:
            return start + duration
        hi = self.config.n_sets if set_hi is None else set_hi
        if not 0 <= set_lo < hi <= self.config.n_sets:
            raise SimulationError(f"bad noise set range [{set_lo}, {hi})")
        times = np.sort(self._rng.integers(0, duration, size=count)) + start
        sets = self._rng.integers(set_lo, hi, size=count)
        # Tag namespace disjoint per context so noise cannot alias covert tags.
        tags = self._rng.integers(0, tag_space, size=count) + (ctx + 1) * 1_000_000
        for t, s, tag in zip(times, sets, tags):
            self.access(ctx, int(s), int(tag), int(t))
        return start + duration

    # ------------------------------------------------------------- inspection

    def owner_of(self, set_index: int, tag: int) -> Optional[int]:
        """Owner context of a resident block, or None if not cached."""
        return self._sets[set_index].get(tag)

    def resident_tags(self, set_index: int) -> Tuple[int, ...]:
        """Tags currently resident in a set, LRU to MRU order."""
        return tuple(self._sets[set_index].keys())

    @property
    def occupancy(self) -> int:
        """Total resident blocks."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Empty the cache (tracker state is left to the caller)."""
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.misses = 0
        self.conflict_misses = 0
