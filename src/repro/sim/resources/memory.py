"""Main-memory (DRAM) latency model.

The bus model fronts DRAM; this class supplies the base access latency and
row-buffer-style jitter. Kept separate from the bus so experiments can
tune memory timing without touching lock emulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class MainMemory:
    """Constant-service-time DRAM with bounded uniform jitter."""

    def __init__(self, access_latency: int = 160, jitter: int = 12):
        if access_latency <= 0:
            raise ConfigError("memory access latency must be positive")
        if jitter < 0 or jitter >= access_latency:
            raise ConfigError("memory jitter must be in [0, access latency)")
        self.access_latency = access_latency
        self.jitter = jitter

    def latencies(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Latency samples for ``count`` independent accesses."""
        base = np.full(count, self.access_latency, dtype=np.int64)
        if self.jitter:
            base += rng.integers(-self.jitter, self.jitter + 1, size=count)
        return base
