"""Per-core integer divider shared by SMT hyperthreads.

The divider covert channel transmits a '1' by saturating the core's
division units so that the sibling hyperthread's divisions *wait on a busy
divider* — the indicator event CC-Hunter monitors ("the number of times a
division instruction from one process waits on a busy divider occupied by
an instruction from another process").

Usage model
-----------
Each context's divider activity is a sequence of non-overlapping
*usage intervals* carrying an **intensity** — the fraction of division
issue slots the context occupies:

- the trojan's saturation loop and the spy's timing loop issue divisions
  back-to-back: intensity 1.0;
- benign division-heavy phases (bzip2, h264ref) intersperse divisions with
  other work: intensity well below 1.

Wait events only arise where two different contexts' usage overlaps, at a
rate proportional to the product of their intensities (both must present a
division at the same time for one to wait). A saturating trojan against a
looping spy yields the paper's burst density (~96 wait events per
500-cycle Δt window); two benign programs overlap at a few events per
window — the random low-density conflicts of the false-alarm study.

Every overlap is reported once — when the chronologically later interval
is registered — as a rate segment in the wait-event tap. All bookkeeping
is vectorized: per-context interval arrays are append-only and
time-sorted (each context's operations execute in virtual-time order), so
overlap detection is a pair of binary searches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DividerConfig
from repro.errors import SimulationError
from repro.sim.events import RateSegmentTap

#: Usage at or above this intensity inflates the sibling's division latency.
CONTENTION_INTENSITY = 0.5


class _UsageTrack:
    """Append-only, time-sorted usage intervals of one context."""

    __slots__ = ("starts", "ends", "intensities", "_arrays")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.intensities: List[float] = []
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def append_batch(
        self, starts: np.ndarray, ends: np.ndarray, intensities: np.ndarray
    ) -> None:
        if len(starts) == 0:
            return
        if self.starts and starts[0] < self.ends[-1]:
            raise SimulationError(
                "context usage intervals must be registered in time order"
            )
        self.starts.extend(int(s) for s in starts)
        self.ends.extend(int(e) for e in ends)
        self.intensities.extend(float(i) for i in intensities)
        self._arrays = None

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (
                np.asarray(self.starts, dtype=np.int64),
                np.asarray(self.ends, dtype=np.int64),
                np.asarray(self.intensities, dtype=np.float64),
            )
        return self._arrays

    def __len__(self) -> int:
        return len(self.starts)


class DividerUnit:
    """One core's division unit: usage intervals, waits, timed loops."""

    def __init__(
        self,
        core_id: int,
        config: DividerConfig,
        wait_tap: RateSegmentTap,
        rng: np.random.Generator,
    ):
        self.core_id = core_id
        self.config = config
        self.wait_tap = wait_tap
        self._rng = rng
        self._usage: Dict[int, _UsageTrack] = {}

    # ----------------------------------------------------------------- usage

    def _register(
        self,
        ctx: int,
        starts: np.ndarray,
        ends: np.ndarray,
        intensities: np.ndarray,
    ) -> None:
        """Register usage and emit wait segments for cross-context overlaps."""
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        intensities = np.asarray(intensities, dtype=np.float64)
        base_rate = 1.0 / self.config.contention_event_period
        for other, track in self._usage.items():
            if other == ctx or len(track) == 0:
                continue
            o_starts, o_ends, o_int = track.arrays()
            lo = np.searchsorted(o_ends, starts, side="right")
            hi = np.searchsorted(o_starts, ends, side="left")
            mask = hi > lo
            if not mask.any():
                continue
            new_idx = np.concatenate(
                [np.full(h - l, i) for i, (l, h) in enumerate(zip(lo, hi))
                 if h > l]
            )
            other_idx = np.concatenate(
                [np.arange(l, h) for l, h in zip(lo, hi) if h > l]
            )
            seg_starts = np.maximum(starts[new_idx], o_starts[other_idx])
            seg_ends = np.minimum(ends[new_idx], o_ends[other_idx])
            rates = base_rate * intensities[new_idx] * o_int[other_idx]
            keep = seg_ends > seg_starts
            self.wait_tap.record_segments_batch(
                seg_starts[keep], seg_ends[keep], rates[keep]
            )
        self._usage.setdefault(ctx, _UsageTrack()).append_batch(
            starts, ends, intensities
        )

    def saturate(self, ctx: int, start: int, duration: int) -> int:
        """Occupy the divider continuously for ``duration`` cycles.

        This is the trojan's '1' action: a loop of back-to-back division
        instructions keeping every division unit busy (intensity 1.0).
        """
        if duration <= 0:
            raise SimulationError("saturation duration must be positive")
        self._register(
            ctx,
            np.array([start]),
            np.array([start + duration]),
            np.array([1.0]),
        )
        return start + duration

    def random_use(
        self,
        ctx: int,
        start: int,
        duration: int,
        duty: float,
        burst_cycles: int,
        intensity: float = 0.25,
    ) -> int:
        """Benign random divider activity: bursts at ``duty`` utilization.

        Models division-heavy benign phases (bzip2, h264ref): during a
        burst the program divides at ``intensity`` of the issue rate;
        overlap with a sibling produces random, low-density wait events.
        """
        if not 0.0 <= duty <= 1.0:
            raise SimulationError(f"duty must be in [0, 1], got {duty}")
        if not 0.0 < intensity <= 1.0:
            raise SimulationError(f"intensity must be in (0, 1], got {intensity}")
        n_bursts = int(round(duty * duration / burst_cycles))
        if n_bursts <= 0:
            return start + duration
        # Disjoint random bursts: pick offsets on a stride grid so bursts
        # cannot overlap each other, then jitter is implicit in selection.
        stride = max(burst_cycles, duration // n_bursts)
        slot_count = max(1, duration // stride)
        n_bursts = min(n_bursts, slot_count)
        slots = self._rng.choice(slot_count, size=n_bursts, replace=False)
        slots.sort()
        starts = start + slots.astype(np.int64) * stride
        ends = np.minimum(starts + burst_cycles, start + duration)
        self._register(
            ctx, starts, ends, np.full(n_bursts, float(intensity))
        )
        return start + duration

    # ----------------------------------------------------------------- loops

    def iteration_latency(self, divs_per_iter: int, contended: bool) -> int:
        """Deterministic latency of one loop iteration."""
        per_div = self.config.latency
        if contended:
            per_div += self.config.contended_extra_latency
        return self.config.loop_overhead + divs_per_iter * per_div

    def _contending_intervals(
        self, ctx: int, window_start: int, window_end: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Other-context intervals of contention-grade intensity in a window."""
        pieces_s, pieces_e = [], []
        for other, track in self._usage.items():
            if other == ctx or len(track) == 0:
                continue
            o_starts, o_ends, o_int = track.arrays()
            lo = int(np.searchsorted(o_ends, window_start, side="right"))
            hi = int(np.searchsorted(o_starts, window_end, side="left"))
            if hi <= lo:
                continue
            sel = o_int[lo:hi] >= CONTENTION_INTENSITY
            pieces_s.append(o_starts[lo:hi][sel])
            pieces_e.append(o_ends[lo:hi][sel])
        if not pieces_s:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        starts = np.concatenate(pieces_s)
        ends = np.concatenate(pieces_e)
        order = np.argsort(starts)
        return starts[order], ends[order]

    def run_loop(
        self, ctx: int, start: int, iterations: int, divs_per_iter: int
    ) -> Tuple[int, np.ndarray]:
        """Run a timed division loop; returns ``(end_time, latencies)``.

        The loop walks the timeline segment by segment: within a stretch
        where the sibling's contention state is constant, every iteration
        has the same deterministic latency, so whole stretches are emitted
        at once. Measurement jitter is added to the *returned* latencies
        only (the spy's clock readings), not to the time evolution.
        """
        if iterations <= 0 or divs_per_iter <= 0:
            raise SimulationError("division loop needs positive sizes")
        lat_idle = self.iteration_latency(divs_per_iter, contended=False)
        lat_contended = self.iteration_latency(divs_per_iter, contended=True)
        horizon = start + iterations * lat_contended
        c_starts, c_ends = self._contending_intervals(ctx, start, horizon)
        boundaries = np.sort(np.concatenate([c_starts, c_ends]))

        t = start
        remaining = iterations
        pieces: List[np.ndarray] = []
        while remaining > 0:
            inside = np.searchsorted(c_starts, t, side="right")
            contended = inside > 0 and t < c_ends[:inside].max(initial=-1)
            latency = lat_contended if contended else lat_idle
            nxt = np.searchsorted(boundaries, t, side="right")
            if nxt >= boundaries.size:
                n_fit = remaining
            else:
                gap = int(boundaries[nxt]) - t
                n_fit = max(1, min(remaining, -(-gap // latency)))
            pieces.append(np.full(n_fit, latency, dtype=np.int64))
            t += n_fit * latency
            remaining -= n_fit
        latencies = np.concatenate(pieces)
        self._register(
            ctx, np.array([start]), np.array([t]), np.array([1.0])
        )
        observed = latencies + self._rng.integers(-3, 4, size=latencies.size)
        return t, observed
