"""Shared memory bus / QPI with bus-lock emulation.

The memory-bus covert channel relies on the fact that an atomic memory
access spanning two cache lines locks the bus (and QPI-era parts still
emulate that lock), putting it into a *contended* state every other
context observes as inflated access latency. This model tracks bus-lock
windows, reports each lock operation to the indicator-event tap, and
serves timed accesses whose latency reflects the lock state.

Locks are committed when the locking operation is issued, covering the
whole burst (producers-first contract, see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import BusConfig
from repro.errors import SimulationError
from repro.sim.events import EventTap


class MemoryBus:
    """The shared bus: lock windows, lock indicator events, timed sampling."""

    def __init__(
        self,
        config: BusConfig,
        lock_tap: EventTap,
        rng: np.random.Generator,
    ):
        self.config = config
        self.lock_tap = lock_tap
        self._rng = rng
        self._lock_start_chunks: List[np.ndarray] = []
        #: Symbolically staged lock bursts: start times sharing one
        #: (count, period) shape, materialized in a single broadcast by
        #: :meth:`_flush_bursts` (mirrors ``EventTap.record_grid``).
        self._burst_starts: List[int] = []
        self._burst_shape: Optional[Tuple[int, int]] = None
        self._sorted_starts: Optional[np.ndarray] = None
        #: Cached ``period * arange(count)`` grids: senders issue the
        #: same burst shape millions of times, so the offset grid is
        #: computed once per (count, period) pair (bounded; see _grid).
        self._grid_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self.total_locks = 0
        self.total_samples = 0

    def _grid(self, count: int, period: int) -> np.ndarray:
        """The (never-mutated) offset grid ``period * arange(count)``."""
        key = (count, period)
        grid = self._grid_cache.get(key)
        if grid is None:
            grid = period * np.arange(count, dtype=np.int64)
            if len(self._grid_cache) < 64:
                self._grid_cache[key] = grid
        return grid

    # ------------------------------------------------------------------ locks

    def _commit_locks(self, times: np.ndarray, ctx: int) -> None:
        """Commit a chunk of lock-issue times (callers pass int64 arrays).

        The chunk is shared, never mutated, between the bus's own lock
        list and the tap — zero-copy on the per-burst hot path.
        """
        if times.size == 0:
            return
        self._lock_start_chunks.append(times)
        self._sorted_starts = None
        self.lock_tap.record_batch(times, ctx)
        self.total_locks += int(times.size)

    def _flush_bursts(self) -> None:
        if not self._burst_starts:
            return
        count, period = self._burst_shape
        base = np.asarray(self._burst_starts, dtype=np.int64)[:, None]
        self._lock_start_chunks.append(
            (base + self._grid(count, period)).ravel()
        )
        self._burst_starts = []
        self._burst_shape = None

    def lock_burst(self, ctx: int, start: int, count: int, period: int) -> int:
        """Issue ``count`` bus-locking atomic accesses every ``period`` cycles.

        Returns the completion time of the burst. Each access holds the bus
        locked for ``config.lock_duration`` cycles from its issue.

        Bursts are the sender hot path: each call stages (start, count,
        period) symbolically in both the bus's own lock list and the
        indicator tap; materialization happens once per read, not once
        per burst.
        """
        if count <= 0 or period <= 0:
            raise SimulationError("lock burst needs positive count and period")
        if self._burst_shape != (count, period):
            self._flush_bursts()
            self._burst_shape = (count, period)
        self._burst_starts.append(int(start))
        self._sorted_starts = None
        self.lock_tap.record_grid(start, count, period, ctx)
        self.total_locks += count
        return int(start + count * period)

    def noise_locks(
        self, ctx: int, start: int, duration: int, rate_per_cycle: float
    ) -> None:
        """Commit Poisson-random benign lock events over ``[start, start+duration)``.

        Benign programs (e.g. legacy atomics in library code) fire bus locks
        at low random rates; these events land in the same tap and are what
        the detector's likelihood-ratio step must reject as noise.
        """
        if rate_per_cycle < 0:
            raise SimulationError("noise lock rate cannot be negative")
        expected = rate_per_cycle * duration
        n = int(self._rng.poisson(expected)) if expected > 0 else 0
        if n == 0:
            return
        times = start + np.sort(self._rng.integers(0, duration, size=n))
        self._commit_locks(times.astype(np.int64), ctx)

    def _lock_starts(self) -> np.ndarray:
        if self._sorted_starts is None:
            self._flush_bursts()
            if self._lock_start_chunks:
                self._sorted_starts = np.sort(
                    np.concatenate(self._lock_start_chunks)
                )
            else:
                self._sorted_starts = np.zeros(0, dtype=np.int64)
        return self._sorted_starts

    def locked_at(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask: is the bus lock-contended at each timestamp?

        Lock windows have fixed width, so a time ``t`` is locked iff some
        lock was issued in ``(t - lock_duration, t]``.
        """
        starts = self._lock_starts()
        ts = np.asarray(times, dtype=np.int64)
        if starts.size == 0:
            return np.zeros(ts.shape, dtype=bool)
        idx = np.searchsorted(starts, ts, side="right") - 1
        prev_start = starts[np.maximum(idx, 0)]
        return (idx >= 0) & (ts - prev_start < self.config.lock_duration)

    # --------------------------------------------------------------- sampling

    def sample(
        self, ctx: int, start: int, count: int, period: int
    ) -> Tuple[int, np.ndarray]:
        """Serve ``count`` timed accesses spaced ``period`` cycles apart.

        Returns ``(end_time, latencies)``. Latency is the base bus+DRAM
        latency, plus the lock penalty while the bus is contended, plus
        bounded uniform jitter. The spy process averages these latencies to
        decode bits; ordinary programs see them as normal variance.
        """
        if count <= 0 or period <= 0:
            raise SimulationError("bus sampling needs positive count and period")
        times = start + self._grid(count, period)
        latencies = np.full(count, self.config.base_latency, dtype=np.int64)
        latencies += self.locked_at(times) * self.config.locked_extra_latency
        if self.config.latency_jitter:
            latencies += self._rng.integers(
                -self.config.latency_jitter,
                self.config.latency_jitter + 1,
                size=count,
            )
        self.total_samples += count
        return int(start + count * period), latencies
