"""Shared memory bus / QPI with bus-lock emulation.

The memory-bus covert channel relies on the fact that an atomic memory
access spanning two cache lines locks the bus (and QPI-era parts still
emulate that lock), putting it into a *contended* state every other
context observes as inflated access latency. This model tracks bus-lock
windows, reports each lock operation to the indicator-event tap, and
serves timed accesses whose latency reflects the lock state.

Locks are committed when the locking operation is issued, covering the
whole burst (producers-first contract, see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.config import BusConfig
from repro.errors import SimulationError
from repro.sim.events import EventTap


class MemoryBus:
    """The shared bus: lock windows, lock indicator events, timed sampling."""

    def __init__(
        self,
        config: BusConfig,
        lock_tap: EventTap,
        rng: np.random.Generator,
    ):
        self.config = config
        self.lock_tap = lock_tap
        self._rng = rng
        self._lock_start_chunks: List[np.ndarray] = []
        self._sorted_starts: Optional[np.ndarray] = None
        self.total_locks = 0
        self.total_samples = 0

    # ------------------------------------------------------------------ locks

    def _commit_locks(self, times: np.ndarray, ctx: int) -> None:
        if times.size == 0:
            return
        self._lock_start_chunks.append(times.astype(np.int64))
        self._sorted_starts = None
        self.lock_tap.record_batch(times, ctx)
        self.total_locks += int(times.size)

    def lock_burst(self, ctx: int, start: int, count: int, period: int) -> int:
        """Issue ``count`` bus-locking atomic accesses every ``period`` cycles.

        Returns the completion time of the burst. Each access holds the bus
        locked for ``config.lock_duration`` cycles from its issue.
        """
        if count <= 0 or period <= 0:
            raise SimulationError("lock burst needs positive count and period")
        times = start + period * np.arange(count, dtype=np.int64)
        self._commit_locks(times, ctx)
        return int(start + count * period)

    def noise_locks(
        self, ctx: int, start: int, duration: int, rate_per_cycle: float
    ) -> None:
        """Commit Poisson-random benign lock events over ``[start, start+duration)``.

        Benign programs (e.g. legacy atomics in library code) fire bus locks
        at low random rates; these events land in the same tap and are what
        the detector's likelihood-ratio step must reject as noise.
        """
        if rate_per_cycle < 0:
            raise SimulationError("noise lock rate cannot be negative")
        expected = rate_per_cycle * duration
        n = int(self._rng.poisson(expected)) if expected > 0 else 0
        if n == 0:
            return
        times = start + np.sort(self._rng.integers(0, duration, size=n))
        self._commit_locks(times.astype(np.int64), ctx)

    def _lock_starts(self) -> np.ndarray:
        if self._sorted_starts is None:
            if self._lock_start_chunks:
                self._sorted_starts = np.sort(
                    np.concatenate(self._lock_start_chunks)
                )
            else:
                self._sorted_starts = np.zeros(0, dtype=np.int64)
        return self._sorted_starts

    def locked_at(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask: is the bus lock-contended at each timestamp?

        Lock windows have fixed width, so a time ``t`` is locked iff some
        lock was issued in ``(t - lock_duration, t]``.
        """
        starts = self._lock_starts()
        ts = np.asarray(times, dtype=np.int64)
        if starts.size == 0:
            return np.zeros(ts.shape, dtype=bool)
        idx = np.searchsorted(starts, ts, side="right") - 1
        prev_start = starts[np.maximum(idx, 0)]
        return (idx >= 0) & (ts - prev_start < self.config.lock_duration)

    # --------------------------------------------------------------- sampling

    def sample(
        self, ctx: int, start: int, count: int, period: int
    ) -> Tuple[int, np.ndarray]:
        """Serve ``count`` timed accesses spaced ``period`` cycles apart.

        Returns ``(end_time, latencies)``. Latency is the base bus+DRAM
        latency, plus the lock penalty while the bus is contended, plus
        bounded uniform jitter. The spy process averages these latencies to
        decode bits; ordinary programs see them as normal variance.
        """
        if count <= 0 or period <= 0:
            raise SimulationError("bus sampling needs positive count and period")
        times = start + period * np.arange(count, dtype=np.int64)
        latencies = np.full(count, self.config.base_latency, dtype=np.int64)
        latencies += self.locked_at(times) * self.config.locked_extra_latency
        if self.config.latency_jitter:
            latencies += self._rng.integers(
                -self.config.latency_jitter,
                self.config.latency_jitter + 1,
                size=count,
            )
        self.total_samples += count
        return int(start + count * period), latencies
