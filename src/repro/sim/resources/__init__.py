"""Shared-hardware resource models (bus, divider, cache, DRAM)."""

from repro.sim.resources.bus import MemoryBus
from repro.sim.resources.cache import SharedCache
from repro.sim.resources.divider import DividerUnit
from repro.sim.resources.memory import MainMemory

__all__ = ["MemoryBus", "SharedCache", "DividerUnit", "MainMemory"]
