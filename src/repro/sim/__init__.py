"""Discrete-event model of the shared-hardware machine.

This package is the substitute for the paper's MARSSx86 full-system
simulator. It models virtual time in CPU cycles and the three shared
resources CC-Hunter audits — the memory bus (with atomic-unaligned lock
emulation), the per-core integer divider shared by SMT hyperthreads, and
the shared set-associative L2 cache — at the granularity the detector
consumes: indicator-event trains with cycle timestamps and context labels.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, Priority
from repro.sim.machine import Machine
from repro.sim.process import (
    BusLockBurst,
    BusSample,
    CacheAccessSeries,
    Compute,
    DividerLoop,
    DividerSaturate,
    Process,
    RandomBusLocks,
    RandomCacheTraffic,
    RandomDividerUse,
    WaitUntil,
)

__all__ = [
    "Clock",
    "Engine",
    "Priority",
    "Machine",
    "Process",
    "Compute",
    "WaitUntil",
    "BusLockBurst",
    "BusSample",
    "DividerSaturate",
    "DividerLoop",
    "CacheAccessSeries",
    "RandomBusLocks",
    "RandomCacheTraffic",
    "RandomDividerUse",
]
