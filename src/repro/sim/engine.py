"""Discrete-event simulation kernel.

A minimal priority-queue engine: callbacks are scheduled at
``(time, priority, sequence)`` and executed in that order. Virtual time is
integer cycles and only moves forward.

Ordering contract (producers before consumers)
----------------------------------------------
Resource models in this package commit *usage* (bus locks, divider
occupancy) at the moment an operation is issued, covering the operation's
whole duration. Observers that sample a window must therefore run *after*
every producer that could affect that window has issued its usage. The
engine guarantees this within a timestamp via priorities
(:class:`Priority`): noise and trojan processes run at ``PRODUCER``, spies
at ``CONSUMER``, and detector/daemon hooks at ``DAEMON``. Channel and
workload implementations keep their operations inside one synchronization
phase (one covert bit period / one OS quantum), which makes the
producers-first order sufficient — exactly the synchronization the paper's
threat model already assumes of trojan/spy pairs.
"""

from __future__ import annotations

import heapq
from enum import IntEnum
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Priority(IntEnum):
    """Execution order among callbacks scheduled at the same cycle."""

    PRODUCER = 0
    CONSUMER = 10
    DAEMON = 100
    QUANTUM_BOUNDARY = 1000


class Engine:
    """A forward-only discrete-event executor over integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_executed = 0

    def schedule(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = Priority.PRODUCER,
    ) -> None:
        """Schedule ``callback`` to run at cycle ``time``.

        Scheduling in the past is an error: resources have already committed
        state for earlier cycles.
        """
        time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; current time is {self.now}"
            )
        heapq.heappush(self._queue, (time, int(priority), self._seq, callback))
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of queued callbacks."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next queued callback, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Run the single next callback. Returns False when queue is empty."""
        if not self._queue:
            return False
        time, _priority, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_executed += 1
        callback()
        return True

    def run_until(self, t_end: int) -> None:
        """Run all callbacks scheduled strictly before cycle ``t_end``.

        Afterwards ``now`` is at least ``t_end`` (time jumps to ``t_end``
        even if the queue drained earlier), so subsequent scheduling can
        assume the window ``[.., t_end)`` is fully settled.
        """
        # Inlined step(): this loop pops tens of thousands of events per
        # quantum, so the per-event method call and duplicate emptiness
        # check are measurable.
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] < t_end:
            time, _priority, _seq, callback = pop(queue)
            self.now = time
            self._events_executed += 1
            callback()
        if self.now < t_end:
            self.now = t_end

    def run(self) -> None:
        """Run until the queue is empty."""
        while self.step():
            pass
