"""Windowed views over indicator-event taps.

Small helpers that slice a machine's taps into per-OS-quantum (or
fractional-quantum) windows — the observation granularity of every figure
in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import Machine


@dataclass(frozen=True)
class Window:
    """A half-open observation window ``[start, end)`` in cycles."""

    index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def quantum_windows(machine: Machine, n_quanta: int, fraction: float = 1.0
                    ) -> List[Window]:
    """Tile the first ``n_quanta`` quanta into windows of ``fraction`` × quantum.

    ``fraction=0.25`` reproduces the paper's finer-grained analysis of
    Figure 11 (observation windows of 0.25× the OS time quantum).
    """
    if n_quanta <= 0:
        raise SimulationError("need at least one quantum")
    if not 0 < fraction <= 1.0:
        raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
    width = max(1, int(round(machine.quantum_cycles * fraction)))
    horizon = n_quanta * machine.quantum_cycles
    windows = []
    start, idx = 0, 0
    while start < horizon:
        end = min(start + width, horizon)
        windows.append(Window(idx, start, end))
        start, idx = end, idx + 1
    return windows


def bus_lock_train(machine: Machine, window: Window) -> np.ndarray:
    """Bus-lock event timestamps within a window."""
    return machine.bus_lock_tap.times_in(window.start, window.end)


def divider_wait_counts(
    machine: Machine, core: int, window: Window, dt: int
) -> np.ndarray:
    """Divider wait-event counts per Δt sub-window within a window."""
    tap = machine.divider_wait_tap_for(core)
    return tap.density_counts(dt, window.start, window.end)


def conflict_miss_records(
    machine: Machine, window: Window
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(times, replacers, victims) of conflict misses within a window."""
    return machine.cache_miss_tap.records_in(window.start, window.end)


def iter_windows(machine: Machine, n_quanta: int, fraction: float = 1.0
                 ) -> Iterator[Window]:
    """Generator form of :func:`quantum_windows`."""
    for w in quantum_windows(machine, n_quanta, fraction):
        yield w
