"""OS-level scheduling model: context allocation, quanta, migration.

The detector's observation windows are OS time quanta (0.1 s), and the
paper notes that the OS can track trojan/spy migration across cores so
labeled conflict events stay attributable. This scheduler hands out
hardware contexts (SMT threads), optionally pinned to a core, and records
migrations so analyses can unify a process's context ids over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.obs.metrics import MetricsRegistry, get_default
from repro.sim.process import Process


@dataclass(frozen=True)
class MigrationRecord:
    """A process moved between hardware contexts at a context switch."""

    time: int
    process_name: str
    old_ctx: int
    new_ctx: int


class Scheduler:
    """Allocates hardware contexts and tracks placement over time."""

    def __init__(
        self,
        config: MachineConfig,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self._owner: Dict[int, Optional[Process]] = {
            ctx: None for ctx in range(config.n_contexts)
        }
        self.migrations: List[MigrationRecord] = []
        m = metrics if metrics is not None else get_default()
        self._m_placements = m.counter(
            "cchunter_sched_placements_total",
            "processes placed on hardware contexts",
        )
        self._m_migrations = m.counter(
            "cchunter_sched_migrations_total",
            "live-process migrations between contexts",
        )
        self._m_busy = m.gauge(
            "cchunter_sched_contexts_busy",
            "hardware contexts currently occupied",
        )

    def contexts_of_core(self, core: int) -> List[int]:
        """Hardware context ids belonging to ``core``."""
        if not 0 <= core < self.config.n_cores:
            raise SchedulingError(f"core {core} outside 0..{self.config.n_cores - 1}")
        base = core * self.config.threads_per_core
        return list(range(base, base + self.config.threads_per_core))

    def core_of(self, ctx: int) -> int:
        if not 0 <= ctx < self.config.n_contexts:
            raise SchedulingError(f"context {ctx} outside machine")
        return ctx // self.config.threads_per_core

    def occupant(self, ctx: int) -> Optional[Process]:
        return self._owner[ctx]

    def free_contexts(self, core: Optional[int] = None) -> List[int]:
        """Unoccupied contexts, optionally restricted to one core."""
        candidates = (
            self.contexts_of_core(core)
            if core is not None
            else list(range(self.config.n_contexts))
        )
        return [c for c in candidates if self._owner[c] is None]

    def place(
        self,
        process: Process,
        ctx: Optional[int] = None,
        core: Optional[int] = None,
    ) -> int:
        """Assign ``process`` to a context.

        Explicit ``ctx`` pins exactly; ``core`` picks any free SMT thread of
        that core; neither picks the first free context in the machine.
        """
        if ctx is not None:
            if self._owner.get(ctx) is not None:
                raise SchedulingError(
                    f"context {ctx} already runs {self._owner[ctx].name!r}"
                )
            if not 0 <= ctx < self.config.n_contexts:
                raise SchedulingError(f"context {ctx} outside machine")
            chosen = ctx
        else:
            free = self.free_contexts(core)
            if not free:
                where = f"core {core}" if core is not None else "machine"
                raise SchedulingError(f"no free hardware context on {where}")
            chosen = free[0]
        self._owner[chosen] = process
        process.ctx = chosen
        self._m_placements.inc()
        self._m_busy.inc()
        return chosen

    def release(self, process: Process) -> None:
        """Free the context a finished process occupied."""
        if process.ctx is not None and self._owner.get(process.ctx) is process:
            self._owner[process.ctx] = None
            self._m_busy.dec()

    def migrate(self, process: Process, new_ctx: int, time: int) -> None:
        """Move a live process to another context, recording the migration.

        Covert pairs occasionally migrate at context switches; the recorded
        history is what lets software unify their identifiers (Section V-A).
        """
        if process.ctx is None:
            raise SchedulingError(f"{process.name!r} is not placed")
        if self._owner.get(new_ctx) is not None:
            raise SchedulingError(f"context {new_ctx} is occupied")
        old_ctx = process.ctx
        self._owner[old_ctx] = None
        self._owner[new_ctx] = process
        process.ctx = new_ctx
        self.migrations.append(
            MigrationRecord(time, process.name, old_ctx, new_ctx)
        )
        self._m_migrations.inc()

    def context_history(self, process_name: str, initial_ctx: int) -> List[int]:
        """All context ids a process has occupied, in order."""
        history = [initial_ctx]
        for rec in self.migrations:
            if rec.process_name == process_name:
                history.append(rec.new_ctx)
        return history
