"""Process model: generator-based actors issuing hardware operations.

A :class:`Process` is a coroutine that yields *operations* (the dataclasses
below); the machine executes each operation against its resource models,
advances the process's virtual time by the operation's duration, and sends
the operation's result (e.g. observed latencies) back into the coroutine.

Operations are deliberately batch-grained — "perform N timed memory
accesses", "saturate the divider for D cycles" — so that multi-million
cycle phases cost O(1) Python work while still producing exact
indicator-event streams. This is the key substitution that makes a paper
whose conflicts come from real x86 execution reproducible in Python (see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Priority


@dataclass(frozen=True)
class Compute(object):
    """Occupy this context with private computation for ``cycles`` cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(f"cannot compute for {self.cycles} cycles")


@dataclass(frozen=True)
class WaitUntil(object):
    """Sleep until absolute cycle ``time`` (no-op if already reached)."""

    time: int


@dataclass(frozen=True)
class BusLockBurst(object):
    """Trojan-style bus locking: ``count`` atomic unaligned accesses.

    Each access locks the memory bus for the configured lock duration;
    accesses are issued every ``period`` cycles. This is the '1'-bit action
    of the memory-bus covert channel.
    """

    count: int
    period: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.period <= 0:
            raise SimulationError("bus lock burst needs positive count and period")


@dataclass(frozen=True)
class BusSample(object):
    """Spy-style timed memory accesses over the bus.

    Issues ``count`` cache-missing loads spaced by ``period`` cycles and
    returns the observed latency of each (a numpy array). Latency rises
    while the bus is lock-contended, which is how the spy reads bits.
    """

    count: int
    period: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.period <= 0:
            raise SimulationError("bus sampling needs positive count and period")


#: Functional units that ops below may target on the issuing core.
FUNCTIONAL_UNITS = ("divider", "multiplier")


def _check_unit(unit: str) -> None:
    if unit not in FUNCTIONAL_UNITS:
        raise SimulationError(
            f"unknown functional unit {unit!r}; choose from "
            f"{FUNCTIONAL_UNITS}"
        )


@dataclass(frozen=True)
class DividerSaturate(object):
    """Trojan-style functional-unit contention: keep the unit busy.

    Occupies this core's divider (or multiplier, via ``unit``) for
    ``duration`` cycles; any sibling hyperthread operation executed
    meanwhile waits on the busy unit and raises wait-on-busy indicator
    events.
    """

    duration: int
    unit: str = "divider"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise SimulationError("saturation duration must be positive")
        _check_unit(self.unit)


@dataclass(frozen=True)
class DividerLoop(object):
    """Spy-style timed operation loop on a functional unit.

    Runs ``iterations`` loop iterations, each containing ``divs_per_iter``
    dependent operations on the chosen ``unit`` (divider by default), and
    returns per-iteration latencies. Iterations overlapping sibling
    occupancy of the unit take longer.
    """

    iterations: int
    divs_per_iter: int = 4
    unit: str = "divider"

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.divs_per_iter <= 0:
            raise SimulationError("functional-unit loop needs positive sizes")
        _check_unit(self.unit)


@dataclass(frozen=True)
class CacheAccessSeries(object):
    """A sequence of L2 accesses: ``accesses[i] = (set_index, tag)``.

    Accesses issue back-to-back (each one's start is the previous one's
    completion plus ``gap`` cycles). Returns a numpy array of latencies.
    ``accesses`` may be a tuple of pairs or an ``(n, 2)`` integer ndarray
    — channels that reuse a fixed access pattern pass a precomputed
    array so the cache's batch kernel skips the per-series conversion.
    """

    accesses: Tuple[Tuple[int, int], ...]
    gap: int = 8

    def __post_init__(self) -> None:
        if len(self.accesses) == 0:
            raise SimulationError("cache access series cannot be empty")
        if self.gap < 0:
            raise SimulationError("cache access gap cannot be negative")


@dataclass(frozen=True)
class RandomBusLocks(object):
    """Background noise: sparse random bus-lock events over ``duration``.

    ``rate`` is expected lock events per second of virtual time; arrival
    times are Poisson. Models benign programs that occasionally execute
    atomic unaligned operations.

    Like all ``Random*`` operations this is a *non-blocking registration*:
    it commits activity covering ``[now, now + duration)`` and completes
    immediately; the issuing process advances time with WaitUntil/Compute.
    """

    duration: int
    rate_per_second: float

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.rate_per_second < 0:
            raise SimulationError("noise burst needs positive duration, rate >= 0")


@dataclass(frozen=True)
class RandomDividerUse(object):
    """Background noise: random divider bursts over ``duration``.

    The context runs division-heavy bursts covering a ``duty`` fraction of
    the window; within a burst it occupies an ``intensity`` fraction of
    the divider's issue slots (benign code mixes divisions with other
    work, unlike a saturating trojan). Non-blocking registration.
    """

    duration: int
    duty: float
    burst_cycles: int = 25_000
    intensity: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty <= 1.0:
            raise SimulationError(f"duty must be in [0, 1], got {self.duty}")
        if self.duration <= 0 or self.burst_cycles <= 0:
            raise SimulationError("noise use needs positive duration and burst")
        if not 0.0 < self.intensity <= 1.0:
            raise SimulationError(
                f"intensity must be in (0, 1], got {self.intensity}"
            )


@dataclass(frozen=True)
class RandomCacheTraffic(object):
    """Background noise: ``count`` random-set cache accesses over ``duration``.

    Accesses spread uniformly over the window and touch uniformly random
    sets within ``[set_lo, set_hi)`` with per-context private tags, creating
    the benign conflict misses that perturb the covert train.
    """

    duration: int
    count: int
    set_lo: int = 0
    set_hi: Optional[int] = None
    tag_space: int = 64

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.count < 0:
            raise SimulationError("noise traffic needs positive duration")
        if self.tag_space <= 0:
            raise SimulationError("tag space must be positive")


ProcessBody = Callable[["Process"], Generator[object, object, None]]


class Process:
    """A schedulable software process.

    Subclass and override :meth:`run`, or pass a generator-function
    ``body``. Inside the generator, ``yield op`` executes the operation and
    evaluates to its result::

        def body(proc):
            latencies = yield BusSample(count=100, period=500)
            yield Compute(10_000)

        p = Process("spy", body=body, priority=Priority.CONSUMER)

    The machine fills in :attr:`ctx` (hardware context id) at spawn time.
    """

    def __init__(
        self,
        name: str,
        body: Optional[ProcessBody] = None,
        priority: int = Priority.PRODUCER,
    ):
        self.name = name
        self.priority = int(priority)
        self._body = body
        self.ctx: Optional[int] = None
        self.machine = None  # set by Machine.spawn
        self.finished = False
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None

    def run(self) -> Generator[object, object, None]:
        """The process body; yields operations, receives their results."""
        if self._body is None:
            raise NotImplementedError(
                f"process {self.name!r}: pass body= or override run()"
            )
        return self._body(self)

    @property
    def core(self) -> int:
        """The core this process's hardware context belongs to."""
        if self.ctx is None or self.machine is None:
            raise SimulationError(f"process {self.name!r} is not scheduled yet")
        return self.ctx // self.machine.config.threads_per_core

    def __repr__(self) -> str:
        where = f"ctx={self.ctx}" if self.ctx is not None else "unscheduled"
        return f"Process({self.name!r}, {where})"
