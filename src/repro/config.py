"""System configuration for the simulated machine and the detector.

Defaults mirror the paper's evaluation platform: a quad-core 2.5 GHz
processor with two hyperthreads per core (MARSSx86 booted with Ubuntu
11.04), private 32 KB L1s, a shared 256 KB L2, an OS time quantum of
0.1 s, and the CC-auditor sized as in Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int = 256 * 1024
    line_bytes: int = 64
    associativity: int = 8
    hit_latency: int = 20
    miss_latency: int = 200

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0:
            raise ConfigError("cache size and line size must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigError(
                "cache size must be a whole number of sets: "
                f"{self.size_bytes} B / ({self.line_bytes} B x "
                f"{self.associativity} ways) is not integral"
            )
        if self.hit_latency <= 0 or self.miss_latency <= self.hit_latency:
            raise ConfigError("need 0 < hit latency < miss latency")

    @property
    def n_blocks(self) -> int:
        """Total number of cache blocks (lines)."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.associativity


@dataclass(frozen=True)
class BusConfig:
    """Shared memory bus / QPI timing model.

    ``lock_duration`` is how long one atomic-unaligned transaction keeps the
    bus locked; ``locked_extra_latency`` is the added latency any other
    context observes while the bus is locked (the signal the spy reads).
    """

    base_latency: int = 160
    locked_extra_latency: int = 190
    lock_duration: int = 3000
    latency_jitter: int = 12

    def __post_init__(self) -> None:
        if self.base_latency <= 0 or self.lock_duration <= 0:
            raise ConfigError("bus latencies must be positive")
        if self.locked_extra_latency < 0 or self.latency_jitter < 0:
            raise ConfigError("bus jitter and lock penalty cannot be negative")


@dataclass(frozen=True)
class FunctionalUnitConfig:
    """A long-latency functional unit shared by a core's hyperthreads.

    Used for the integer divider (the paper's test channel) and the
    multiplier (Wang & Lee's original variant the paper cites).
    """

    latency: int = 22
    contended_extra_latency: int = 24
    loop_overhead: int = 10
    #: Mean cycles between wait-on-busy indicator events while the unit is
    #: saturated by the sibling hyperthread. The paper's divider channel
    #: shows burst densities near 96 events per 500-cycle window, i.e. one
    #: wait event roughly every 5 cycles across the unit's issue ports.
    contention_event_period: float = 5.2

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.loop_overhead < 0:
            raise ConfigError("functional unit latency must be positive")
        if self.contention_event_period <= 0:
            raise ConfigError("contention event period must be positive")


#: Backwards-friendly alias: the divider is the canonical instance.
DividerConfig = FunctionalUnitConfig


@dataclass(frozen=True)
class MachineConfig:
    """Topology and timing of the whole simulated machine."""

    n_cores: int = 4
    threads_per_core: int = 2
    frequency_hz: float = 2.5e9
    os_quantum_seconds: float = 0.1
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, associativity=8, hit_latency=4, miss_latency=20
        )
    )
    l2: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    divider: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)
    #: Pipelined multiplier: lower latency, smaller contention penalty,
    #: sparser wait events than the (unpipelined) divider.
    multiplier: FunctionalUnitConfig = field(
        default_factory=lambda: FunctionalUnitConfig(
            latency=5,
            contended_extra_latency=7,
            loop_overhead=8,
            contention_event_period=10.4,
        )
    )

    def __post_init__(self) -> None:
        if self.n_cores <= 0 or self.threads_per_core <= 0:
            raise ConfigError("machine needs at least one core and one thread")
        if self.frequency_hz <= 0:
            raise ConfigError("clock frequency must be positive")
        if self.os_quantum_seconds <= 0:
            raise ConfigError("OS time quantum must be positive")

    @property
    def n_contexts(self) -> int:
        """Total hardware contexts (SMT threads) in the machine."""
        return self.n_cores * self.threads_per_core

    @property
    def quantum_cycles(self) -> int:
        """OS time quantum expressed in CPU cycles."""
        return int(round(self.os_quantum_seconds * self.frequency_hz))


@dataclass(frozen=True)
class AuditorConfig:
    """CC-auditor hardware sizing (Section V-A)."""

    n_monitors: int = 2
    histogram_bins: int = 128
    histogram_entry_bits: int = 16
    accumulator_bits: int = 16
    countdown_bits: int = 32
    vector_register_bytes: int = 128
    context_id_bits: int = 3
    generations: int = 4
    bloom_hashes: int = 3

    def __post_init__(self) -> None:
        if self.n_monitors <= 0:
            raise ConfigError("auditor needs at least one monitor slot")
        if self.histogram_bins <= 1:
            raise ConfigError("auditor histogram needs at least two bins")
        for bits in (
            self.histogram_entry_bits,
            self.accumulator_bits,
            self.countdown_bits,
        ):
            if bits <= 0:
                raise ConfigError("register widths must be positive")

    @property
    def accumulator_max(self) -> int:
        return (1 << self.accumulator_bits) - 1

    @property
    def histogram_entry_max(self) -> int:
        return (1 << self.histogram_entry_bits) - 1


#: Paper constants for Δt, Section IV-B step 1.
MEMBUS_DELTA_T_CYCLES = 100_000
DIVIDER_DELTA_T_CYCLES = 500

#: Detection thresholds from Section IV-B steps 4-5.
LIKELIHOOD_RATIO_THRESHOLD = 0.5
CLUSTERING_WINDOW_QUANTA = 512
