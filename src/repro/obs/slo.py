"""Per-tenant SLO tracking with multi-window burn-rate alerting.

The detection service's job is continuous auditing; its own service
level is therefore part of the security posture — a tenant whose
observations are being shed, whose verdicts arrive late, or whose
pipeline health has degraded is a tenant the auditor is *not* fully
watching, exactly the monitoring gap an adaptive covert sender waits
for (see PAPERS.md, "Towards a Better Indicator for Cache Timing
Channels").

:class:`SloTracker` keeps rolling windows of good/bad events per
``(tenant, objective)`` and evaluates the classic SRE multi-window
burn-rate rules: an alert fires when the error budget is being burned
faster than ``threshold``× over *both* a short window (is it happening
now?) and a long window (is it sustained?). Firing is edge-triggered —
one alert per transition into the firing state, re-armed once both
windows drop back under threshold.

Every fired alert is emitted three ways, so logs, metrics, and
forensic archives join on the same keys:

- a structured ``repro.obs.alert/v1`` record on the ``repro.obs.slo``
  logger (tenant/rule/objective as record attrs for the JSON
  formatter);
- a ``cchunter_alerts_total{rule,tenant}`` counter increment;
- one JSON line appended to the alerts file, when one is configured.

Objectives shipped by default (see docs/OBSERVABILITY.md):

- ``verdict_latency`` — fraction of verdicts slower than the latency
  threshold (a quantile objective expressed as a bad-event rate);
- ``shed`` — fraction of observations shed or lost instead of folded;
- ``health`` — fraction of verdicts carrying a non-OK pipeline health.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from time import monotonic
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_default

_log = get_logger("obs.slo")

#: Format tag stamped into every alert document and JSONL line.
ALERT_FORMAT = "repro.obs.alert/v1"

#: Most samples retained per (tenant, objective) window.
_MAX_SAMPLES = 4096


@dataclass(frozen=True)
class SloObjective:
    """One rolling-window objective: budgeted fraction of bad events.

    ``budget`` is the error budget as a fraction (0.05 = 99.5%-ish of
    events may be bad before the budget is gone at burn rate 1).
    ``latency_threshold_s`` only matters for latency-style objectives,
    where it defines "bad" (slower than the threshold).
    """

    name: str
    budget: float = 0.05
    latency_threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"budget must be in (0, 1], got {self.budget} "
                f"for objective {self.name!r}"
            )


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when short- AND long-window burn exceed ``threshold``."""

    name: str
    short_window_s: float
    long_window_s: float
    threshold: float
    #: Minimum short-window samples before the rule may fire, so a
    #: single bad event on a fresh tenant cannot page anyone.
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ValueError(f"rule {self.name!r} windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError(
                f"rule {self.name!r}: short window "
                f"({self.short_window_s}s) exceeds long window "
                f"({self.long_window_s}s)"
            )
        if self.threshold <= 0:
            raise ValueError(f"rule {self.name!r} threshold must be positive")


#: Service defaults: a 250 ms verdict-latency bar and 5% budgets.
DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective("verdict_latency", budget=0.05, latency_threshold_s=0.25),
    SloObjective("shed", budget=0.05),
    SloObjective("health", budget=0.05),
)

#: Classic two-rule ladder, scaled to service-test time horizons
#: (seconds, not hours): fast burn pages on an acute budget fire,
#: slow burn on a sustained leak.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast_burn", short_window_s=30.0, long_window_s=120.0,
                 threshold=8.0),
    BurnRateRule("slow_burn", short_window_s=120.0, long_window_s=600.0,
                 threshold=2.0),
)


class SloTracker:
    """Rolling per-tenant SLO windows plus burn-rate alert evaluation."""

    def __init__(
        self,
        objectives: Tuple[SloObjective, ...] = DEFAULT_OBJECTIVES,
        rules: Tuple[BurnRateRule, ...] = DEFAULT_RULES,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = monotonic,
        alerts_path: Optional[str] = None,
    ):
        if not objectives:
            raise ValueError("at least one objective is required")
        self.objectives: Dict[str, SloObjective] = {
            obj.name: obj for obj in objectives
        }
        if len(self.objectives) != len(objectives):
            raise ValueError("objective names must be unique")
        self.rules = tuple(rules)
        self.metrics = metrics if metrics is not None else get_default()
        self.clock = clock
        self.alerts_path = alerts_path
        self._horizon = max(
            (rule.long_window_s for rule in self.rules), default=0.0
        )
        #: (tenant, objective) -> deque of (timestamp, bad) samples.
        self._samples: Dict[Tuple[str, str], Deque[Tuple[float, bool]]] = {}
        #: Keys currently in the firing state (edge-trigger dedup).
        self._firing: Set[Tuple[str, str, str]] = set()
        self.alerts_fired = 0
        self._fired_by_tenant: Dict[str, int] = {}

    # ------------------------------------------------------------ ingestion

    def observe(
        self,
        tenant: str,
        objective: str,
        bad: bool,
        now: Optional[float] = None,
    ) -> None:
        """Record one good/bad event against a tenant's objective."""
        if objective not in self.objectives:
            raise ValueError(
                f"unknown objective {objective!r} "
                f"(known: {', '.join(sorted(self.objectives))})"
            )
        t = self.clock() if now is None else now
        key = (tenant, objective)
        window = self._samples.get(key)
        if window is None:
            window = self._samples[key] = deque(maxlen=_MAX_SAMPLES)
        window.append((t, bool(bad)))
        self._prune(window, t)

    def observe_latency(
        self, tenant: str, seconds: float, now: Optional[float] = None
    ) -> None:
        """A verdict latency sample; bad iff over the objective's bar."""
        threshold = self.objectives["verdict_latency"].latency_threshold_s
        bad = threshold is not None and seconds > threshold
        self.observe(tenant, "verdict_latency", bad, now=now)

    def observe_shed(
        self, tenant: str, bad: bool, now: Optional[float] = None
    ) -> None:
        """One observation's fate: bad when shed/lost, good when folded."""
        self.observe(tenant, "shed", bad, now=now)

    def observe_health(
        self, tenant: str, health: str, now: Optional[float] = None
    ) -> None:
        """A verdict's pipeline health; bad when not "ok"."""
        self.observe(tenant, "health", health != "ok", now=now)

    def _prune(
        self, window: Deque[Tuple[float, bool]], now: float
    ) -> None:
        horizon = now - self._horizon
        while window and window[0][0] < horizon:
            window.popleft()

    # ----------------------------------------------------------- evaluation

    def _window_counts(
        self, key: Tuple[str, str], window_s: float, now: float
    ) -> Tuple[int, int]:
        """(bad, total) samples within the trailing ``window_s``."""
        samples = self._samples.get(key)
        if not samples:
            return 0, 0
        cutoff = now - window_s
        bad = total = 0
        for t, is_bad in reversed(samples):
            if t < cutoff:
                break
            total += 1
            bad += is_bad
        return bad, total

    def burn_rate(
        self,
        tenant: str,
        objective: str,
        window_s: float,
        now: Optional[float] = None,
    ) -> float:
        """Budget-burn multiple over the trailing window (0 when idle).

        1.0 means bad events arrive exactly at the budgeted fraction;
        ``1 / budget`` is the ceiling (every event bad).
        """
        obj = self.objectives[objective]
        t = self.clock() if now is None else now
        bad, total = self._window_counts((tenant, objective), window_s, t)
        if total == 0:
            return 0.0
        return (bad / total) / obj.budget

    def evaluate(
        self, tenant: str, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Run every rule×objective for one tenant; emit fresh alerts.

        Returns the alert documents fired by *this* call (empty for
        steady states — already-firing combinations stay silent until
        they clear and re-trip).
        """
        t = self.clock() if now is None else now
        fired: List[Dict[str, Any]] = []
        for objective in self.objectives:
            for rule in self.rules:
                key = (tenant, rule.name, objective)
                _, short_total = self._window_counts(
                    (tenant, objective), rule.short_window_s, t
                )
                burn_short = self.burn_rate(
                    tenant, objective, rule.short_window_s, now=t
                )
                burn_long = self.burn_rate(
                    tenant, objective, rule.long_window_s, now=t
                )
                firing = (
                    short_total >= rule.min_samples
                    and burn_short >= rule.threshold
                    and burn_long >= rule.threshold
                )
                if not firing:
                    self._firing.discard(key)
                    continue
                if key in self._firing:
                    continue
                self._firing.add(key)
                fired.append(
                    self._emit(tenant, rule, objective,
                               burn_short, burn_long, t)
                )
        return fired

    def _emit(
        self,
        tenant: str,
        rule: BurnRateRule,
        objective: str,
        burn_short: float,
        burn_long: float,
        now: float,
    ) -> Dict[str, Any]:
        alert = {
            "format": ALERT_FORMAT,
            "rule": rule.name,
            "tenant": tenant,
            "objective": objective,
            "burn_short": burn_short,
            "burn_long": burn_long,
            "threshold": rule.threshold,
            "budget": self.objectives[objective].budget,
            "short_window_s": rule.short_window_s,
            "long_window_s": rule.long_window_s,
            "ts": now,
        }
        self.alerts_fired += 1
        self._fired_by_tenant[tenant] = (
            self._fired_by_tenant.get(tenant, 0) + 1
        )
        if self.metrics.enabled:
            self.metrics.counter(
                "cchunter_alerts_total",
                "SLO burn-rate alerts fired, by rule and tenant.",
                labels={"rule": rule.name, "tenant": tenant},
            ).inc()
        _log.warning(
            "SLO alert %s: tenant %r burning %s budget at %.1fx "
            "(short) / %.1fx (long), threshold %.1fx",
            rule.name,
            tenant,
            objective,
            burn_short,
            burn_long,
            rule.threshold,
            extra={
                "tenant": tenant,
                "rule": rule.name,
                "objective": objective,
                "alert_format": ALERT_FORMAT,
            },
        )
        if self.alerts_path is not None:
            with open(self.alerts_path, "a") as handle:
                handle.write(json.dumps(alert, sort_keys=True) + "\n")
        return alert

    # ------------------------------------------------------------ snapshots

    def firing(self, tenant: str) -> List[Dict[str, str]]:
        """Currently-firing (rule, objective) pairs for one tenant."""
        return [
            {"rule": rule, "objective": objective}
            for (who, rule, objective) in sorted(self._firing)
            if who == tenant
        ]

    def max_burn_rate(
        self, tenant: str, now: Optional[float] = None
    ) -> float:
        """Worst short-window burn across objectives — ``repro top``'s sort
        key."""
        t = self.clock() if now is None else now
        shortest = min(
            (rule.short_window_s for rule in self.rules),
            default=self._horizon or 60.0,
        )
        return max(
            (
                self.burn_rate(tenant, objective, shortest, now=t)
                for objective in self.objectives
            ),
            default=0.0,
        )

    def tenant_snapshot(
        self, tenant: str, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """JSON-ready SLO state for ``/tenants/<id>`` and ``repro top``."""
        t = self.clock() if now is None else now
        shortest = min(
            (rule.short_window_s for rule in self.rules),
            default=self._horizon or 60.0,
        )
        objectives: Dict[str, Any] = {}
        for objective in self.objectives:
            bad, total = self._window_counts(
                (tenant, objective), self._horizon or shortest, t
            )
            objectives[objective] = {
                "samples": total,
                "bad_fraction": (bad / total) if total else 0.0,
                "burn_rate": self.burn_rate(
                    tenant, objective, shortest, now=t
                ),
            }
        return {
            "alerts_total": self._fired_by_tenant.get(tenant, 0),
            "firing": self.firing(tenant),
            "max_burn_rate": self.max_burn_rate(tenant, now=t),
            "objectives": objectives,
        }


__all__ = [
    "ALERT_FORMAT",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_RULES",
    "BurnRateRule",
    "SloObjective",
    "SloTracker",
]
