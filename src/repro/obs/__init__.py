"""Observability: metrics, span tracing, and structured logging.

The reproduction's self-measurement layer, mirroring the paper's own
emphasis on low-overhead online monitoring:

- ``repro.obs.metrics`` — a dependency-free :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms with JSON snapshots and
  Prometheus text exposition. Always on (counters-only by default);
  pass :data:`NULL_REGISTRY` to a component to switch it off entirely.
- ``repro.obs.tracing`` — opt-in ``trace_span`` spans into a bounded
  ring buffer, exportable as Chrome-trace JSON.
- ``repro.obs.profile`` — an opt-in :class:`StageProfiler` folding the
  same ``trace_span`` intervals into a per-stage wall/CPU call tree
  (self/child accounting, per-quantum rows) with flamegraph and
  speedscope exporters; merged across TrialRunner workers like
  metrics snapshots.
- ``repro.obs.log`` — per-component structured loggers under the
  ``repro`` tree, with plain-text or JSON-lines output.
- ``repro.obs.timeseries`` — a :class:`MetricsSampler` that snapshots a
  registry into bounded JSONL time series (wall-clock and sim-quantum
  clocks, ring retention, merge-aware for parallel sweeps).
- ``repro.obs.evidence`` — per-unit :class:`EvidenceBundle` forensic
  records behind every verdict (LR trajectories, histogram and
  correlogram snapshots, fault/health/verdict timelines) with exact
  round-trip serialization.
- ``repro.obs.telemetry`` — a stdlib asyncio HTTP admin endpoint
  (:class:`TelemetryServer`) turning the registries above into a live
  scrape surface (``/metrics``, health/readiness, per-tenant state).
- ``repro.obs.slo`` — per-tenant rolling SLO windows with multi-window
  burn-rate alert rules (:class:`SloTracker`), emitting structured
  ``repro.obs.alert/v1`` events, a ``cchunter_alerts_total`` counter,
  and an append-only alerts JSONL.

Metric names, label conventions, the span taxonomy, and the exposition
format are documented in docs/OBSERVABILITY.md; the evidence schema and
time-series format live in docs/FORENSICS.md.
"""

from repro.obs.evidence import (
    EVIDENCE_FORMAT,
    EvidenceBundle,
    EvidenceError,
    evidence_document,
    load_evidence,
    write_evidence,
)
from repro.obs.log import (
    JsonLineFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    get_default,
    load_snapshot,
    metric_names,
    new_default,
    render_prometheus,
    set_default,
)
from repro.obs.timeseries import (
    TIMESERIES_FORMAT,
    MetricsSampler,
    TimeseriesError,
    flatten_snapshot,
    load_jsonl,
    merge_records,
    series_keys,
    series_values,
)
from repro.obs.profile import (
    PROFILE_FORMAT,
    ProfileError,
    StageProfiler,
    StageStats,
    disable_profiling,
    enable_profiling,
    get_profiler,
    load_profile,
    merge_profiles,
    profiling_enabled,
    render_collapsed,
    render_top,
    to_speedscope,
)
from repro.obs.slo import (
    ALERT_FORMAT,
    DEFAULT_OBJECTIVES,
    DEFAULT_RULES,
    BurnRateRule,
    SloObjective,
    SloTracker,
)
from repro.obs.telemetry import TelemetryServer, json_response, text_response
from repro.obs.tracing import (
    SpanRecord,
    SpanRecorder,
    TraceContext,
    disable_tracing,
    enable_tracing,
    get_recorder,
    merge_remote_trace,
    new_span_id,
    new_trace_id,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "EVIDENCE_FORMAT",
    "EvidenceBundle",
    "EvidenceError",
    "evidence_document",
    "load_evidence",
    "write_evidence",
    "TIMESERIES_FORMAT",
    "MetricsSampler",
    "TimeseriesError",
    "flatten_snapshot",
    "load_jsonl",
    "merge_records",
    "series_keys",
    "series_values",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "get_default",
    "set_default",
    "new_default",
    "render_prometheus",
    "load_snapshot",
    "metric_names",
    "SpanRecord",
    "SpanRecorder",
    "TraceContext",
    "trace_span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_recorder",
    "merge_remote_trace",
    "new_span_id",
    "new_trace_id",
    "ALERT_FORMAT",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_RULES",
    "BurnRateRule",
    "SloObjective",
    "SloTracker",
    "TelemetryServer",
    "json_response",
    "text_response",
    "PROFILE_FORMAT",
    "ProfileError",
    "StageProfiler",
    "StageStats",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "get_profiler",
    "load_profile",
    "merge_profiles",
    "render_collapsed",
    "render_top",
    "to_speedscope",
    "JsonLineFormatter",
    "configure_logging",
    "get_logger",
]
