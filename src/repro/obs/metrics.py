"""Metrics registry: counters, gauges, and fixed-bucket histograms.

CC-Hunter's pitch is *low-overhead online monitoring*, so the
reproduction has to be able to report its own cost: quanta/sec
sustained, per-analyzer push latency, accumulator saturation. This
module is the single place those numbers live — a dependency-free
registry of named metric families in the Prometheus data model:

- :class:`Counter` — monotonically increasing totals (``*_total``);
- :class:`Gauge` — last-written values (throughput, first detection);
- :class:`Histogram` — fixed upper-bound buckets plus sum/count, for
  latency distributions (the software analog of the auditor's own
  fixed 128-entry histogram buffers).

Families are get-or-create: asking for an existing ``(name, labels)``
series returns the same object, so any component can instrument itself
against the process-wide default registry without coordination. The
snapshot (:meth:`MetricsRegistry.to_dict`) serializes to plain JSON and
:func:`render_prometheus` renders either a live registry or a loaded
snapshot to the text exposition format — the identical metric names in
both is an explicit contract (see docs/OBSERVABILITY.md).

Instrumentation defaults to **counters-only**: updating a counter or
histogram is a few dict/float operations, and the hot paths additionally
branch on :attr:`MetricsRegistry.enabled` so benchmarks can eliminate
even the ``perf_counter`` calls by passing :data:`NULL_REGISTRY`.
Spans (``repro.obs.tracing``) are a separate, opt-in layer.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ReproError


class MetricsError(ReproError):
    """A metric was registered or used inconsistently."""


#: Default upper bounds (seconds) for latency histograms: 1 µs .. 5 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricsError(f"invalid label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can be set to anything at any time."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit +Inf bucket catches the overflow, mirroring Prometheus
    (and the CC-auditor's clamp-at-last-bin histogram buffers).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket (Prometheus ``_bucket`` series)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    """One named metric family: shared type/help/buckets, many series."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.series: Dict[LabelPairs, Any] = {}


class MetricsRegistry:
    """A process-local collection of metric families.

    All accessors are get-or-create and idempotent: two components
    asking for the same ``(name, labels)`` share one series. Asking for
    an existing name with a conflicting type (or conflicting histogram
    buckets) raises :class:`MetricsError` — silent type drift is how
    dashboards lie.
    """

    #: Real registries time their callers; the null registry does not.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------- creation

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help_text, buckets)
            return family
        if family.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        if kind == "histogram" and buckets is not None and family.buckets != buckets:
            raise MetricsError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        family = self._family(name, "counter", help_text)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Counter()
        return series

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        family = self._family(name, "gauge", help_text)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Gauge()
        return series

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        buckets = tuple(float(b) for b in buckets)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise MetricsError(
                f"histogram buckets must be strictly increasing, got {buckets}"
            )
        family = self._family(name, "histogram", help_text, buckets)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Histogram(family.buckets or buckets)
        return series

    # -------------------------------------------------------------- merge

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot from another registry into this one.

        This is how ``repro.exec`` gathers instrumentation from worker
        processes: each worker snapshots its private registry and the
        parent merges the snapshots back. Semantics per metric kind
        (documented in docs/OBSERVABILITY.md):

        - **counters** sum — totals accumulated anywhere count here;
        - **gauges** take the incoming value per label set
          (last-writer-wins, matching ``Gauge.set``);
        - **histograms** add per-bucket counts plus ``sum``/``count``;
          the snapshot's bucket bounds must end with the +Inf overflow
          bucket and match the existing family's exactly — any mismatch
          raises :class:`MetricsError` rather than silently mis-adding
          counts across different boundaries.

        Families and series absent from this registry are created;
        merging into a disabled registry (``NULL_REGISTRY``) is a no-op.
        """
        if not self.enabled:
            return
        if snapshot.get("format") != "repro.obs.metrics/v1":
            raise MetricsError(
                "cannot merge: not a repro.obs metrics snapshot "
                f"(format={snapshot.get('format')!r})"
            )
        for name, family in snapshot["metrics"].items():
            kind = family["type"]
            help_text = family.get("help", "")
            for entry in family["series"]:
                labels = entry.get("labels") or None
                if kind == "counter":
                    self.counter(name, help_text, labels).inc(
                        float(entry["value"])
                    )
                elif kind == "gauge":
                    self.gauge(name, help_text, labels).set(entry["value"])
                elif kind == "histogram":
                    bounds = [float(b) for b, _ in entry["buckets"]]
                    # The snapshot's terminal bound must be the implicit
                    # +Inf overflow bucket. Without this check, a
                    # truncated snapshot would drop a *real* bucket via
                    # the [:-1] below and silently fold its counts into
                    # the wrong bucket of the existing series.
                    if not bounds or not math.isinf(bounds[-1]):
                        raise MetricsError(
                            f"cannot merge histogram {name!r}: snapshot "
                            "buckets must end with the +Inf overflow "
                            f"bound, got {entry['buckets']!r}"
                        )
                    finite = tuple(bounds[:-1])
                    existing = self._families.get(name)
                    if (
                        existing is not None
                        and existing.buckets is not None
                        and existing.buckets != finite
                    ):
                        raise MetricsError(
                            f"cannot merge histogram {name!r}: snapshot "
                            f"bucket boundaries {finite} do not match the "
                            f"registered boundaries {existing.buckets}; "
                            "adding counts across mismatched buckets "
                            "would corrupt the distribution"
                        )
                    series = self.histogram(
                        name, help_text, labels, buckets=finite
                    )
                    cumulative = [int(c) for _, c in entry["buckets"]]
                    previous = 0
                    for i, c in enumerate(cumulative):
                        series.counts[i] += c - previous
                        previous = c
                    series.sum += float(entry["sum"])
                    series.count += int(entry["count"])
                else:
                    raise MetricsError(
                        f"cannot merge metric {name!r} of unknown type {kind!r}"
                    )

    # ------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every family and series."""
        metrics: Dict[str, Any] = {}
        for name, family in sorted(self._families.items()):
            series_out = []
            for key, series in sorted(family.series.items()):
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["buckets"] = [
                        [_format_bound(le), c]
                        for le, c in zip(
                            list(series.buckets) + [math.inf],
                            series.cumulative(),
                        )
                    ]
                    entry["sum"] = series.sum
                    entry["count"] = series.count
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            metrics[name] = {
                "type": family.kind,
                "help": family.help,
                "series": series_out,
            }
        return {"format": "repro.obs.metrics/v1", "metrics": metrics}

    def render_prometheus(self) -> str:
        """Text exposition of the current state (same names as JSON)."""
        return render_prometheus(self.to_dict())

    def write_json(self, path: str) -> None:
        """Write the snapshot to ``path`` as a JSON document."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# --------------------------------------------------------------- null sinks


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((math.inf,))

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — instrumentation fully off.

    Components check :attr:`enabled` before calling ``perf_counter``,
    so passing this registry removes the timing overhead too (the
    benchmark baseline in ``benchmarks/bench_obs_overhead.py``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._histogram = _NullHistogram()

    def counter(self, name, help_text="", labels=None):  # noqa: D102
        return self._counter

    def gauge(self, name, help_text="", labels=None):  # noqa: D102
        return self._gauge

    def histogram(
        self, name, help_text="", labels=None, buckets=DEFAULT_LATENCY_BUCKETS
    ):  # noqa: D102
        return self._histogram


#: Shared do-nothing registry for disabling instrumentation entirely.
NULL_REGISTRY = NullRegistry()

_default_registry = MetricsRegistry()


def get_default() -> MetricsRegistry:
    """The process-wide registry components instrument against."""
    return _default_registry


def set_default(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default."""
    global _default_registry
    _default_registry = registry
    return registry


def new_default() -> MetricsRegistry:
    """Install and return a fresh default registry (one per CLI run)."""
    return set_default(MetricsRegistry())


# ------------------------------------------------------------- exposition


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.to_dict` snapshot to text exposition.

    Works on a live snapshot or one loaded back from ``--metrics-out``
    JSON, so ``repro metrics metrics.json`` and a live scrape produce
    byte-identical metric names.
    """
    if snapshot.get("format") != "repro.obs.metrics/v1":
        raise MetricsError(
            f"not a repro.obs metrics snapshot: format={snapshot.get('format')!r}"
        )
    lines: List[str] = []
    for name, family in sorted(snapshot["metrics"].items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in family["series"]:
            labels = entry.get("labels", {})
            if family["type"] == "histogram":
                for le, cum in entry["buckets"]:
                    sel = _render_labels(labels, f'le="{le}"')
                    lines.append(f"{name}_bucket{sel} {int(cum)}")
                sel = _render_labels(labels)
                lines.append(f"{name}_sum{sel} {repr(float(entry['sum']))}")
                lines.append(f"{name}_count{sel} {int(entry['count'])}")
            else:
                sel = _render_labels(labels)
                lines.append(f"{name}{sel} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load a snapshot previously written by :meth:`write_json`."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if snapshot.get("format") != "repro.obs.metrics/v1":
        raise MetricsError(f"{path} is not a repro.obs metrics snapshot")
    return snapshot


def metric_names(snapshot: Mapping[str, Any]) -> Iterable[str]:
    """The family names present in a snapshot (for tests and tooling)."""
    return sorted(snapshot["metrics"])
