"""Live telemetry plane: a minimal asyncio HTTP admin endpoint.

Every observability artifact elsewhere in ``repro.obs`` is file-based
and post-hoc (metrics snapshots, Chrome traces, profiles). A
long-running :class:`repro.serve.DetectionService` needs the opposite:
an always-on surface that a scraper, a load balancer, or an operator's
``repro top`` can poll *while the service runs*.

:class:`TelemetryServer` is that surface — a deliberately small
GET-only HTTP/1.1 server built on ``asyncio.start_server`` (stdlib
only, same server-loop idiom as the wire protocol in
``repro.serve.service``). Handlers are plain synchronous callables
returning ``(status, content_type, body)``; the server adds headers,
closes the connection after one response, and maps handler exceptions
to 500 so a buggy route can never take the plane down.

Robustness contract (exercised in tests/obs/test_telemetry.py and,
under frame faults, tests/serve/test_telemetry.py):

- garbage bytes, overlong request lines, or a missing request line
  produce ``400 Bad Request`` (or a silent close), never a crash;
- non-GET methods get ``405``, unknown paths ``404``;
- each connection is bounded — one request, a read timeout, a capped
  header count — so a slow or hostile client cannot wedge the loop.

The serve integration (routes for ``/metrics``, ``/healthz``,
``/readyz``, ``/tenants``, ``/profile``) lives in
``repro.serve.service``; endpoint semantics are documented in
docs/OBSERVABILITY.md under "Live telemetry".
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.log import get_logger

_log = get_logger("obs.telemetry")

#: A route handler: takes no argument (exact route) or the path suffix
#: (prefix route) and returns ``(status, content_type, body)``.
Response = Tuple[int, str, str]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Longest request line we will read before giving up on the client.
_MAX_REQUEST_LINE = 4096
#: Most header lines consumed per request (we ignore their contents).
_MAX_HEADER_LINES = 64
#: Seconds a client gets to deliver its request line and headers.
_READ_TIMEOUT = 5.0


def json_response(doc: Any, status: int = 200) -> Response:
    """A JSON body with the right content type, keys sorted for diffs."""
    return status, "application/json", json.dumps(doc, sort_keys=True) + "\n"


def text_response(body: str, status: int = 200) -> Response:
    return status, "text/plain; version=0.0.4; charset=utf-8", body


class TelemetryServer:
    """GET-only asyncio HTTP server for live metrics/health exposition.

    Routes are registered before :meth:`start`; exact routes win over
    prefix routes. ``port=0`` binds an ephemeral port (the bound port
    is available as :attr:`port` after start), matching the serve
    listener's convention.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self._requested_port = port
        self._port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._routes: Dict[str, Callable[[], Response]] = {}
        self._prefixes: List[Tuple[str, Callable[[str], Response]]] = []
        self.requests_served = 0

    # ------------------------------------------------------------- routing

    def route(self, path: str, handler: Callable[[], Response]) -> None:
        """Register an exact route, e.g. ``route("/metrics", fn)``."""
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/', got {path!r}")
        self._routes[path] = handler

    def route_prefix(
        self, prefix: str, handler: Callable[[str], Response]
    ) -> None:
        """Register a prefix route; the handler receives the suffix.

        ``route_prefix("/tenants/", fn)`` maps ``GET /tenants/alice``
        to ``fn("alice")``. Longer prefixes are tried first.
        """
        if not prefix.startswith("/"):
            raise ValueError(
                f"route prefix must start with '/', got {prefix!r}"
            )
        self._prefixes.append((prefix, handler))
        self._prefixes.sort(key=lambda item: len(item[0]), reverse=True)

    def _dispatch(self, path: str) -> Response:
        handler = self._routes.get(path)
        if handler is not None:
            return handler()
        for prefix, prefix_handler in self._prefixes:
            if path.startswith(prefix):
                return prefix_handler(path[len(prefix):])
        return json_response({"error": f"no such path: {path}"}, status=404)

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns ``(host, port)`` actually bound."""
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.host, self._port

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("telemetry server is not started")
        return self._port

    async def stop(self) -> None:
        """Stop accepting; idempotent, in-flight responses finish."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------- one connection

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._respond(reader)
            if status is not None:
                self.requests_served += 1
                payload = body.encode("utf-8")
                head = (
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"
                    f"\r\nContent-Type: {content_type}"
                    f"\r\nContent-Length: {len(payload)}"
                    "\r\nConnection: close\r\n\r\n"
                )
                writer.write(head.encode("ascii") + payload)
                await writer.drain()
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client vanished or stalled; nothing to salvage
        except Exception:  # pragma: no cover - handler bugs land in 500 above
            _log.exception("telemetry connection failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[Optional[int], str, str]:
        """Parse one request and run its handler; never raises for bad input.

        Returns ``(None, ..., ...)`` — suppressing the response — only
        when the client closed before sending anything.
        """
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\n"), timeout=_READ_TIMEOUT
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None, "", ""  # clean close before any request
            return json_response({"error": "bad request line"}, status=400)
        except asyncio.LimitOverrunError:
            return json_response({"error": "request line too long"}, 400)
        if len(raw) > _MAX_REQUEST_LINE:
            return json_response({"error": "request line too long"}, 400)
        try:
            line = raw.decode("ascii").strip()
        except UnicodeDecodeError:
            return json_response({"error": "bad request line"}, status=400)
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return json_response({"error": "bad request line"}, status=400)
        method, target = parts[0], parts[1]
        # Drain headers so well-behaved clients aren't reset mid-send;
        # contents are irrelevant to a GET-only, close-per-request plane.
        for _ in range(_MAX_HEADER_LINES):
            try:
                header = await asyncio.wait_for(
                    reader.readuntil(b"\n"), timeout=_READ_TIMEOUT
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
            ):
                break
            if header.strip() == b"":
                break
        if method != "GET":
            return json_response(
                {"error": f"method {method} not allowed"}, status=405
            )
        path = target.split("?", 1)[0]
        try:
            return self._dispatch(path)
        except Exception as exc:
            _log.exception("telemetry handler for %r failed", path)
            return json_response(
                {"error": f"handler failed: {exc}"}, status=500
            )


async def fetch(host: str, port: int, path: str) -> Tuple[int, str]:
    """Tiny asyncio HTTP GET for tests, benches, and ``repro top``.

    Returns ``(status, body)``; raises ``ConnectionError`` /
    ``OSError`` when the endpoint is unreachable.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(request.encode("ascii"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    parts = status_line.split()
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ConnectionError(f"malformed HTTP response: {status_line!r}")
    return int(parts[1]), body.decode("utf-8", "replace")


__all__ = [
    "TelemetryServer",
    "Response",
    "json_response",
    "text_response",
    "fetch",
]
