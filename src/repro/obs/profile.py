"""Per-stage latency attribution: where does pipeline time actually go?

The metrics layer answers *how much* (counters, latency histograms) and
the span recorder answers *what happened* (a bounded event log); this
module answers *where the time goes*: a :class:`StageProfiler` folds the
exact same ``trace_span`` intervals the recorder sees into a cumulative
call tree — per stage path (``sim.quantum → source.emit →
analyzer.push[membus]``), wall **and** CPU time, with nested self/child
accounting so a parent's *self* time excludes everything attributed to
its children. There is no second set of timers: the span's single
``perf_counter`` read pair feeds both the recorder and the profiler, so
profiling cannot double-time a stage (``repro.obs.tracing``).

Two views come out of one run:

- **cumulative** — per stage path: calls, total/self wall, total/self
  CPU (the flamegraph view);
- **per-quantum** — a bounded ring of per-quantum rows mapping each
  stage label to its *self* time inside that quantum (spans stamped
  with a ``quantum`` attribute, which every pipeline span carries).

Exports: a ``repro.obs.profile/v1`` JSON document
(:meth:`StageProfiler.to_dict`), collapsed-stack flamegraph text
(:func:`render_collapsed` — feed to ``flamegraph.pl`` or speedscope),
speedscope JSON (:func:`to_speedscope` — drop the file on
https://speedscope.app), and a terminal top-N self-time table
(:func:`render_top`, the ``repro profile`` subcommand). Documents merge
(:meth:`StageProfiler.merge_dict`): the parallel trial runner ships one
profile per worker chunk back to the parent and folds them in canonical
chunk order, exactly like metrics snapshots (docs/PERFORMANCE.md).

Profiling is **opt-in** and off by default; while off, ``trace_span``
still returns the shared no-op context manager. Overhead with profiling
on is benchmarked in ``benchmarks/bench_obs_overhead.py`` (mode
``profile``) and must stay within 10% of fully-off with bit-identical
verdicts.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from time import perf_counter, process_time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs import tracing as _tracing

#: Format tag of the profile JSON document.
PROFILE_FORMAT = "repro.obs.profile/v1"


class ProfileError(ReproError):
    """A profile document is malformed or not a profile at all."""


class StageStats:
    """Cumulative timing of one stage path across all its calls."""

    __slots__ = ("calls", "wall", "cpu", "child_wall", "child_cpu")

    def __init__(self) -> None:
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.child_wall = 0.0
        self.child_cpu = 0.0

    @property
    def self_wall(self) -> float:
        """Wall time not attributed to any nested child stage."""
        return max(0.0, self.wall - self.child_wall)

    @property
    def self_cpu(self) -> float:
        return max(0.0, self.cpu - self.child_cpu)


class _Frame:
    """One live (entered, not yet exited) stage on the profiler stack."""

    __slots__ = ("label", "path", "t0", "c0", "child_wall", "child_cpu",
                 "quantum")

    def __init__(self, label, path, t0, c0, quantum):
        self.label = label
        self.path = path
        self.t0 = t0
        self.c0 = c0
        self.child_wall = 0.0
        self.child_cpu = 0.0
        self.quantum = quantum


def _stage_label(name: str, attrs: Mapping[str, Any]) -> str:
    """Stage label: the span name, per-unit for unit-scoped spans."""
    unit = attrs.get("unit")
    return f"{name}[{unit}]" if unit is not None else name


class StageProfiler:
    """Attributes wall and CPU time across nested pipeline stages.

    Driven by the ``trace_span`` blocks already present in the pipeline
    (:mod:`repro.obs.tracing` calls :meth:`begin`/:meth:`end` around
    each span); never times anything itself beyond one CPU-clock read
    per span edge — the wall clock reads are the span's own.
    """

    def __init__(
        self,
        max_quanta: int = 4096,
        cpu_clock: Callable[[], float] = process_time,
    ):
        if max_quanta <= 0:
            raise ProfileError(
                f"max_quanta must be positive, got {max_quanta}"
            )
        self.max_quanta = max_quanta
        self._cpu_clock = cpu_clock
        self._stats: Dict[Tuple[str, ...], StageStats] = {}
        self._stack: List[_Frame] = []
        self._quanta: "OrderedDict[int, Dict[str, List[float]]]" = (
            OrderedDict()
        )
        self.quanta_dropped = 0
        self.spans_profiled = 0
        #: Wall/CPU folded in from merged documents (see merge_dict).
        self._merged_wall = 0.0
        self._merged_cpu = 0.0
        self.origin = perf_counter()
        self._cpu_origin = cpu_clock()

    # ------------------------------------------------------------ recording

    def begin(self, name: str, attrs: Mapping[str, Any], t0: float) -> None:
        """Enter a stage; ``t0`` is the span's own perf_counter read."""
        label = _stage_label(name, attrs)
        parent = self._stack[-1] if self._stack else None
        path = parent.path + (label,) if parent is not None else (label,)
        quantum = attrs.get("quantum")
        if quantum is None and parent is not None:
            quantum = parent.quantum
        self._stack.append(
            _Frame(label, path, t0, self._cpu_clock(), quantum)
        )

    def end(self, t1: float) -> None:
        """Exit the innermost stage; ``t1`` is the span's exit read."""
        if not self._stack:  # unbalanced exit: drop rather than corrupt
            return
        frame = self._stack.pop()
        wall = t1 - frame.t0
        cpu = self._cpu_clock() - frame.c0
        stats = self._stats.get(frame.path)
        if stats is None:
            stats = self._stats[frame.path] = StageStats()
        stats.calls += 1
        stats.wall += wall
        stats.cpu += cpu
        stats.child_wall += frame.child_wall
        stats.child_cpu += frame.child_cpu
        if self._stack:
            parent = self._stack[-1]
            parent.child_wall += wall
            parent.child_cpu += cpu
        self.spans_profiled += 1
        if frame.quantum is not None:
            self._note_quantum(
                int(frame.quantum),
                frame.label,
                wall - frame.child_wall,
                cpu - frame.child_cpu,
            )

    def _note_quantum(
        self, quantum: int, label: str, self_wall: float, self_cpu: float
    ) -> None:
        row = self._quanta.get(quantum)
        if row is None:
            if len(self._quanta) >= self.max_quanta:
                self._quanta.popitem(last=False)
                self.quanta_dropped += 1
            row = self._quanta[quantum] = {}
        cell = row.get(label)
        if cell is None:
            row[label] = [self_wall, self_cpu]
        else:
            cell[0] += self_wall
            cell[1] += self_cpu

    # ------------------------------------------------------------ inspection

    def stats(self) -> Dict[Tuple[str, ...], StageStats]:
        """The live cumulative stats, keyed by stage path tuple."""
        return dict(self._stats)

    def total_wall(self) -> float:
        """Wall seconds since this profiler was created (plus merges)."""
        return perf_counter() - self.origin + self._merged_wall

    def attributed_wall(self) -> float:
        """Wall time accounted to root stages (the coverage numerator)."""
        return sum(
            s.wall for path, s in self._stats.items() if len(path) == 1
        )

    # -------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro.obs.profile/v1`` JSON document."""
        stages = []
        for path in sorted(self._stats):
            s = self._stats[path]
            stages.append({
                "path": list(path),
                "name": path[-1],
                "depth": len(path) - 1,
                "calls": s.calls,
                "wall_s": s.wall,
                "cpu_s": s.cpu,
                "self_wall_s": s.self_wall,
                "self_cpu_s": s.self_cpu,
            })
        rows = [
            {
                "quantum": quantum,
                "stages": {
                    label: {"self_wall_s": cell[0], "self_cpu_s": cell[1]}
                    for label, cell in sorted(row.items())
                },
            }
            for quantum, row in self._quanta.items()
        ]
        return {
            "format": PROFILE_FORMAT,
            "wall_s": self.total_wall(),
            "cpu_s": self._cpu_clock() - self._cpu_origin + self._merged_cpu,
            "spans": self.spans_profiled,
            "stages": stages,
            "quanta": {"rows": rows, "dropped": self.quanta_dropped},
        }

    def write_json(self, path: str) -> Dict[str, Any]:
        doc = self.to_dict()
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return doc

    # --------------------------------------------------------------- merge

    def merge_dict(self, doc: Mapping[str, Any]) -> None:
        """Fold another profile document into this profiler.

        Stage stats add per path; per-quantum rows add per quantum
        index; ``wall_s``/``cpu_s`` accumulate. This is how the trial
        runner gathers per-chunk worker profiles — merged in canonical
        chunk order, like metrics snapshots, so the result is identical
        at any job count (sums commute; the order discipline keeps the
        two artifact kinds on one contract).
        """
        _require_profile(doc)
        for entry in doc["stages"]:
            path = tuple(entry["path"])
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = StageStats()
            stats.calls += int(entry["calls"])
            stats.wall += float(entry["wall_s"])
            stats.cpu += float(entry["cpu_s"])
            stats.child_wall += float(entry["wall_s"]) - float(
                entry["self_wall_s"]
            )
            stats.child_cpu += float(entry["cpu_s"]) - float(
                entry["self_cpu_s"]
            )
        for row in doc["quanta"]["rows"]:
            for label, cell in row["stages"].items():
                self._note_quantum(
                    int(row["quantum"]), label,
                    float(cell["self_wall_s"]), float(cell["self_cpu_s"]),
                )
        self.quanta_dropped += int(doc["quanta"]["dropped"])
        self.spans_profiled += int(doc["spans"])
        self._merged_wall += float(doc["wall_s"])
        self._merged_cpu += float(doc["cpu_s"])


# ------------------------------------------------------------- global hook


def enable_profiling(
    profiler: Optional[StageProfiler] = None,
) -> StageProfiler:
    """Install ``profiler`` (or a fresh one) as the active span profiler.

    Every subsequent ``trace_span`` block feeds it, alongside the span
    recorder when tracing is also enabled — same clock reads, no double
    timing.
    """
    if profiler is None:
        profiler = StageProfiler()
    _tracing.set_profiler(profiler)
    return profiler


def disable_profiling() -> None:
    """Stop profiling; ``trace_span`` reverts to recorder-only/no-op."""
    _tracing.set_profiler(None)


def profiling_enabled() -> bool:
    return _tracing.get_profiler() is not None


def get_profiler() -> Optional[StageProfiler]:
    """The active profiler, or None when profiling is disabled."""
    return _tracing.get_profiler()


# ------------------------------------------------------------ doc helpers


def _require_profile(doc: Mapping[str, Any]) -> None:
    if not isinstance(doc, Mapping) or doc.get("format") != PROFILE_FORMAT:
        raise ProfileError(
            "not a repro.obs profile document "
            f"(format={doc.get('format')!r} if doc is a mapping)"
            if isinstance(doc, Mapping)
            else "not a repro.obs profile document"
        )


def load_profile(path: str) -> Dict[str, Any]:
    """Load a document written by ``--profile-out`` / :meth:`write_json`."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("format") != PROFILE_FORMAT:
        raise ProfileError(f"{path} is not a repro.obs profile document")
    return doc


def merge_profiles(docs) -> Dict[str, Any]:
    """Merge profile documents into one (order-insensitive sums)."""
    merged = StageProfiler()
    for doc in docs:
        merged.merge_dict(doc)
    out = merged.to_dict()
    # A pure merger contributes no measured time of its own: report the
    # summed input wall/CPU, not the merger's clock.
    out["wall_s"] = merged._merged_wall
    out["cpu_s"] = merged._merged_cpu
    return out


def render_collapsed(doc: Mapping[str, Any]) -> str:
    """Collapsed-stack flamegraph text: ``a;b;c <self-µs>`` per line.

    The weight is each path's *self* wall time in integer microseconds,
    the format ``flamegraph.pl`` and speedscope both ingest directly.
    """
    _require_profile(doc)
    lines = []
    for entry in doc["stages"]:
        micros = int(round(float(entry["self_wall_s"]) * 1e6))
        if micros <= 0:
            continue
        lines.append(f"{';'.join(entry['path'])} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(
    doc: Mapping[str, Any], name: str = "repro profile"
) -> Dict[str, Any]:
    """A speedscope ``sampled`` profile: one sample per stage path,
    weighted by its cumulative self wall time."""
    _require_profile(doc)
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}
    samples: List[List[int]] = []
    weights: List[float] = []
    for entry in doc["stages"]:
        weight = float(entry["self_wall_s"])
        if weight <= 0.0:
            continue
        stack = []
        for label in entry["path"]:
            idx = frame_index.get(label)
            if idx is None:
                idx = frame_index[label] = len(frames)
                frames.append({"name": label})
            stack.append(idx)
        samples.append(stack)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "activeProfileIndex": 0,
        "exporter": "repro.obs.profile",
        "name": name,
    }


def render_top(doc: Mapping[str, Any], n: int = 15) -> str:
    """Terminal table of the top-``n`` stages by cumulative self time."""
    _require_profile(doc)
    stages = sorted(
        doc["stages"], key=lambda e: float(e["self_wall_s"]), reverse=True
    )[:max(1, n)]
    total_self = sum(float(e["self_wall_s"]) for e in doc["stages"])
    wall = float(doc["wall_s"])
    header = (
        f"{'self s':>10}  {'self %':>6}  {'total s':>10}  {'cpu s':>10}  "
        f"{'calls':>8}  stage"
    )
    lines = [header, "-" * len(header)]
    for entry in stages:
        self_s = float(entry["self_wall_s"])
        share = 100.0 * self_s / total_self if total_self > 0 else 0.0
        indent = "  " * int(entry["depth"])
        lines.append(
            f"{self_s:10.6f}  {share:5.1f}%  {float(entry['wall_s']):10.6f}"
            f"  {float(entry['self_cpu_s']):10.6f}  {int(entry['calls']):8d}"
            f"  {indent}{entry['name']}"
        )
    attributed = sum(
        float(e["wall_s"]) for e in doc["stages"] if int(e["depth"]) == 0
    )
    coverage = 100.0 * attributed / wall if wall > 0 else 0.0
    lines.append(
        f"\n{doc['spans']} spans over {wall:.6f}s wall "
        f"({attributed:.6f}s attributed to stages, {coverage:.1f}%)"
    )
    dropped = int(doc["quanta"]["dropped"])
    if dropped:
        lines.append(f"per-quantum rows dropped by ring bound: {dropped}")
    return "\n".join(lines) + "\n"
