"""Structured logging for the reproduction (``repro.*`` logger tree).

Every component gets a namespaced logger via :func:`get_logger`
(``get_logger("pipeline.session")`` → ``repro.pipeline.session``), so
operators can raise verbosity for one subsystem without drowning in the
rest. :func:`configure_logging` installs a single handler on the
``repro`` root — human-readable lines by default, one JSON object per
line with ``--log-json`` for log shippers.

The library itself logs sparingly and only at ``DEBUG``/``INFO``
(quantum loop progress, first detections, replay summaries); nothing is
emitted unless :func:`configure_logging` (or the CLI's ``--log-level``)
opts in. Handlers are attached to the ``repro`` logger, not the global
root, so embedding applications keep full control.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO

ROOT_LOGGER_NAME = "repro"

#: Marker attribute so reconfiguration replaces only our own handler.
_HANDLER_TAG = "_repro_obs_handler"

#: LogRecord attributes that are plumbing, not user payload.
_RESERVED = set(
    logging.LogRecord(
        "x", logging.INFO, "x", 0, "x", None, None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def get_logger(component: str) -> logging.Logger:
    """The logger for a dotted component name under the ``repro`` tree."""
    if component == ROOT_LOGGER_NAME or component.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        return logging.getLogger(component)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{component}")


def configure_logging(
    level: str = "WARNING",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    Idempotent: a previous handler installed by this function is
    replaced, handlers installed by anyone else are left alone.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    if json_mode:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
            )
        )
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
