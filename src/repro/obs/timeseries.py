"""Metrics time series: periodic registry snapshots as bounded JSONL.

A :class:`~repro.obs.metrics.MetricsRegistry` snapshot is a point in
time; leakage auditing is an *ongoing* process, so operators need the
trajectory — when did the first-detection gauge move, how fast did the
event counters climb, when did fault counters start ticking. A
:class:`MetricsSampler` turns a registry into that trajectory:

- **two clocks** — sample every N sim quanta (``every_quanta``, exact
  and deterministic) and/or every S wall-clock seconds
  (``every_seconds``, for long real-time runs); :meth:`sample` always
  takes one unconditionally;
- **bounded retention** — samples live in a ring buffer (``capacity``),
  newest kept, evictions counted, so a sampler can run forever;
- **flat records** — each sample flattens the registry into
  ``{series_key: value}`` where ``series_key`` is the Prometheus-style
  ``name{label="value",...}`` string; histograms contribute
  ``name_sum`` / ``name_count`` series. Consumers never re-parse the
  nested snapshot schema;
- **merge-aware** — ``repro.exec.TrialRunner`` folds worker registry
  snapshots into the parent in canonical chunk order and can take one
  sample after each fold (its ``sampler=`` hook), yielding a
  deterministic "merge progress" series for parallel sweeps;
  :func:`merge_records` interleaves series from several workers into
  one deterministic timeline.

The JSONL file (:data:`TIMESERIES_FORMAT`) starts with a header line
and holds one sample per line — append-friendly, tail-friendly, and
diff-friendly. ``examples/forensic_report.py`` and the ``repro report``
timeseries section consume it; the schema is in docs/FORENSICS.md.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_default

#: Format tag on a time-series JSONL header line.
TIMESERIES_FORMAT = "repro.obs.timeseries/v1"

#: Default ring capacity: at one sample per quantum this covers well
#: past the clustering horizon; on wall clocks, hours of 1 Hz sampling.
DEFAULT_CAPACITY = 4096


class TimeseriesError(ReproError):
    """A time-series JSONL file is malformed."""


def _series_key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def flatten_snapshot(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a registry snapshot into ``{series_key: value}``.

    Counters and gauges map to their value; each histogram series maps
    to two keys, ``<name>_sum`` and ``<name>_count``. Keys follow the
    Prometheus exposition syntax so time-series rows and scrape output
    agree on naming.
    """
    flat: Dict[str, float] = {}
    for name, family in snapshot.get("metrics", {}).items():
        kind = family.get("type")
        for series in family.get("series", ()):
            labels = series.get("labels", {})
            if kind == "histogram":
                flat[_series_key(f"{name}_sum", labels)] = float(
                    series["sum"]
                )
                flat[_series_key(f"{name}_count", labels)] = float(
                    series["count"]
                )
            else:
                flat[_series_key(name, labels)] = float(series["value"])
    return flat


class MetricsSampler:
    """Periodically snapshots a registry into a bounded sample ring."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        every_quanta: Optional[int] = None,
        every_seconds: Optional[float] = None,
        capacity: int = DEFAULT_CAPACITY,
        source: str = "main",
        clock: Callable[[], float] = time.monotonic,
    ):
        if every_quanta is not None and every_quanta < 1:
            raise TimeseriesError(
                f"every_quanta must be >= 1, got {every_quanta}"
            )
        if every_seconds is not None and every_seconds <= 0:
            raise TimeseriesError(
                f"every_seconds must be > 0, got {every_seconds}"
            )
        if capacity < 1:
            raise TimeseriesError(f"capacity must be >= 1, got {capacity}")
        self._registry = registry
        self.every_quanta = every_quanta
        self.every_seconds = every_seconds
        self.capacity = int(capacity)
        self.source = source
        self._clock = clock
        self._samples: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.samples_taken = 0
        self.samples_dropped = 0
        self._t0: Optional[float] = None
        self._last_wall: Optional[float] = None
        self._last_quantum: Optional[int] = None
        m = self.registry
        labels = {"source": source}
        self._m_samples = m.counter(
            "cchunter_sampler_samples_total",
            "metrics time-series samples taken",
            labels,
        )
        self._m_dropped = m.counter(
            "cchunter_sampler_dropped_total",
            "time-series samples evicted by the sampler's ring bound",
            labels,
        )

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_default()

    # --------------------------------------------------------------- sampling

    def sample(
        self, quantum: Optional[int] = None, label: Optional[str] = None
    ) -> Dict[str, Any]:
        """Take one sample unconditionally and return the record."""
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        self._m_samples.inc()
        record = {
            "seq": self.samples_taken,
            "t_s": now - self._t0,
            "quantum": None if quantum is None else int(quantum),
            "source": self.source,
            "values": flatten_snapshot(self.registry.to_dict()),
        }
        if label is not None:
            record["label"] = label
        if len(self._samples) == self._samples.maxlen:
            self.samples_dropped += 1
            self._m_dropped.inc()
        self._samples.append(record)
        self.samples_taken += 1
        self._last_wall = now
        if quantum is not None:
            self._last_quantum = quantum
        return record

    def maybe_sample(
        self, quantum: Optional[int] = None
    ) -> Optional[Dict[str, Any]]:
        """Take a sample iff a configured clock says it is due.

        With ``every_quanta`` set and a ``quantum`` given, the quantum
        clock decides (deterministic: fires when at least that many
        quanta passed since the last sample). Otherwise the wall clock
        decides, when ``every_seconds`` is set. With neither configured
        this never samples — call :meth:`sample` directly instead.
        """
        if self.every_quanta is not None and quantum is not None:
            if (
                self._last_quantum is None
                or quantum - self._last_quantum >= self.every_quanta
            ):
                return self.sample(quantum=quantum)
            return None
        if self.every_seconds is not None:
            now = self._clock()
            if (
                self._last_wall is None
                or now - self._last_wall >= self.every_seconds
            ):
                return self.sample(quantum=quantum)
        return None

    # ---------------------------------------------------------------- access

    def records(self) -> List[Dict[str, Any]]:
        """Retained samples, oldest first."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    # ------------------------------------------------------------------- I/O

    def header(self) -> Dict[str, Any]:
        return {
            "format": TIMESERIES_FORMAT,
            "source": self.source,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "samples_dropped": self.samples_dropped,
        }

    def write_jsonl(self, path: str) -> int:
        """Write header + retained samples as JSON lines; returns count."""
        records = self.records()
        with open(path, "w") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a time-series JSONL file; returns ``(header, records)``."""
    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TimeseriesError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if lineno == 1:
                if obj.get("format") != TIMESERIES_FORMAT:
                    raise TimeseriesError(
                        f"{path} is not a metrics time series "
                        f"(expected format {TIMESERIES_FORMAT!r})"
                    )
                header = obj
            else:
                records.append(obj)
    if header is None:
        raise TimeseriesError(f"{path} is empty")
    return header, records


def merge_records(
    series: Iterable[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Interleave several workers' records into one deterministic list.

    Records that carry a quantum sort by ``(quantum, source, seq)``;
    pure wall-clock records keep their per-source order and sort by
    ``(source, seq)`` after the quantum-stamped ones. Wall-clock times
    from different processes are never compared — they share no epoch.
    The result depends only on the records, not on arrival order.
    """
    merged: List[Dict[str, Any]] = []
    for records in series:
        merged.extend(records)

    def key(record: Dict[str, Any]):
        quantum = record.get("quantum")
        return (
            0 if quantum is not None else 1,
            quantum if quantum is not None else 0,
            str(record.get("source", "")),
            int(record.get("seq", 0)),
        )

    return sorted(merged, key=key)


def series_values(
    records: Iterable[Dict[str, Any]], series_key: str
) -> List[Tuple[float, float]]:
    """Extract one series as ``[(x, value)]`` from sample records.

    ``x`` is the record's quantum when stamped, else its ``t_s``.
    Records that never saw the series are skipped.
    """
    points: List[Tuple[float, float]] = []
    for record in records:
        values = record.get("values", {})
        if series_key in values:
            x = record.get("quantum")
            if x is None:
                x = record.get("t_s", 0.0)
            points.append((float(x), float(values[series_key])))
    return points


def series_keys(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Every series key observed across the records, sorted."""
    keys = set()
    for record in records:
        keys.update(record.get("values", {}))
    return sorted(keys)
