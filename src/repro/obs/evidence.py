"""Evidence bundles: the "why" behind every CC-Hunter verdict.

A verdict is ultimately a security *accusation* — a likelihood ratio
crossing 0.5, an autocorrelogram peak near 0.9 — and the paper's own
figures (event trains, density histograms, correlograms) are exactly
what a human auditor needs to trust or dismiss it. An
:class:`EvidenceBundle` is the bounded per-unit record each analyzer
keeps of that supporting signal while it runs:

- **LR trajectory** — the per-quantum burst likelihood ratio
  (:class:`~repro.core.burst.BurstAnalysis`), so an auditor can see the
  indicator rise, not just its final value;
- **density-histogram snapshots** — the full histogram captured at every
  LR threshold crossing (the paper's Figure 6 view, frozen at the
  moments that matter);
- **autocorrelogram evidence** — per-window peak lags/heights, dominant
  period, anti-correlation dip and coverage, plus one full correlogram
  snapshot frozen at the first significant window (Figure 8);
- **cluster assignments** — the latest recurrence clustering's window
  labels, burst clusters, and aggregate histogram (Figure 4/6 context);
- **fault tags and health transitions** — the PR-4 degradation story
  (`drop:`/`corrupt:` tags, OK→DEGRADED→FAILED edges) time-aligned with
  the detection signal;
- **verdict timeline** — every detected/clear flip, by quantum.

Capture is **strictly read-only**: analyzers record values they already
computed, so verdicts are bit-identical with capture on or off
(``benchmarks/bench_obs_overhead.py`` holds the overhead under 15%).
Every list is a ring buffer (newest kept, drops counted in
``dropped``), so a bundle's memory is bounded no matter how long the
session runs.

Serialization round-trips exactly: ``from_dict(b.to_dict()).to_dict()
== b.to_dict()``, including through JSON (all values are plain Python
scalars/lists). :func:`write_evidence` / :func:`load_evidence` persist a
whole session's bundles as one self-describing document
(:data:`EVIDENCE_FORMAT`). See docs/FORENSICS.md for the schema and
``repro report`` for the renderer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_default

#: Format tag stamped on every evidence document.
EVIDENCE_FORMAT = "repro.obs.evidence/v1"

#: Default ring capacity for per-quantum trajectories.
DEFAULT_CAPACITY = 1024

#: Default ring capacity for full-array snapshots (histograms, ACF
#: windows) — these are wide records, so the bound is much tighter.
DEFAULT_SNAPSHOT_CAPACITY = 16


class EvidenceError(ReproError):
    """An evidence document is malformed or failed validation on load.

    The CLI maps this to the corrupt-input exit code (4), same family
    as :class:`~repro.errors.TraceCorruptionError`.
    """


def _floats(values) -> List[float]:
    return [float(v) for v in values]


def _ints(values) -> List[int]:
    return [int(v) for v in values]


class EvidenceBundle:
    """Bounded forensic record for one audited unit.

    Analyzers call the ``record_*`` methods with values they already
    computed; consumers read :meth:`to_dict`. The ``capacity`` /
    ``snapshot_capacity`` bounds are part of the serialized form so a
    loaded bundle keeps behaving like the original.
    """

    #: Ring-buffered list fields (name -> capacity attribute).
    _RINGS = (
        "lr_trajectory",
        "peak_trajectory",
        "fault_events",
        "health_transitions",
        "verdict_timeline",
    )
    _SNAPSHOT_RINGS = ("histogram_snapshots", "acf_windows")

    def __init__(
        self,
        unit: str,
        method: str,
        capacity: int = DEFAULT_CAPACITY,
        snapshot_capacity: int = DEFAULT_SNAPSHOT_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1 or snapshot_capacity < 1:
            raise EvidenceError("evidence capacities must be >= 1")
        self.unit = unit
        self.method = method
        self.capacity = int(capacity)
        self.snapshot_capacity = int(snapshot_capacity)
        #: [quantum, likelihood_ratio] per analyzed quantum (burst).
        self.lr_trajectory: Deque[List[Any]] = deque(maxlen=self.capacity)
        #: [quantum, max_peak] per analyzed window (oscillation).
        self.peak_trajectory: Deque[List[Any]] = deque(maxlen=self.capacity)
        #: Histogram snapshots at LR threshold crossings.
        self.histogram_snapshots: Deque[Dict[str, Any]] = deque(
            maxlen=self.snapshot_capacity
        )
        #: Per-window autocorrelogram analyses (peaks only, no full ACF).
        self.acf_windows: Deque[Dict[str, Any]] = deque(
            maxlen=self.snapshot_capacity
        )
        #: One full correlogram, frozen at the first significant window
        #: (tracks the latest window until one is significant).
        self.acf_snapshot: Optional[Dict[str, Any]] = None
        #: Latest recurrence clustering (labels + aggregate histogram).
        self.cluster_snapshot: Optional[Dict[str, Any]] = None
        #: [quantum, tag] per flagged input fault.
        self.fault_events: Deque[List[Any]] = deque(maxlen=self.capacity)
        #: [quantum, health] health *transitions* (dedup consecutive).
        self.health_transitions: Deque[List[Any]] = deque(
            maxlen=self.capacity
        )
        #: [quantum, detected] verdict *flips* (dedup consecutive).
        self.verdict_timeline: Deque[List[Any]] = deque(maxlen=self.capacity)
        #: Per-ring counts of records evicted by the capacity bound.
        self.dropped: Dict[str, int] = {}
        m = metrics if metrics is not None else get_default()
        labels = {"unit": unit}
        self._m_records = m.counter(
            "cchunter_evidence_records_total",
            "evidence records captured into per-unit bundles",
            labels,
        )
        self._m_dropped = m.counter(
            "cchunter_evidence_dropped_total",
            "evidence records evicted by a bundle's ring-buffer bound",
            labels,
        )

    # ------------------------------------------------------------- recording

    def _push(self, ring_name: str, record) -> None:
        ring: Deque = getattr(self, ring_name)
        if len(ring) == ring.maxlen:
            self.dropped[ring_name] = self.dropped.get(ring_name, 0) + 1
            self._m_dropped.inc()
        ring.append(record)
        self._m_records.inc()

    def record_lr(self, quantum: int, likelihood_ratio: float) -> None:
        self._push("lr_trajectory", [int(quantum), float(likelihood_ratio)])

    def record_peak(self, quantum: int, max_peak: float) -> None:
        self._push("peak_trajectory", [int(quantum), float(max_peak)])

    def record_histogram(
        self, quantum: int, reason: str, hist, analysis
    ) -> None:
        """Freeze a full density histogram (e.g. at a threshold crossing)."""
        self._push(
            "histogram_snapshots",
            {
                "quantum": int(quantum),
                "reason": str(reason),
                "likelihood_ratio": float(analysis.likelihood_ratio),
                "threshold_bin": int(analysis.threshold_bin),
                "hist": _ints(hist),
            },
        )

    def record_acf_window(self, quantum: int, analysis) -> None:
        """One oscillation window's peak summary (no full correlogram)."""
        self._push(
            "acf_windows",
            {
                "quantum": int(quantum),
                "peak_lags": _ints(analysis.peak_lags),
                "peak_heights": _floats(analysis.peak_heights),
                "dominant_period": (
                    None
                    if analysis.dominant_period is None
                    else float(analysis.dominant_period)
                ),
                "min_dip": float(analysis.min_dip),
                "coverage": float(analysis.coverage),
                "significant": bool(analysis.significant),
            },
        )

    def record_acf(self, quantum: int, acf, analysis) -> None:
        """Keep one full correlogram: latest until the first significant.

        Flagged units therefore always carry the correlogram of their
        *first* significant window (the paper's Figure 8 moment); clear
        units carry the last analyzed window's correlogram instead.
        """
        if self.acf_snapshot is not None and self.acf_snapshot["significant"]:
            return
        self.acf_snapshot = {
            "quantum": int(quantum),
            "acf": _floats(acf),
            "peak_lags": _ints(analysis.peak_lags),
            "significant": bool(analysis.significant),
        }
        self._m_records.inc()

    def set_cluster(self, quantum: int, recurrence, aggregate_hist) -> None:
        """Overwrite the latest recurrence-clustering snapshot."""
        self.cluster_snapshot = {
            "quantum": int(quantum),
            "labels": _ints(recurrence.cluster_labels),
            "burst_clusters": _ints(recurrence.burst_clusters),
            "burst_window_indices": _ints(recurrence.burst_window_indices),
            "recurrent": bool(recurrence.recurrent),
            "aggregate_hist": _ints(aggregate_hist),
        }
        self._m_records.inc()

    def record_fault(self, quantum: int, tag: str) -> None:
        self._push("fault_events", [int(quantum), str(tag)])

    def record_health(self, quantum: int, health: str) -> None:
        """Record a health *transition* (consecutive repeats dedup)."""
        if (
            self.health_transitions
            and self.health_transitions[-1][1] == health
        ):
            return
        self._push("health_transitions", [int(quantum), str(health)])

    def record_verdict(self, quantum: int, detected: bool) -> None:
        """Record a verdict *flip* (consecutive repeats dedup)."""
        detected = bool(detected)
        if (
            self.verdict_timeline
            and self.verdict_timeline[-1][1] == detected
        ):
            return
        self._push("verdict_timeline", [int(quantum), detected])

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """Plain-Python, JSON-stable view; exact round-trip contract."""
        return {
            "unit": self.unit,
            "method": self.method,
            "capacity": self.capacity,
            "snapshot_capacity": self.snapshot_capacity,
            "lr_trajectory": [list(r) for r in self.lr_trajectory],
            "peak_trajectory": [list(r) for r in self.peak_trajectory],
            "histogram_snapshots": [
                dict(r) for r in self.histogram_snapshots
            ],
            "acf_windows": [dict(r) for r in self.acf_windows],
            "acf_snapshot": (
                None if self.acf_snapshot is None else dict(self.acf_snapshot)
            ),
            "cluster_snapshot": (
                None
                if self.cluster_snapshot is None
                else dict(self.cluster_snapshot)
            ),
            "fault_events": [list(r) for r in self.fault_events],
            "health_transitions": [
                list(r) for r in self.health_transitions
            ],
            "verdict_timeline": [list(r) for r in self.verdict_timeline],
            "dropped": dict(self.dropped),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any],
        metrics: Optional[MetricsRegistry] = None,
    ) -> "EvidenceBundle":
        try:
            bundle = cls(
                unit=data["unit"],
                method=data["method"],
                capacity=data["capacity"],
                snapshot_capacity=data["snapshot_capacity"],
                metrics=metrics,
            )
        except KeyError as exc:
            raise EvidenceError(f"evidence bundle missing field {exc}") from None
        for name in cls._RINGS + cls._SNAPSHOT_RINGS:
            ring: Deque = getattr(bundle, name)
            for record in data.get(name, ()):
                ring.append(
                    dict(record) if isinstance(record, Mapping)
                    else list(record)
                )
        bundle.acf_snapshot = (
            None if data.get("acf_snapshot") is None
            else dict(data["acf_snapshot"])
        )
        bundle.cluster_snapshot = (
            None if data.get("cluster_snapshot") is None
            else dict(data["cluster_snapshot"])
        )
        bundle.dropped = dict(data.get("dropped", {}))
        return bundle


# ---------------------------------------------------------------- documents


def evidence_document(
    bundles: Mapping[str, Any],
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One session's bundles as a self-describing document.

    ``bundles`` maps unit name to an :class:`EvidenceBundle` or an
    already-serialized bundle dict; ``meta`` carries run context the
    report renderer shows (channel, seed, the final report dict, ...).
    """
    units = {}
    for unit, bundle in bundles.items():
        units[unit] = (
            bundle.to_dict() if isinstance(bundle, EvidenceBundle)
            else dict(bundle)
        )
    return {
        "format": EVIDENCE_FORMAT,
        "meta": dict(meta) if meta else {},
        "units": units,
    }


def write_evidence(
    path: str,
    bundles: Mapping[str, Any],
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize a session's evidence to ``path``; returns the document."""
    doc = evidence_document(bundles, meta)
    with open(path, "w") as handle:
        json.dump(doc, handle, sort_keys=True)
        handle.write("\n")
    return doc


def load_evidence(path: str) -> Dict[str, Any]:
    """Load and validate an evidence document written by this module."""
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise EvidenceError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("format") != EVIDENCE_FORMAT:
        raise EvidenceError(
            f"{path} is not an evidence document "
            f"(expected format {EVIDENCE_FORMAT!r})"
        )
    if not isinstance(doc.get("units"), dict):
        raise EvidenceError(f"{path} has no 'units' mapping")
    return doc
