"""Lightweight span tracing with a ring-buffer recorder.

Where the metrics registry answers *how much* (counters, latency
distributions), spans answer *where the time went* on a concrete run:
each ``with trace_span("analyzer.push", unit="membus"):`` block records
one timed interval into a bounded ring buffer, exportable as plain JSON
or as a Chrome-trace (``chrome://tracing`` / Perfetto) document.

Tracing is **opt-in** and off by default. When disabled, ``trace_span``
returns a shared no-op context manager without reading the clock, so
leaving the ``with`` blocks in hot paths costs one global read and one
function call per span — measured in ``benchmarks/bench_obs_overhead.py``.

The same span intervals can additionally (or instead) feed a
:class:`repro.obs.profile.StageProfiler` installed via
:func:`set_profiler`: the live span hands its *single* pair of
``perf_counter`` reads to both the recorder and the profiler, so a
stage is never timed twice and the two artifacts can never disagree
about a duration.

Span taxonomy (see docs/OBSERVABILITY.md): dotted lowercase names,
``component.operation`` — ``sim.quantum``, ``source.emit``,
``analyzer.push``, ``session.verdicts``, ``session.sinks``,
``replay.run``. Attributes are small scalars (unit names, quantum
indices), never bulk data.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from collections import deque
from time import perf_counter
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Union


class SpanRecord(NamedTuple):
    """One completed span: name, start (s, recorder-relative), duration."""

    name: str
    start: float
    duration: float
    attrs: Dict[str, Any]


class TraceContext(NamedTuple):
    """Cross-process trace correlation carried on serve wire frames.

    ``trace_id`` names one logical client→server flow; ``parent_span``
    is the sender-side span id the receiver's spans hang under. Both
    are opaque hex strings — see :func:`new_trace_id` /
    :func:`new_span_id` — serialized by
    ``repro.pipeline.codec.trace_context_to_dict``.
    """

    trace_id: str
    parent_span: str = ""


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (one per client connection)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id (one per parented span)."""
    return uuid.uuid4().hex[:8]


class SpanRecorder:
    """Bounded in-memory store of completed spans (newest kept)."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"span capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.origin = perf_counter()
        # Stamped at construction so traces merged across TrialRunner
        # workers land on distinct Chrome/Perfetto rows instead of all
        # collapsing onto pid 0 / tid 0.
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._spans: Deque[SpanRecord] = deque(maxlen=capacity)
        self.spans_recorded = 0
        self.spans_dropped = 0

    def record(
        self, name: str, start: float, duration: float, attrs: Dict[str, Any]
    ) -> None:
        if len(self._spans) == self.capacity:
            self.spans_dropped += 1
        self._spans.append(
            SpanRecord(name, start - self.origin, duration, attrs)
        )
        self.spans_recorded += 1

    def spans(self) -> List[SpanRecord]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    # ------------------------------------------------------------- export

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Spans as plain dicts (JSON lines, tests, notebooks)."""
        return [
            {
                "name": s.name,
                "start_s": s.start,
                "duration_s": s.duration,
                "attrs": s.attrs,
            }
            for s in self._spans
        ]

    def to_chrome_trace(self) -> Dict[str, Any]:
        """A Chrome-trace document (load in chrome://tracing or Perfetto)."""
        events = [
            {
                "name": s.name,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": self.pid,
                "tid": self.tid,
                "args": s.attrs,
            }
            for s in self._spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")


class _Span:
    """A live span: times its ``with`` block into recorder/profiler.

    One ``perf_counter`` read on entry and one on exit feed *both*
    consumers — the ring-buffer recorder and the stage profiler — so
    enabling both never times an interval twice.
    """

    __slots__ = ("_recorder", "_profiler", "name", "attrs", "_t0")

    def __init__(
        self,
        recorder: Optional[SpanRecorder],
        profiler: Optional[Any],
        name: str,
        attrs: Dict[str, Any],
    ):
        self._recorder = recorder
        self._profiler = profiler
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        if self._profiler is not None:
            self._profiler.begin(self.name, self.attrs, self._t0)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = perf_counter()
        if self._recorder is not None:
            self._recorder.record(
                self.name, self._t0, t1 - self._t0, self.attrs
            )
        if self._profiler is not None:
            self._profiler.end(t1)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


def merge_remote_trace(
    *sources: Union[SpanRecorder, Dict[str, Any]],
    trace_id: Optional[str] = None,
    names: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Join client- and server-side span buffers into one Chrome trace.

    Each source is a :class:`SpanRecorder` or an already-exported
    Chrome-trace dict. Sources are assigned distinct ``pid`` rows
    (labelled via ``process_name`` metadata events, default
    ``source-<i>`` or the given ``names``) so a client and a server
    that happen to share an OS pid — every serve test — still land on
    separate tracks. With ``trace_id`` given, only spans whose
    ``args["trace_id"]`` matches are kept, which is how one tenant's
    flow is isolated from a busy service's buffer.

    Timestamps stay source-relative (each recorder's own origin);
    merged traces answer "where did the latency go per side", not
    "what was the wire clock skew" — the wire gap is visible as the
    delta between a client ``wire`` span and the matching server
    ``queue_wait`` span for the same quantum.
    """
    events: List[Dict[str, Any]] = []
    for index, source in enumerate(sources):
        label = (
            names[index]
            if names is not None and index < len(names)
            else f"source-{index}"
        )
        doc = (
            source.to_chrome_trace()
            if isinstance(source, SpanRecorder)
            else source
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": index,
                "args": {"name": label},
            }
        )
        for event in doc.get("traceEvents", []):
            if event.get("ph") == "M":
                continue
            args = event.get("args") or {}
            if trace_id is not None and args.get("trace_id") != trace_id:
                continue
            merged = dict(event)
            merged["pid"] = index
            events.append(merged)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_NOOP_SPAN = _NoopSpan()
_recorder: Optional[SpanRecorder] = None
# The active StageProfiler (repro.obs.profile), if any. Typed as Any to
# keep this module free of an import cycle with repro.obs.profile.
_profiler: Optional[Any] = None


def enable_tracing(capacity: int = 4096) -> SpanRecorder:
    """Start recording spans into a fresh ring buffer; returns it."""
    global _recorder
    _recorder = SpanRecorder(capacity)
    return _recorder


def disable_tracing() -> None:
    """Stop recording; subsequent ``trace_span`` calls are no-ops."""
    global _recorder
    _recorder = None


def tracing_enabled() -> bool:
    return _recorder is not None


def get_recorder() -> Optional[SpanRecorder]:
    """The active recorder, or None when tracing is disabled."""
    return _recorder


def set_profiler(profiler: Optional[Any]) -> None:
    """Install (or, with None, remove) the active span profiler.

    Prefer :func:`repro.obs.profile.enable_profiling`, which constructs
    the profiler too; this is the low-level hook it rests on.
    """
    global _profiler
    _profiler = profiler


def get_profiler() -> Optional[Any]:
    """The active span profiler, or None when profiling is disabled."""
    return _profiler


def trace_span(name: str, **attrs: Any):
    """Context manager timing one operation.

    No-op unless span tracing and/or stage profiling is enabled; when
    either is, the returned span feeds whichever consumers are active
    from one shared pair of clock reads.
    """
    recorder = _recorder
    profiler = _profiler
    if recorder is None and profiler is None:
        return _NOOP_SPAN
    return _Span(recorder, profiler, name, attrs)
