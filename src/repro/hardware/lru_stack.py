"""Ideal fully-associative LRU stack.

A *conflict miss* in a set-associative cache is a miss that a
fully-associative cache of the same total capacity (with LRU replacement)
would not have taken: the block was evicted by set-index pressure even
though better eviction candidates existed elsewhere. The exact way to
classify it is to shadow every access in a fully-associative LRU stack of
``capacity`` blocks — this class. The paper calls this scheme ideal but
too expensive for hardware; we keep it as the oracle the practical
generation-based tracker is validated against.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import HardwareError


class LRUStack:
    """Fully-associative LRU shadow directory over block keys."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise HardwareError(f"LRU stack needs positive capacity, got {capacity}")
        self.capacity = capacity
        self._stack: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, key: int) -> bool:
        return key in self._stack

    def touch(self, key: int) -> None:
        """Record an access: ``key`` moves to the top of the stack.

        If the stack is full and ``key`` is new, the least recently used
        entry falls off the bottom (it would have been evicted by the
        fully-associative cache too).
        """
        if key in self._stack:
            self._stack.move_to_end(key)
            return
        self._stack[key] = None
        if len(self._stack) > self.capacity:
            self._stack.popitem(last=False)

    def depth(self, key: int) -> int:
        """Stack distance of ``key``: 0 = most recent. -1 if absent.

        O(n); intended for tests and analysis, not the simulation hot path.
        """
        for i, k in enumerate(reversed(self._stack)):
            if k == key:
                return i
        return -1

    def would_hit(self, key: int) -> bool:
        """Would a fully-associative LRU cache of this capacity hit ``key``?"""
        return key in self._stack

    def clear(self) -> None:
        self._stack.clear()
