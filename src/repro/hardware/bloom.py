"""k-hash bloom filter.

The practical conflict-miss tracker remembers recently replaced cache tags
in one compact three-hash bloom filter per generation. Membership tests
can report false positives (an un-inserted tag looks present) but never
false negatives — exactly the right failure mode for conflict-miss
detection, where a rare spurious "conflict" only adds noise the detector
already tolerates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareError

# Distinct odd multipliers give the k hash functions independent mixing.
_MIXERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA6B27D4EB4F,
)
_MASK64 = (1 << 64) - 1


class BloomFilter:
    """A fixed-size bit array with ``n_hashes`` deterministic hash probes."""

    def __init__(self, n_bits: int, n_hashes: int = 3):
        if n_bits <= 0:
            raise HardwareError(f"bloom filter needs positive size, got {n_bits}")
        if not 1 <= n_hashes <= len(_MIXERS):
            raise HardwareError(
                f"n_hashes must be in 1..{len(_MIXERS)}, got {n_hashes}"
            )
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._bits = np.zeros(n_bits, dtype=bool)
        self.insertions = 0
        # Probe positions are a pure function of (key, size, hash count);
        # memoize them — conflict tracking probes the same block keys
        # millions of times on the simulation hot path.
        self._probe_cache: dict = {}

    def _indices(self, key: int):
        cached = self._probe_cache.get(key)
        if cached is None:
            k = int(key) & _MASK64
            probes = []
            for i in range(self.n_hashes):
                h = (k * _MIXERS[i]) & _MASK64
                h ^= h >> 29
                h = (h * _MIXERS[(i + 1) % len(_MIXERS)]) & _MASK64
                h ^= h >> 32
                probes.append(h % self.n_bits)
            cached = tuple(probes)
            if len(self._probe_cache) >= 1_000_000:
                self._probe_cache.clear()  # bound memory on huge key spaces
            self._probe_cache[key] = cached
        return cached

    def add(self, key: int) -> None:
        """Insert ``key`` (an integer tag)."""
        bits = self._bits
        for idx in self._indices(key):
            bits[idx] = True
        self.insertions += 1

    def contains(self, key: int) -> bool:
        """Membership test: True may be a false positive, False is certain."""
        bits = self._bits
        for idx in self._indices(key):
            if not bits[idx]:
                return False
        return True

    def clear(self) -> None:
        """Flash-clear all bits (one-cycle operation in hardware).

        The probe-position cache survives: positions depend only on keys.
        """
        self._bits[:] = False
        self.insertions = 0

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — a proxy for false-positive pressure."""
        return float(self._bits.mean())

    def false_positive_rate(self) -> float:
        """Theoretical FP probability at the current fill ratio."""
        return float(self.fill_ratio**self.n_hashes)

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.n_bits}, hashes={self.n_hashes}, "
            f"fill={self.fill_ratio:.3f})"
        )
