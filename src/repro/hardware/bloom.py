"""k-hash bloom filter with packed storage and vectorized batch kernels.

The practical conflict-miss tracker remembers recently replaced cache tags
in one compact three-hash bloom filter per generation. Membership tests
can report false positives (an un-inserted tag looks present) but never
false negatives — exactly the right failure mode for conflict-miss
detection, where a rare spurious "conflict" only adds noise the detector
already tolerates.

Bits are stored packed, 64 per word, so the scalar hot path tests one
machine word per probe and the batch kernels (:meth:`BloomFilter.add_batch`
/ :meth:`BloomFilter.contains_batch`) run the whole mixer-hash pipeline in
numpy uint64 arithmetic over entire key columns. Probe positions are a
pure function of ``(key, n_bits, n_hashes)``; the scalar path memoizes
them in one process-wide *bounded LRU* cache shared by every filter
instance (all four generations of a tracker probe the same keys at the
same geometry), so hot keys stay cached no matter how large the key
space grows.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import HardwareError

# Distinct odd multipliers give the k hash functions independent mixing.
_MIXERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA6B27D4EB4F,
)
_MASK64 = (1 << 64) - 1
_MIXERS_U64 = np.array(_MIXERS, dtype=np.uint64)
_U1, _U6, _U29, _U32, _U63 = (
    np.uint64(1),
    np.uint64(6),
    np.uint64(29),
    np.uint64(32),
    np.uint64(63),
)

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised only on old pythons
    def _popcount(word: int) -> int:
        return bin(word).count("1")


@lru_cache(maxsize=1 << 17)
def probe_positions(key: int, n_bits: int, n_hashes: int) -> Tuple[int, ...]:
    """Bit positions probed for ``key`` in an ``(n_bits, n_hashes)`` filter.

    Memoized in a bounded LRU shared across all filters: eviction drops
    the *least recently used* keys, so a huge cold key space can no
    longer flush the hot covert-channel tags out of the cache.
    """
    probes = []
    for i in range(n_hashes):
        h = (key * _MIXERS[i]) & _MASK64
        h ^= h >> 29
        h = (h * _MIXERS[(i + 1) % len(_MIXERS)]) & _MASK64
        h ^= h >> 32
        probes.append(h % n_bits)
    return tuple(probes)


@lru_cache(maxsize=1 << 17)
def probe_words(key: int, n_bits: int, n_hashes: int) -> Tuple[Tuple[int, int], ...]:
    """Packed-word probes for ``key``: ``((word_index, bit_mask), ...)``.

    The scalar hot-path form of :func:`probe_positions` — one list
    index plus one bitwise AND per probe against the filter's words.
    """
    return tuple(
        (idx >> 6, 1 << (idx & 63))
        for idx in probe_positions(key, n_bits, n_hashes)
    )


def hash_indices_batch(keys, n_bits: int, n_hashes: int) -> np.ndarray:
    """Vectorized mixer pipeline: ``(n_keys, n_hashes)`` bit positions.

    Bit-for-bit the same arithmetic as :func:`probe_positions`, computed
    in numpy uint64 over the whole key column (unsigned overflow wraps
    exactly like the scalar ``& _MASK64``).
    """
    arr = np.asarray(keys)
    if arr.dtype.kind not in "iu":
        arr = np.array([int(k) & _MASK64 for k in keys], dtype=np.uint64)
    k = arr.astype(np.uint64, copy=False)
    out = np.empty((k.size, n_hashes), dtype=np.uint64)
    nb = np.uint64(n_bits)
    for i in range(n_hashes):
        h = k * _MIXERS_U64[i]
        h ^= h >> _U29
        h = h * _MIXERS_U64[(i + 1) % len(_MIXERS)]
        h ^= h >> _U32
        out[:, i] = h % nb
    return out


class BloomFilter:
    """A fixed-size bit array with ``n_hashes`` deterministic hash probes."""

    def __init__(self, n_bits: int, n_hashes: int = 3):
        if n_bits <= 0:
            raise HardwareError(f"bloom filter needs positive size, got {n_bits}")
        if not 1 <= n_hashes <= len(_MIXERS):
            raise HardwareError(
                f"n_hashes must be in 1..{len(_MIXERS)}, got {n_hashes}"
            )
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._n_words = (n_bits + 63) >> 6
        #: Packed bit storage: plain Python ints, 64 bits per word. The
        #: list object is stable for the filter's lifetime so hot loops
        #: may bind it once (``clear`` rewrites it in place).
        self._words: List[int] = [0] * self._n_words
        self.insertions = 0

    # ------------------------------------------------------------- scalar

    def _indices(self, key: int) -> Tuple[int, ...]:
        """Probe bit positions for ``key`` (memoized, pure)."""
        return probe_positions(int(key) & _MASK64, self.n_bits, self.n_hashes)

    def add(self, key: int) -> None:
        """Insert ``key`` (an integer tag)."""
        words = self._words
        for w, m in probe_words(int(key) & _MASK64, self.n_bits, self.n_hashes):
            words[w] |= m
        self.insertions += 1

    def contains(self, key: int) -> bool:
        """Membership test: True may be a false positive, False is certain."""
        words = self._words
        for w, m in probe_words(int(key) & _MASK64, self.n_bits, self.n_hashes):
            if not words[w] & m:
                return False
        return True

    # -------------------------------------------------------------- batch

    def probe_indices_batch(self, keys) -> np.ndarray:
        """``(n_keys, n_hashes)`` bit positions for a whole key column."""
        return hash_indices_batch(keys, self.n_bits, self.n_hashes)

    def add_batch(self, keys, indices: Optional[np.ndarray] = None) -> None:
        """Insert a whole key column (vectorized ``add``).

        ``indices`` may carry a precomputed :meth:`probe_indices_batch`
        result (the conflict tracker shares one hash pass across its
        per-generation filters).
        """
        idx = self.probe_indices_batch(keys) if indices is None else indices
        n_keys = idx.shape[0]
        if n_keys == 0:
            return
        arr = np.array(self._words, dtype=np.uint64)
        w = (idx >> _U6).astype(np.int64).ravel()
        m = (_U1 << (idx & _U63)).ravel()
        np.bitwise_or.at(arr, w, m)
        self._words[:] = arr.tolist()
        self.insertions += int(n_keys)

    def contains_batch(
        self, keys, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorized membership test; returns a boolean array."""
        idx = self.probe_indices_batch(keys) if indices is None else indices
        if idx.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        arr = np.array(self._words, dtype=np.uint64)
        w = (idx >> _U6).astype(np.int64)
        present = (arr[w] >> (idx & _U63)) & _U1
        return present.all(axis=1)

    # -------------------------------------------------------------- state

    def clear(self) -> None:
        """Flash-clear all bits (one-cycle operation in hardware).

        Probe memoization survives: positions depend only on keys. The
        word list is rewritten in place so loops holding a reference to
        it observe the clear.
        """
        words = self._words
        for i in range(len(words)):
            words[i] = 0
        self.insertions = 0

    @property
    def _bits(self) -> np.ndarray:
        """Unpacked boolean view of the bit array (inspection/tests)."""
        arr = np.array(self._words, dtype=np.uint64)
        shifts = np.arange(64, dtype=np.uint64)
        bits = ((arr[:, None] >> shifts[None, :]) & _U1).astype(bool)
        return bits.ravel()[: self.n_bits]

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — a proxy for false-positive pressure."""
        ones = 0
        for word in self._words:
            ones += _popcount(word)
        return ones / self.n_bits

    def false_positive_rate(self) -> float:
        """Theoretical FP probability at the current fill ratio."""
        return float(self.fill_ratio**self.n_hashes)

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.n_bits}, hashes={self.n_hashes}, "
            f"fill={self.fill_ratio:.3f})"
        )
