"""CC-auditor hardware models.

Register-accurate models of the hardware the paper adds (Section V-A):
bloom filters, the generation-based conflict-miss tracker (with its ideal
fully-associative-LRU oracle for validation), the CC-auditor's counters /
histogram buffers / vector registers, and the Table I cost model.
"""

from repro.hardware.auditor import CCAuditor, MonitorSlot
from repro.hardware.bloom import BloomFilter
from repro.hardware.conflict_tracker import (
    ConflictMissTracker,
    GenerationConflictTracker,
    IdealLRUConflictTracker,
)
from repro.hardware.cost_model import CostEstimate, estimate_auditor_costs

__all__ = [
    "BloomFilter",
    "ConflictMissTracker",
    "GenerationConflictTracker",
    "IdealLRUConflictTracker",
    "CCAuditor",
    "MonitorSlot",
    "CostEstimate",
    "estimate_auditor_costs",
]
