"""Conflict-miss trackers: the ideal oracle and the paper's practical design.

Both trackers answer one question at cache-miss time: *was the incoming
block prematurely evicted* — i.e. would a fully-associative LRU cache of
the same capacity still hold it? If yes, the miss is a conflict miss, the
raw material of cache-based covert timing channels.

:class:`IdealLRUConflictTracker` shadows accesses in a full LRU stack
(exact, expensive). :class:`GenerationConflictTracker` is the paper's
Figure 9 hardware: recency is approximated by four *generations*; each
cache block carries one access bit per generation, and each generation
owns a three-hash bloom filter holding the tags of blocks that were
replaced while that generation was their most recent access. A new
generation opens whenever ``threshold = capacity / 4`` distinct blocks
have been touched, discarding the oldest generation (flash-clearing its
column and bloom filter). A miss whose tag hits any live bloom filter was
evicted within roughly the last ``capacity`` distinct block touches —
a conflict miss.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.errors import HardwareError
from repro.hardware.bloom import BloomFilter
from repro.hardware.lru_stack import LRUStack


class ConflictMissTracker(Protocol):
    """What the shared cache needs from a conflict-miss tracker."""

    def on_access(self, key: int) -> None:
        """A resident block (or a just-filled block) was accessed."""

    def on_replacement(self, key: int) -> None:
        """Block ``key`` was evicted from the cache."""

    def check_recent_eviction(self, key: int) -> bool:
        """At miss time: was ``key`` recently (prematurely) evicted?"""


class IdealLRUConflictTracker:
    """Exact conflict-miss classification via a fully-associative LRU stack."""

    def __init__(self, capacity: int):
        self._stack = LRUStack(capacity)
        self.capacity = capacity

    def on_access(self, key: int) -> None:
        self._stack.touch(key)

    def on_replacement(self, key: int) -> None:
        # The ideal stack models the fully-associative cache, which has its
        # own replacement order; a set-conflict eviction does not remove the
        # block from the shadow stack.
        pass

    def check_recent_eviction(self, key: int) -> bool:
        # The incoming block missed in the real cache. If the
        # fully-associative shadow still holds it, the eviction was
        # premature: a conflict miss.
        return self._stack.would_hit(key)

    def clear(self) -> None:
        self._stack.clear()


class GenerationConflictTracker:
    """The paper's practical generation-bit + bloom-filter tracker."""

    def __init__(
        self,
        capacity: int,
        generations: int = 4,
        bloom_bits_per_generation: Optional[int] = None,
        bloom_hashes: int = 3,
    ):
        if capacity <= 0:
            raise HardwareError(f"tracker capacity must be positive: {capacity}")
        if generations < 2:
            raise HardwareError(f"need at least 2 generations, got {generations}")
        self.capacity = capacity
        self.generations = generations
        #: New-generation threshold T = capacity / generations (paper: N/4,
        #: "roughly 25% capacity in an ideal LRU stack").
        self.threshold = max(1, capacity // generations)
        bits = bloom_bits_per_generation or capacity
        self._blooms = [
            BloomFilter(bits, bloom_hashes) for _ in range(generations)
        ]
        #: Per-resident-block generation bitmask (bit g set = accessed in g).
        self._gen_bits: Dict[int, int] = {}
        self._current = 0
        self._accessed_in_current = 0
        self.generation_advances = 0

    @property
    def current_generation(self) -> int:
        return self._current

    def on_access(self, key: int) -> None:
        bit = 1 << self._current
        mask = self._gen_bits.get(key, 0)
        if mask & bit:
            return  # already counted in this generation
        self._gen_bits[key] = mask | bit
        self._accessed_in_current += 1
        if self._accessed_in_current >= self.threshold:
            self._advance_generation()

    def _advance_generation(self) -> None:
        """Open a new generation, discarding the oldest.

        With ``G`` generations used as a circular buffer, the slot after the
        current one holds the *oldest* generation; flash-clear its bloom
        filter and its column in every block's generation bits, then make it
        current (the bottom of the approximate LRU stack falls off).
        """
        new_gen = (self._current + 1) % self.generations
        cleared_bit = ~(1 << new_gen)
        for key in list(self._gen_bits):
            remaining = self._gen_bits[key] & cleared_bit
            if remaining:
                self._gen_bits[key] = remaining
            else:
                del self._gen_bits[key]
        self._blooms[new_gen].clear()
        self._current = new_gen
        self._accessed_in_current = 0
        self.generation_advances += 1

    def latest_generation_of(self, key: int) -> Optional[int]:
        """Most recent generation in which ``key`` was accessed, if resident."""
        mask = self._gen_bits.get(key, 0)
        if mask == 0:
            return None
        # Scan generations from current backwards (circularly).
        for back in range(self.generations):
            g = (self._current - back) % self.generations
            if mask & (1 << g):
                return g
        return None

    def on_replacement(self, key: int) -> None:
        """Record the replaced tag in the bloom filter of its latest generation."""
        latest = self.latest_generation_of(key)
        if latest is None:
            # Block was never touched within the live generations (its bits
            # were all flash-cleared); it is old enough that re-fetching it
            # would not be a conflict miss, so don't remember it.
            self._gen_bits.pop(key, None)
            return
        self._blooms[latest].add(key)
        del self._gen_bits[key]

    def check_recent_eviction(self, key: int) -> bool:
        """Bloom-filter probe: does any live generation remember this tag?

        A hit means the block was accessed in that generation but replaced
        to make room for a more recently accessed block — a conflict miss
        (subject to bloom false positives).
        """
        return any(bloom.contains(key) for bloom in self._blooms)

    def clear(self) -> None:
        for bloom in self._blooms:
            bloom.clear()
        self._gen_bits.clear()
        self._current = 0
        self._accessed_in_current = 0

    @property
    def metadata_bits_per_block(self) -> int:
        """Generation bits plus 3-bit owner context, per the paper."""
        return self.generations + 3
