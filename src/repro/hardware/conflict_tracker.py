"""Conflict-miss trackers: the ideal oracle and the paper's practical design.

Both trackers answer one question at cache-miss time: *was the incoming
block prematurely evicted* — i.e. would a fully-associative LRU cache of
the same capacity still hold it? If yes, the miss is a conflict miss, the
raw material of cache-based covert timing channels.

:class:`IdealLRUConflictTracker` shadows accesses in a full LRU stack
(exact, expensive). :class:`GenerationConflictTracker` is the paper's
Figure 9 hardware: recency is approximated by four *generations*; each
cache block carries one access bit per generation, and each generation
owns a three-hash bloom filter holding the tags of blocks that were
replaced while that generation was their most recent access. A new
generation opens whenever ``threshold = capacity / 4`` distinct blocks
have been touched, discarding the oldest generation (flash-clearing its
column and bloom filter). A miss whose tag hits any live bloom filter was
evicted within roughly the last ``capacity`` distinct block touches —
a conflict miss.

The generation tracker is on the simulator's per-access hot path, so it
offers three access grades: the scalar protocol methods, vectorized
batch kernels (``on_access_batch`` / ``check_recent_eviction_batch``)
over whole key columns, and :meth:`GenerationConflictTracker.series_ops`
— per-key closures with the tracker's containers pre-bound, which the
shared cache's batched access kernel threads through its tight
LRU/replacement loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Set, Tuple

import numpy as np

from repro.errors import HardwareError
from repro.hardware.bloom import (
    _MASK64,
    BloomFilter,
    hash_indices_batch,
    probe_words,
)
from repro.hardware.lru_stack import LRUStack


class ConflictMissTracker(Protocol):
    """What the shared cache needs from a conflict-miss tracker."""

    def on_access(self, key: int) -> None:
        """A resident block (or a just-filled block) was accessed."""

    def on_replacement(self, key: int) -> None:
        """Block ``key`` was evicted from the cache."""

    def check_recent_eviction(self, key: int) -> bool:
        """At miss time: was ``key`` recently (prematurely) evicted?"""


class IdealLRUConflictTracker:
    """Exact conflict-miss classification via a fully-associative LRU stack."""

    def __init__(self, capacity: int):
        self._stack = LRUStack(capacity)
        self.capacity = capacity

    def on_access(self, key: int) -> None:
        self._stack.touch(key)

    def on_replacement(self, key: int) -> None:
        # The ideal stack models the fully-associative cache, which has its
        # own replacement order; a set-conflict eviction does not remove the
        # block from the shadow stack.
        pass

    def check_recent_eviction(self, key: int) -> bool:
        # The incoming block missed in the real cache. If the
        # fully-associative shadow still holds it, the eviction was
        # premature: a conflict miss.
        return self._stack.would_hit(key)

    def clear(self) -> None:
        self._stack.clear()


class GenerationConflictTracker:
    """The paper's practical generation-bit + bloom-filter tracker."""

    def __init__(
        self,
        capacity: int,
        generations: int = 4,
        bloom_bits_per_generation: Optional[int] = None,
        bloom_hashes: int = 3,
    ):
        if capacity <= 0:
            raise HardwareError(f"tracker capacity must be positive: {capacity}")
        if generations < 2:
            raise HardwareError(f"need at least 2 generations, got {generations}")
        self.capacity = capacity
        self.generations = generations
        #: New-generation threshold T = capacity / generations (paper: N/4,
        #: "roughly 25% capacity in an ideal LRU stack").
        self.threshold = max(1, capacity // generations)
        bits = bloom_bits_per_generation or capacity
        self._blooms = [
            BloomFilter(bits, bloom_hashes) for _ in range(generations)
        ]
        #: Per-resident-block generation bitmask (bit g set = accessed in g).
        self._gen_bits: Dict[int, int] = {}
        #: Per-generation membership: every key whose generation bit ``g``
        #: was set since generation ``g`` last opened (superset: replaced
        #: keys linger until the generation recycles). Makes
        #: :meth:`_advance_generation` proportional to one generation's
        #: touches instead of every resident block.
        self._members: List[Set[int]] = [set() for _ in range(generations)]
        self._current = 0
        self._accessed_in_current = 0
        self.generation_advances = 0

    @property
    def current_generation(self) -> int:
        return self._current

    def on_access(self, key: int) -> None:
        bit = 1 << self._current
        mask = self._gen_bits.get(key, 0)
        if mask & bit:
            return  # already counted in this generation
        self._gen_bits[key] = mask | bit
        self._members[self._current].add(key)
        self._accessed_in_current += 1
        if self._accessed_in_current >= self.threshold:
            self._advance_generation()

    def _advance_generation(self) -> None:
        """Open a new generation, discarding the oldest.

        With ``G`` generations used as a circular buffer, the slot after the
        current one holds the *oldest* generation; flash-clear its bloom
        filter and its column in every member block's generation bits, then
        make it current (the bottom of the approximate LRU stack falls off).
        Only the cleared generation's membership set is walked — keys that
        never touched it are untouched, and members replaced since simply
        miss in ``_gen_bits`` and are skipped.
        """
        new_gen = (self._current + 1) % self.generations
        cleared_bit = ~(1 << new_gen)
        gen_bits = self._gen_bits
        for key in self._members[new_gen]:
            mask = gen_bits.get(key)
            if mask is None:
                continue  # replaced while this generation was live
            remaining = mask & cleared_bit
            if remaining:
                gen_bits[key] = remaining
            else:
                del gen_bits[key]
        self._members[new_gen] = set()
        self._blooms[new_gen].clear()
        self._current = new_gen
        self._accessed_in_current = 0
        self.generation_advances += 1

    def latest_generation_of(self, key: int) -> Optional[int]:
        """Most recent generation in which ``key`` was accessed, if resident."""
        mask = self._gen_bits.get(key, 0)
        if mask == 0:
            return None
        # Scan generations from current backwards (circularly).
        for back in range(self.generations):
            g = (self._current - back) % self.generations
            if mask & (1 << g):
                return g
        return None

    def on_replacement(self, key: int) -> None:
        """Record the replaced tag in the bloom filter of its latest generation."""
        latest = self.latest_generation_of(key)
        if latest is None:
            # Block was never touched within the live generations (its bits
            # were all flash-cleared); it is old enough that re-fetching it
            # would not be a conflict miss, so don't remember it.
            self._gen_bits.pop(key, None)
            return
        self._blooms[latest].add(key)
        del self._gen_bits[key]

    def check_recent_eviction(self, key: int) -> bool:
        """Bloom-filter probe: does any live generation remember this tag?

        A hit means the block was accessed in that generation but replaced
        to make room for a more recently accessed block — a conflict miss
        (subject to bloom false positives).
        """
        for bloom in self._blooms:
            if bloom.contains(key):
                return True
        return False

    # -------------------------------------------------------------- batch

    def on_access_batch(self, keys) -> None:
        """Sequentially exact batch of :meth:`on_access` over a key column.

        Generation advances fire mid-batch exactly where the scalar loop
        would fire them; the win is one locals-bound loop instead of a
        method call per key.
        """
        gen_bits = self._gen_bits
        gb_get = gen_bits.get
        members = self._members
        threshold = self.threshold
        cur = self._current
        bit = 1 << cur
        member_add = members[cur].add
        count = self._accessed_in_current
        for key in _key_iter(keys):
            mask = gb_get(key, 0)
            if mask & bit:
                continue
            gen_bits[key] = mask | bit
            member_add(key)
            count += 1
            if count >= threshold:
                self._accessed_in_current = count
                self._advance_generation()
                cur = self._current
                bit = 1 << cur
                member_add = members[cur].add
                count = 0
        self._accessed_in_current = count

    def check_recent_eviction_batch(self, keys) -> np.ndarray:
        """Vectorized :meth:`check_recent_eviction` over a key column.

        Valid whenever no replacement or generation advance interleaves
        the checks (the checks themselves never mutate tracker state):
        one hash pass is shared across all generations' filters.
        """
        blooms = self._blooms
        indices = blooms[0].probe_indices_batch(keys)
        out = blooms[0].contains_batch(keys, indices=indices)
        for bloom in blooms[1:]:
            out |= bloom.contains_batch(keys, indices=indices)
        return out

    def replay_check_batch(
        self,
        n: int,
        cand_pos,
        cand_keys,
        ins_pos,
        ins_keys,
        clears,
        snapshot_words,
    ) -> np.ndarray:
        """Resolve a series' deferred eviction checks, exactly.

        The cache's batch kernel defers all ``check_recent_eviction``
        probes out of its access loop: it logs, per series position,
        which keys were checked (``cand_*``), which victim keys were
        inserted into which generation's bloom (``ins_*``, one list per
        generation), and at which positions a generation advance
        flash-cleared which bloom (``clears``). This method reconstructs
        each check's answer *as of its position*: a probe bit counts as
        set for the check at position ``i`` iff it was set in the
        series-start ``snapshot_words`` or by an insert at position
        ``j < i``, with no flash-clear of that bloom in between. Bits
        only ever turn on between clears, so per (generation, segment
        between clears) one first-set-position array over the filter's
        bits answers every check in the segment vectorized.

        Equivalent to interleaving scalar ``check_recent_eviction`` /
        ``on_replacement`` / clears in series order; the hypothesis
        suite pins that equivalence.
        """
        m = len(cand_pos)
        if m == 0:
            return np.zeros(0, dtype=bool)
        n_bits = self._blooms[0].n_bits
        n_hashes = self._blooms[0].n_hashes
        pos = np.asarray(cand_pos, dtype=np.int64)
        cand_idx = hash_indices_batch(cand_keys, n_bits, n_hashes)
        verdict = np.zeros(m, dtype=bool)
        u1, u6, u63 = np.uint64(1), np.uint64(6), np.uint64(63)
        for g in range(self.generations):
            g_clears = sorted(c for c, gg in clears if gg == g)
            ipos_list = ins_pos[g]
            if ipos_list:
                ipos = np.asarray(ipos_list, dtype=np.int64)
                iidx = hash_indices_batch(ins_keys[g], n_bits, n_hashes)
            else:
                ipos = np.zeros(0, dtype=np.int64)
                iidx = np.zeros((0, n_hashes), dtype=np.uint64)
            snap = np.asarray(snapshot_words[g], dtype=np.uint64)
            # Segment s covers positions (bounds[s], bounds[s+1]]: a clear
            # at position c happens after position c's check and insert,
            # so both belong to the segment the clear terminates.
            bounds = [-1] + g_clears + [n]
            for s in range(len(bounds) - 1):
                lo, hi = bounds[s], bounds[s + 1]
                cmask = (pos > lo) & (pos <= hi)
                if not cmask.any():
                    continue
                cidx = cand_idx[cmask]
                # first[c, h] = earliest position whose insert set this
                # probe's bit within the segment (-1: set at segment
                # start, n: never). Segments after a clear start empty.
                if s == 0:
                    in_snap = (snap[cidx >> u6] >> (cidx & u63)) & u1
                    first = np.where(
                        in_snap.astype(bool), np.int64(-1), np.int64(n)
                    )
                else:
                    first = np.full(cidx.shape, n, dtype=np.int64)
                imask = (ipos > lo) & (ipos <= hi)
                if imask.any():
                    # Min insert position per distinct bit, by (bit, pos)
                    # lexsort + first-occurrence compaction, then mapped
                    # onto the candidates' probe bits via searchsorted.
                    fb = iidx[imask].ravel()
                    fp = np.repeat(ipos[imask], n_hashes)
                    order = np.lexsort((fp, fb))
                    fb, fp = fb[order], fp[order]
                    keep = np.empty(fb.size, dtype=bool)
                    keep[0] = True
                    keep[1:] = fb[1:] != fb[:-1]
                    ubits, upos = fb[keep], fp[keep]
                    loc = np.minimum(
                        np.searchsorted(ubits, cidx), ubits.size - 1
                    )
                    hit = ubits[loc] == cidx
                    first = np.minimum(
                        first, np.where(hit, upos[loc], np.int64(n))
                    )
                verdict[cmask] |= first.max(axis=1) < pos[cmask]
        return verdict

    def series_ops(
        self,
    ) -> Tuple[Callable[[int], None], Callable[[int], None], Callable[[int], bool]]:
        """Hot-path closures ``(on_access, on_replacement, check)``.

        Behaviorally identical to the scalar protocol methods, with the
        tracker's stable containers (generation-bit dict, membership
        sets, packed bloom words) bound into the closures. The mutable
        scalars (``_current``, ``_accessed_in_current``) are read and
        written through the instance on every call, so closure calls and
        direct method calls can interleave freely.
        """
        tracker = self
        gen_bits = self._gen_bits
        gb_get = gen_bits.get
        members = self._members
        blooms = self._blooms
        words_lists = [bloom._words for bloom in blooms]
        threshold = self.threshold
        generations = self.generations
        n_bits = blooms[0].n_bits
        n_hashes = blooms[0].n_hashes
        probe = probe_words

        def on_access(key: int) -> None:
            cur = tracker._current
            bit = 1 << cur
            mask = gb_get(key, 0)
            if mask & bit:
                return
            gen_bits[key] = mask | bit
            members[cur].add(key)
            count = tracker._accessed_in_current + 1
            if count >= threshold:
                tracker._accessed_in_current = count
                tracker._advance_generation()
            else:
                tracker._accessed_in_current = count

        def on_replacement(key: int) -> None:
            mask = gb_get(key, 0)
            if mask == 0:
                gen_bits.pop(key, None)
                return
            cur = tracker._current
            for back in range(generations):
                g = (cur - back) % generations
                if mask & (1 << g):
                    break
            words = words_lists[g]
            for w, m in probe(key & _MASK64, n_bits, n_hashes):
                words[w] |= m
            blooms[g].insertions += 1
            del gen_bits[key]

        def check(key: int) -> bool:
            pairs = probe(key & _MASK64, n_bits, n_hashes)
            for words in words_lists:
                for w, m in pairs:
                    if not words[w] & m:
                        break
                else:
                    return True
            return False

        return on_access, on_replacement, check

    # -------------------------------------------------------------- state

    def clear(self) -> None:
        for bloom in self._blooms:
            bloom.clear()
        self._gen_bits.clear()
        for g in range(self.generations):
            self._members[g] = set()
        self._current = 0
        self._accessed_in_current = 0

    @property
    def metadata_bits_per_block(self) -> int:
        """Generation bits plus 3-bit owner context, per the paper."""
        return self.generations + 3


def _key_iter(keys):
    """Plain-int iteration over a key column (ndarray or sequence)."""
    if isinstance(keys, np.ndarray):
        return keys.tolist()
    return keys
