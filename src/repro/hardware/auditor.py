"""Register-level model of the CC-auditor (Section V-A).

The CC-auditor accumulates indicator events for up to two monitored
hardware units. Per monitor slot it has:

- a 32-bit countdown register initialized to the unit's Δt,
- a 16-bit accumulator counting events within the current Δt window,
- a 128-entry × 16-bit histogram buffer recording the event-density
  histogram (accumulator value indexes the buffer at each Δt expiry).

For cache monitoring it additionally has two alternating 128-byte vector
registers recording, for every conflict miss, the 3-bit context ids of the
replacer and the victim; the software daemon drains the full register in
the background while the other fills.

The model is behaviourally faithful to the fixed-width hardware: density
indices clamp at the last histogram bin, the accumulator and histogram
entries saturate, and vector-register drains happen whole-register at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import AuditorConfig
from repro.errors import HardwareError


@dataclass
class MonitorSlot:
    """One of the auditor's (up to two) unit monitors."""

    unit_name: str
    dt: int
    config: AuditorConfig
    histogram: np.ndarray = field(init=False)
    accumulator: int = field(init=False, default=0)
    countdown: int = field(init=False)
    windows_recorded: int = field(init=False, default=0)
    events_seen: int = field(init=False, default=0)
    #: Windows whose raw count saturated the 16-bit accumulator
    #: (cumulative across ``read_and_reset`` — drains don't clear it).
    clamp_events: int = field(init=False, default=0)
    #: Histogram entries that saturated at ``histogram_entry_max``.
    entry_saturations: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise HardwareError(f"Δt must be positive, got {self.dt}")
        self.histogram = np.zeros(self.config.histogram_bins, dtype=np.int64)
        self.countdown = self.dt

    def ingest_window_counts(self, counts: Sequence[int]) -> None:
        """Record one event count per elapsed Δt window.

        Equivalent to the hardware's event-signal path: the accumulator
        counts events, and at each countdown expiry its (saturated) value
        bumps the matching histogram entry.
        """
        arr = np.asarray(counts, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise HardwareError("event counts cannot be negative")
        self.events_seen += int(arr.sum())
        over = arr > self.config.accumulator_max
        if over.any():
            self.clamp_events += int(over.sum())
        clamped = np.minimum(arr, self.config.accumulator_max)
        bins = np.minimum(clamped, self.config.histogram_bins - 1)
        increments = np.bincount(bins, minlength=self.config.histogram_bins)
        raw = self.histogram + increments
        saturated = raw > self.config.histogram_entry_max
        if saturated.any():
            self.entry_saturations += int(saturated.sum())
        self.histogram = np.minimum(raw, self.config.histogram_entry_max)
        self.windows_recorded += int(arr.size)

    def read_and_reset(self) -> np.ndarray:
        """Daemon read at the OS-quantum boundary: copy out, clear buffer."""
        snapshot = self.histogram.copy()
        self.histogram[:] = 0
        self.accumulator = 0
        self.countdown = self.dt
        self.windows_recorded = 0
        return snapshot


class VectorRegisterPair:
    """Two alternating fixed-size vector registers for conflict-miss records.

    Each record is one byte holding two 3-bit context ids (replacer,
    victim). When the active register fills, recording switches to the
    other while software drains the full one; the model treats the drain as
    lossless (the paper's stated design goal of the alternation).
    """

    def __init__(self, config: AuditorConfig):
        self.config = config
        self.capacity = config.vector_register_bytes
        self._active: List[int] = []
        self._drained: List[int] = []
        self.swaps = 0

    def record(self, replacer: int, victim: int) -> None:
        limit = 1 << self.config.context_id_bits
        if not (0 <= replacer < limit and 0 <= victim < limit):
            raise HardwareError(
                f"context ids must fit in {self.config.context_id_bits} bits"
            )
        self._active.append(
            (replacer << self.config.context_id_bits) | victim
        )
        if len(self._active) >= self.capacity:
            self._drained.extend(self._active)
            self._active = []
            self.swaps += 1

    def record_batch(self, replacers: np.ndarray, victims: np.ndarray) -> None:
        """Record a column of conflict-miss pairs in one shot.

        Validation and packing are vectorized; the register fill/drain
        walk then advances in capacity-sized slices, so the alternation
        (a swap exactly when the active register reaches capacity) and
        the final register contents match the per-record path exactly.
        Unlike :meth:`record`, an out-of-range id rejects the whole
        batch before anything is recorded.
        """
        reps = np.asarray(replacers, dtype=np.int64).ravel()
        vics = np.asarray(victims, dtype=np.int64).ravel()
        if reps.shape != vics.shape:
            raise HardwareError(
                "replacer and victim columns must be the same length"
            )
        if reps.size == 0:
            return
        limit = 1 << self.config.context_id_bits
        if (
            reps.min() < 0
            or vics.min() < 0
            or reps.max() >= limit
            or vics.max() >= limit
        ):
            raise HardwareError(
                f"context ids must fit in {self.config.context_id_bits} bits"
            )
        packed = ((reps << self.config.context_id_bits) | vics).tolist()
        i, n = 0, len(packed)
        while True:
            room = self.capacity - len(self._active)
            if n - i < room:
                self._active.extend(packed[i:])
                return
            self._active.extend(packed[i : i + room])
            i += room
            self._drained.extend(self._active)
            self._active = []
            self.swaps += 1

    def drain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Software drain: all records so far, as (replacers, victims)."""
        packed = np.asarray(self._drained + self._active, dtype=np.int64)
        self._drained = []
        self._active = []
        if packed.size == 0:
            empty = np.zeros(0, dtype=np.int16)
            return empty, empty
        mask = (1 << self.config.context_id_bits) - 1
        return (
            (packed >> self.config.context_id_bits).astype(np.int16),
            (packed & mask).astype(np.int16),
        )

    @property
    def pending(self) -> int:
        return len(self._drained) + len(self._active)


class CCAuditor:
    """The full CC-auditor: monitor slots plus the conflict-miss vectors."""

    def __init__(self, config: Optional[AuditorConfig] = None):
        self.config = config or AuditorConfig()
        self._slots: List[Optional[MonitorSlot]] = [None] * self.config.n_monitors
        self.vectors = VectorRegisterPair(self.config)

    def program(self, slot_index: int, unit_name: str, dt: int) -> MonitorSlot:
        """Point a monitor slot at a hardware unit (privileged instruction).

        The auditor monitors at most ``config.n_monitors`` (two) units at a
        time — the paper's complexity/overhead tradeoff; re-programming an
        occupied slot replaces its monitor.
        """
        if not 0 <= slot_index < self.config.n_monitors:
            raise HardwareError(
                f"slot {slot_index} outside 0..{self.config.n_monitors - 1}"
            )
        slot = MonitorSlot(unit_name=unit_name, dt=dt, config=self.config)
        self._slots[slot_index] = slot
        return slot

    def slot(self, slot_index: int) -> MonitorSlot:
        s = self._slots[slot_index]
        if s is None:
            raise HardwareError(f"monitor slot {slot_index} is not programmed")
        return s

    def free_slot_index(self) -> int:
        """First unprogrammed slot, or raise if all are busy."""
        for i, s in enumerate(self._slots):
            if s is None:
                return i
        raise HardwareError(
            f"all {self.config.n_monitors} monitor slots are in use; "
            "CC-auditor monitors at most two units at a time"
        )

    @property
    def active_units(self) -> Tuple[str, ...]:
        return tuple(s.unit_name for s in self._slots if s is not None)
