"""Area / power / latency estimates for the CC-auditor (Table I).

The paper sizes the CC-auditor with Cacti 5.3. Cacti is a C++ tool we
cannot ship, so this module provides an analytical SRAM/register cost
model *calibrated to the paper's reported values*: per-bit area and
dynamic-power constants per structure class, and an access latency with a
mild logarithmic size dependence. With the paper's structure parameters it
reproduces Table I; with other parameters it extrapolates the way a
first-order SRAM model does (linear area/power in bits, log latency).

Structure classes:

- ``"buffer"`` — small SRAM buffers (the two 128 x 16-bit histogram buffers)
- ``"register"`` — flip-flop register files (vector registers, accumulators,
  countdown registers)
- ``"detector"`` — the conflict-miss detector: bloom-filter bit arrays plus
  per-block metadata columns (denser arrays, parallel short probes)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config import AuditorConfig, CacheConfig
from repro.errors import HardwareError

#: Calibration anchors, from Table I of the paper.
#: (bits, area mm^2, power mW, latency ns) per structure class.
_ANCHORS = {
    "buffer": (4096.0, 0.0028, 2.8, 0.17),
    "register": (2144.0, 0.0011, 0.8, 0.17),
    "detector": (45056.0, 0.004, 5.4, 0.12),
}

#: Latency grows ~ this many ns per doubling of structure size.
_LATENCY_LOG_SLOPE = 0.01


@dataclass(frozen=True)
class CostEstimate:
    """Cost of one structure: area (mm^2), dynamic power (mW), latency (ns)."""

    name: str
    bits: int
    area_mm2: float
    power_mw: float
    latency_ns: float

    def scaled(self, name: str, bits: int) -> "CostEstimate":
        """Extrapolate this estimate to a structure of a different size."""
        if bits <= 0:
            raise HardwareError(f"structure must have positive bits, got {bits}")
        ratio = bits / self.bits
        latency = self.latency_ns + _LATENCY_LOG_SLOPE * math.log2(max(ratio, 1e-9))
        return CostEstimate(
            name=name,
            bits=bits,
            area_mm2=self.area_mm2 * ratio,
            power_mw=self.power_mw * ratio,
            latency_ns=max(latency, 0.01),
        )


def _anchor(kind: str) -> CostEstimate:
    if kind not in _ANCHORS:
        raise HardwareError(
            f"unknown structure class {kind!r}; choose from {sorted(_ANCHORS)}"
        )
    bits, area, power, latency = _ANCHORS[kind]
    return CostEstimate(kind, int(bits), area, power, latency)


def estimate_structure(kind: str, name: str, bits: int) -> CostEstimate:
    """Cost of an arbitrary structure of ``bits`` bits in class ``kind``."""
    return _anchor(kind).scaled(name, bits)


def histogram_buffer_bits(config: AuditorConfig) -> int:
    """Bits in the auditor's histogram buffers (two slots)."""
    return (
        config.n_monitors * config.histogram_bins * config.histogram_entry_bits
    )


def register_bits(config: AuditorConfig) -> int:
    """Bits in the vector registers, accumulators and countdown registers."""
    vectors = 2 * config.vector_register_bytes * 8
    accumulators = config.n_monitors * config.accumulator_bits
    countdowns = config.n_monitors * config.countdown_bits
    return vectors + accumulators + countdowns


def detector_bits(auditor: AuditorConfig, cache: CacheConfig) -> int:
    """Bits in the conflict-miss detector.

    Per the paper: ``generations`` three-hash bloom filters totalling
    4 x #cacheblocks bits, plus 7 metadata bits per cache block (4
    generation bits + 3 owner-context bits).
    """
    blooms = auditor.generations * cache.n_blocks
    metadata = (auditor.generations + auditor.context_id_bits) * cache.n_blocks
    return blooms + metadata


def estimate_auditor_costs(
    auditor: AuditorConfig = None, cache: CacheConfig = None
) -> Dict[str, CostEstimate]:
    """Reproduce Table I: costs of the three CC-auditor structure groups.

    Returns a dict keyed ``"histogram_buffers"``, ``"registers"``,
    ``"conflict_miss_detector"``. With default configs the values match the
    paper's Cacti 5.3 numbers.
    """
    auditor = auditor or AuditorConfig()
    cache = cache or CacheConfig()
    return {
        "histogram_buffers": estimate_structure(
            "buffer", "histogram_buffers", histogram_buffer_bits(auditor)
        ),
        "registers": estimate_structure(
            "register", "registers", register_bits(auditor)
        ),
        "conflict_miss_detector": estimate_structure(
            "detector", "conflict_miss_detector", detector_bits(auditor, cache)
        ),
    }


def total_area_mm2(costs: Dict[str, CostEstimate]) -> float:
    """Total CC-auditor area — compare against ~263 mm^2 for an Intel i7."""
    return sum(c.area_mm2 for c in costs.values())


def total_power_mw(costs: Dict[str, CostEstimate]) -> float:
    """Total CC-auditor dynamic power — compare against 130 W peak i7."""
    return sum(c.power_mw for c in costs.values())
