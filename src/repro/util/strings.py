"""Histogram discretization for the pattern-clustering step.

CC-Hunter's recurrence check (Section IV-B step 5) first "discretizes the
event density histograms into strings" and then clusters similar strings
with k-means. The discretization maps each histogram bin's frequency onto a
small symbol alphabet on a logarithmic scale, so that the *shape* of the
histogram (where its modes sit) dominates over absolute magnitudes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DetectionError

#: Printable alphabet for rendering discretized histograms as text strings.
ALPHABET = "0123456789abcdefghijklmnopqrstuvwxyz"


def discretize_histogram(
    hist: Sequence[float], levels: int = 4
) -> np.ndarray:
    """Map bin frequencies to integer symbols ``0 .. levels-1``.

    Symbol 0 means the bin is empty; the remaining levels split the
    log-frequency range of the histogram evenly. A histogram with all-equal
    non-zero bins discretizes to all top-level symbols, preserving the
    intuition that only *relative* frequency structure matters.
    """
    if levels < 2:
        raise DetectionError(f"need at least 2 symbol levels, got {levels}")
    arr = np.asarray(hist, dtype=np.float64)
    if arr.size == 0:
        raise DetectionError("cannot discretize an empty histogram")
    if arr.min() < 0:
        raise DetectionError("histogram frequencies cannot be negative")
    symbols = np.zeros(arr.size, dtype=np.int64)
    nonzero = arr > 0
    if not nonzero.any():
        return symbols
    logs = np.log1p(arr[nonzero])
    top = logs.max()
    if top == 0:
        symbols[nonzero] = levels - 1
        return symbols
    # Scale log-frequencies into 1 .. levels-1 (0 is reserved for empty bins).
    scaled = 1 + np.floor(logs / top * (levels - 1 - 1e-12)).astype(np.int64)
    symbols[nonzero] = np.minimum(scaled, levels - 1)
    return symbols


def levels_to_string(symbols: Sequence[int]) -> str:
    """Render a symbol vector as a compact printable string.

    >>> levels_to_string([0, 1, 3, 2])
    '0132'
    """
    chars = []
    for s in symbols:
        idx = int(s)
        if idx < 0 or idx >= len(ALPHABET):
            raise DetectionError(f"symbol {idx} outside printable alphabet")
        chars.append(ALPHABET[idx])
    return "".join(chars)


def symbol_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Mean absolute symbol difference between two discretized histograms."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape:
        raise DetectionError(
            f"cannot compare symbol vectors of shapes {va.shape} and {vb.shape}"
        )
    if va.size == 0:
        return 0.0
    return float(np.abs(va - vb).mean())
