"""Covert message representation.

A covert channel carries a sequence of bits. The paper drives all three
channels with a randomly generated 64-bit "credit card number"; this module
provides that message type plus encode/decode helpers and the bit-error-rate
metric used to validate that the simulated channels actually communicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.errors import ChannelError
from repro.util.rng import RngLike, make_rng


def bits_from_int(value: int, width: int) -> Tuple[int, ...]:
    """Big-endian bit tuple of ``value`` in ``width`` bits.

    >>> bits_from_int(5, 4)
    (0, 1, 0, 1)
    """
    if width <= 0:
        raise ChannelError(f"bit width must be positive, got {width}")
    if value < 0 or value >= (1 << width):
        raise ChannelError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def int_from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`bits_from_int`.

    >>> int_from_bits((0, 1, 0, 1))
    5
    """
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ChannelError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of positions where ``received`` differs from ``sent``.

    Missing trailing bits in ``received`` count as errors, so a spy that
    decodes nothing scores 1.0.
    """
    if not sent:
        raise ChannelError("cannot compute BER of an empty message")
    errors = 0
    for i, bit in enumerate(sent):
        if i >= len(received) or received[i] != bit:
            errors += 1
    return errors / len(sent)


@dataclass(frozen=True)
class Message:
    """An immutable bit message transmitted over a covert channel."""

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ChannelError("message must contain at least one bit")
        for bit in self.bits:
            if bit not in (0, 1):
                raise ChannelError(f"message bits must be 0 or 1, got {bit!r}")

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    @property
    def value(self) -> int:
        """The message interpreted as a big-endian unsigned integer."""
        return int_from_bits(self.bits)

    @property
    def ones(self) -> int:
        """Number of 1 bits (bus/divider channels contend only on 1s)."""
        return sum(self.bits)

    @classmethod
    def from_int(cls, value: int, width: int) -> "Message":
        """Build a message from an integer, e.g. ``Message.from_int(0xDEAD, 16)``."""
        return cls(bits_from_int(value, width))

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "Message":
        """Build a message from any iterable of 0/1 values."""
        return cls(tuple(int(b) for b in bits))

    @classmethod
    def random(cls, n_bits: int, rng: RngLike = None) -> "Message":
        """Uniformly random ``n_bits``-bit message."""
        gen = make_rng(rng)
        return cls(tuple(int(b) for b in gen.integers(0, 2, size=n_bits)))

    @classmethod
    def random_credit_card(cls, rng: RngLike = None) -> "Message":
        """The paper's canonical payload: a random 64-bit credit card number."""
        return cls.random(64, rng)

    def alternating_runs(self) -> Tuple[Tuple[int, int], ...]:
        """Run-length encoding as ((bit, run_length), ...) — useful in tests.

        >>> Message.from_bits([1, 1, 0, 1]).alternating_runs()
        ((1, 2), (0, 1), (1, 1))
        """
        runs = []
        current = self.bits[0]
        length = 0
        for bit in self.bits:
            if bit == current:
                length += 1
            else:
                runs.append((current, length))
                current, length = bit, 1
        runs.append((current, length))
        return tuple(runs)
