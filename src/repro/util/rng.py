"""Deterministic random-number plumbing.

All stochastic behaviour in the library flows through
:class:`numpy.random.Generator` objects created here, so experiments are
reproducible from a single integer seed. Substreams are derived with
:class:`numpy.random.SeedSequence` spawning keyed by stable strings, which
keeps independent components (noise processes, channels, workloads)
statistically independent yet deterministic.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or fresh entropy.

    Passing an existing Generator returns it unchanged (shared stream);
    passing an int gives a reproducible stream; passing ``None`` gives a
    nondeterministic stream (discouraged inside experiments).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: RngLike, *keys: object) -> np.random.Generator:
    """Derive an independent substream from ``seed`` keyed by ``keys``.

    The same ``(seed, keys)`` pair always yields the same stream. Keys are
    hashed through their string form, so any printable identifier works::

        rng = derive_rng(1234, "noise", core_id)
    """
    if isinstance(seed, np.random.Generator):
        # Child of a live generator: draw a fresh seed from it. This is
        # deterministic given the generator's current state.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return np.random.default_rng(child_seed)
    material = "/".join(str(k) for k in keys)
    # Stable 64-bit hash of the key string (hash() is salted per process).
    digest = np.uint64(14695981039346656037)
    for ch in material.encode("utf-8"):
        digest = np.uint64((int(digest) ^ ch) * 1099511628211 % 2**64)
    base = 0 if seed is None else int(seed)
    seq = np.random.SeedSequence(entropy=base, spawn_key=(int(digest) % 2**32,))
    return np.random.default_rng(seq)


def spawn_seed(rng: np.random.Generator) -> int:
    """Draw a 63-bit seed suitable for creating a child generator."""
    return int(rng.integers(0, 2**63 - 1))

