"""Column dtype contracts for the event hot path.

Every event-timestamp column in the pipeline is ``np.int64`` cycles and
every window-count column is ``np.int64`` events — the convention
:class:`~repro.core.event_train.EventTrain` established. The columnar
hot path hands arrays between layers zero-copy, so a stray ``int32``
(e.g. from a compact trace archive) or a float column would silently
change downstream arithmetic instead of failing at the boundary. These
helpers make mixed-dtype columns fail loudly at the layer seam where
the column enters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError


def require_int64(arr: np.ndarray, what: str) -> np.ndarray:
    """Assert ``arr`` is an int64 ndarray and return it unchanged.

    Used where a column is passed along zero-copy: the producer is
    responsible for the dtype, and a mismatch is a producer bug worth
    surfacing, not papering over with a cast.
    """
    if not isinstance(arr, np.ndarray) or arr.dtype != np.int64:
        got = arr.dtype if isinstance(arr, np.ndarray) else type(arr).__name__
        raise DetectionError(
            f"{what} must be an int64 column, got {got}"
        )
    return arr


def ensure_int64(values, what: str) -> np.ndarray:
    """Cast integer-kind input to an int64 column; reject inexact input.

    Python lists and narrower integer arrays are widened (a lossless,
    intentional conversion — e.g. compact int32 trace archives being
    rehydrated); float/complex input raises instead of silently
    truncating.
    """
    arr = np.asarray(values)
    if arr.dtype.kind not in ("i", "u", "b"):
        raise DetectionError(
            f"{what} must hold integers, got dtype {arr.dtype}"
        )
    return arr.astype(np.int64, copy=False)
