"""Half-open time intervals in cycles.

Shared resources (bus, divider) record *usage intervals* — windows of
virtual time during which a hardware context occupies or contends for the
resource. This module provides the small interval algebra those models
need: merging, clipping, and overlap measurement. All intervals are
half-open ``[start, end)`` and measured in integer cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open interval ``[start, end)`` of virtual time in cycles."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection with ``other`` (empty interval if disjoint)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return Interval(start, start)
        return Interval(start, end)

    def contains(self, t: int) -> bool:
        return self.start <= t < self.end


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and coalesce overlapping/adjacent intervals.

    >>> merge_intervals([Interval(5, 9), Interval(0, 6)])
    [Interval(start=0, end=9)]
    """
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: List[Interval] = []
    for iv in ordered:
        if iv.length == 0:
            continue
        if merged and iv.start <= merged[-1].end:
            last = merged[-1]
            if iv.end > last.end:
                merged[-1] = Interval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Iterable[Interval]) -> int:
    """Total covered length after merging (double-counting removed)."""
    return sum(iv.length for iv in merge_intervals(intervals))


def overlap_length(window: Interval, intervals: Sequence[Interval]) -> int:
    """Length of ``window`` covered by the (merged) ``intervals``."""
    covered = 0
    for iv in merge_intervals(intervals):
        covered += window.intersect(iv).length
    return covered


def clip_intervals(
    intervals: Sequence[Interval], window: Interval
) -> List[Interval]:
    """Intersect every interval with ``window``, dropping empty results."""
    clipped = []
    for iv in intervals:
        cut = iv.intersect(window)
        if cut.length > 0:
            clipped.append(cut)
    return clipped


def coverage_per_window(
    intervals: Sequence[Interval], t0: int, t1: int, width: int
) -> np.ndarray:
    """Covered length of each ``width``-cycle window tiling ``[t0, t1)``.

    Returns an int64 array with one entry per window; the last window may
    extend past ``t1`` (its coverage is still measured only within the
    intervals). This is the vectorized kernel behind density histograms for
    rate-based event trains.
    """
    if width <= 0:
        raise SimulationError(f"window width must be positive, got {width}")
    if t1 <= t0:
        return np.zeros(0, dtype=np.int64)
    n_windows = -(-(t1 - t0) // width)  # ceil division
    coverage = np.zeros(n_windows, dtype=np.int64)
    for iv in merge_intervals(clip_intervals(intervals, Interval(t0, t1))):
        first = (iv.start - t0) // width
        last = (iv.end - 1 - t0) // width
        if first == last:
            coverage[first] += iv.length
            continue
        # Partial first window, full middle windows, partial last window.
        first_end = t0 + (first + 1) * width
        coverage[first] += first_end - iv.start
        if last > first + 1:
            coverage[first + 1 : last] += width
        last_start = t0 + last * width
        coverage[last] += iv.end - last_start
    return coverage
