"""Shared utilities: RNG plumbing, bit messages, intervals, statistics."""

from repro.util.bitstream import Message, bit_error_rate, bits_from_int, int_from_bits
from repro.util.intervals import (
    Interval,
    clip_intervals,
    merge_intervals,
    overlap_length,
    total_length,
)
from repro.util.rng import derive_rng, make_rng
from repro.util.stats import (
    histogram_mean,
    histogram_variance,
    poisson_pmf,
    sample_counts_to_histogram,
)
from repro.util.strings import discretize_histogram, levels_to_string

__all__ = [
    "Message",
    "bit_error_rate",
    "bits_from_int",
    "int_from_bits",
    "Interval",
    "clip_intervals",
    "merge_intervals",
    "overlap_length",
    "total_length",
    "derive_rng",
    "make_rng",
    "histogram_mean",
    "histogram_variance",
    "poisson_pmf",
    "sample_counts_to_histogram",
    "discretize_histogram",
    "levels_to_string",
]
