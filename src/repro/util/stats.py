"""Histogram statistics used by the burst-pattern detector.

The detector reasons about *event density histograms*: ``hist[d]`` is the
number of Δt observation windows that contained exactly ``d`` indicator
events (clamped to the last bin). These helpers compute moments of such
histograms and the Poisson reference distribution the paper compares
against when illustrating burstiness (Figure 5).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DetectionError


def sample_counts_to_histogram(counts: Sequence[int], n_bins: int) -> np.ndarray:
    """Histogram window event-counts into ``n_bins`` density bins.

    Counts at or above ``n_bins - 1`` clamp into the last bin, mirroring the
    CC-auditor's fixed 128-entry histogram buffer.
    """
    if n_bins <= 0:
        raise DetectionError(f"histogram needs at least one bin, got {n_bins}")
    arr = np.asarray(counts, dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise DetectionError("event counts cannot be negative")
    clipped = np.minimum(arr, n_bins - 1)
    return np.bincount(clipped, minlength=n_bins).astype(np.int64)


def histogram_mean(hist: Sequence[float]) -> float:
    """Mean event density of a histogram (weighted by bin frequency)."""
    arr = np.asarray(hist, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        return 0.0
    densities = np.arange(arr.size, dtype=np.float64)
    return float((densities * arr).sum() / total)


def histogram_variance(hist: Sequence[float]) -> float:
    """Variance of event density under the histogram's empirical distribution."""
    arr = np.asarray(hist, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        return 0.0
    densities = np.arange(arr.size, dtype=np.float64)
    mean = (densities * arr).sum() / total
    return float(((densities - mean) ** 2 * arr).sum() / total)


def poisson_pmf(k: np.ndarray, lam: float) -> np.ndarray:
    """Poisson probability mass function, vectorized over ``k``.

    Used to draw the reference curve of Figure 5: when Δt is chosen well,
    benign event densities approximate a Poisson distribution while covert
    bursts form a clearly separated second mode.
    """
    if lam < 0:
        raise DetectionError(f"Poisson rate must be non-negative, got {lam}")
    ks = np.asarray(k, dtype=np.float64)
    if lam == 0:
        return np.where(ks == 0, 1.0, 0.0)
    log_pmf = ks * math.log(lam) - lam - np.array(
        [math.lgamma(x + 1.0) for x in ks.ravel()]
    ).reshape(ks.shape)
    return np.exp(log_pmf)


def poisson_fit_quality(hist: Sequence[float]) -> float:
    """Total-variation distance between a histogram and its Poisson fit.

    0 means the empirical density distribution is exactly Poisson (no
    burstiness); values near 1 mean a strongly non-Poisson (e.g. bimodal)
    distribution. A cheap burstiness indicator used in tests and examples.
    """
    arr = np.asarray(hist, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        return 0.0
    empirical = arr / total
    lam = histogram_mean(arr)
    reference = poisson_pmf(np.arange(arr.size), lam)
    return float(0.5 * np.abs(empirical - reference).sum())


def index_of_dispersion(hist: Sequence[float]) -> float:
    """Variance-to-mean ratio of event density (1.0 for a Poisson process).

    Values well above 1 indicate clustering (bursts) in the event train.
    """
    mean = histogram_mean(hist)
    if mean == 0:
        return 0.0
    return histogram_variance(hist) / mean
