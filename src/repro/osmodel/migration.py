"""Migration-aware context unification (Section V-A).

"Occasionally, during context switches, the trojan or spy may be
scheduled to different cores. Fortunately, the OS (and software layers)
have the ability to track the possible migration of processes during
context switches. With such added software support, we can identify
trojan/spy pairs correctly despite their migration."

The CC-auditor records 3-bit *hardware context* ids; after a migration
the same process shows up under a new id and a naive pair analysis would
split its train. This module rebuilds the context→process timeline from
the scheduler's placement and migration records and remaps labeled
conflict events onto stable per-process identifiers.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.sim.machine import Machine


@dataclass(frozen=True)
class _Occupancy:
    """One stretch of a process occupying a hardware context."""

    start: int
    process: str


class ContextTimeline:
    """Who occupied which hardware context, over time."""

    def __init__(self, machine: Machine):
        self._per_ctx: Dict[int, List[_Occupancy]] = {}
        # Initial placements: every process starts on its spawn context at
        # its start time; migrations move it afterwards.
        current_ctx: Dict[str, int] = {}
        events: List[Tuple[int, str, Optional[int], int]] = []
        for proc in machine.processes:
            start = proc.start_time or 0
            # Roll migrations back from the current context to the origin.
            origin = proc.ctx if proc.ctx is not None else -1
            for rec in reversed(machine.scheduler.migrations):
                if rec.process_name == proc.name and rec.new_ctx == origin:
                    origin = rec.old_ctx
            events.append((start, proc.name, None, origin))
        for rec in machine.scheduler.migrations:
            events.append((rec.time, rec.process_name, rec.old_ctx,
                           rec.new_ctx))
        events.sort(key=lambda e: e[0])
        for time, name, _old, new in events:
            self._per_ctx.setdefault(new, []).append(
                _Occupancy(time, name)
            )
            current_ctx[name] = new
        for occupancies in self._per_ctx.values():
            occupancies.sort(key=lambda o: o.start)

    def process_of(self, ctx: int, time: int) -> Optional[str]:
        """The process occupying ``ctx`` at ``time`` (None if unknown).

        Returns the most recent occupant that arrived at or before
        ``time``; contexts the timeline never saw yield None (e.g. noise
        from untracked system activity).
        """
        occupancies = self._per_ctx.get(int(ctx))
        if not occupancies:
            return None
        starts = [o.start for o in occupancies]
        idx = bisect.bisect_right(starts, time) - 1
        if idx < 0:
            return None
        return occupancies[idx].process


def unify_conflict_records(
    machine: Machine,
    times: np.ndarray,
    replacers: np.ndarray,
    victims: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
    """Remap (replacer, victim) context ids to stable per-process ids.

    Returns ``(replacer_pids, victim_pids, pid_of_process)``. Events
    whose context had no tracked occupant keep a distinct id per raw
    context (offset past the process ids), so untracked noise still forms
    consistent pairs.
    """
    timeline = ContextTimeline(machine)
    names = sorted({p.name for p in machine.processes})
    pid_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
    untracked_base = len(names)

    def map_one(ctx: int, time: int) -> int:
        name = timeline.process_of(ctx, time)
        if name is None:
            return untracked_base + int(ctx)
        return pid_of[name]

    t = np.asarray(times, dtype=np.int64)
    reps = np.asarray(replacers)
    vics = np.asarray(victims)
    if not (t.size == reps.size == vics.size):
        raise SchedulingError("labeled record arrays must align")
    rep_pids = np.fromiter(
        (map_one(int(c), int(tt)) for c, tt in zip(reps, t)),
        dtype=np.int64, count=t.size,
    )
    vic_pids = np.fromiter(
        (map_one(int(c), int(tt)) for c, tt in zip(vics, t)),
        dtype=np.int64, count=t.size,
    )
    return rep_pids, vic_pids, pid_of
