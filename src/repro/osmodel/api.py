"""Privileged audit API.

Programming the CC-auditor is a privileged instruction: only a subset of
system users (usually the administrator) may place hardware units under
audit, because the resulting activity data could itself leak sensitive
system behaviour. The OS front-end enforces that check before forwarding
requests to the auditor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.detector import AuditUnit, CCHunter
from repro.errors import AuthorizationError


@dataclass(frozen=True)
class User:
    """A system user as the audit API sees it."""

    name: str
    is_admin: bool = False


@dataclass(frozen=True)
class AuditGrant:
    """A successfully authorized audit request."""

    user: str
    unit: str
    core: Optional[int]


class AuditAPI:
    """OS wrapper around :meth:`CCHunter.audit` with authorization."""

    def __init__(self, hunter: CCHunter):
        self._hunter = hunter
        self._grants: List[AuditGrant] = []

    def request_audit(
        self,
        user: User,
        unit: AuditUnit,
        core: Optional[int] = None,
        dt: Optional[int] = None,
    ) -> AuditGrant:
        """Authorize and forward an audit request.

        Raises :class:`AuthorizationError` for non-administrators; the
        auditor itself raises if both monitor slots are already in use.
        """
        if not user.is_admin:
            raise AuthorizationError(
                f"user {user.name!r} is not authorized to program the "
                "CC-auditor"
            )
        self._hunter.audit(unit, core=core, dt=dt)
        grant = AuditGrant(user=user.name, unit=unit.value, core=core)
        self._grants.append(grant)
        return grant

    @property
    def grants(self) -> Tuple[AuditGrant, ...]:
        return tuple(self._grants)
