"""OS-side support for CC-Hunter (Section V-B).

The kernel exports a privileged audit API (with user authorization
checks), and a daemon process records the CC-auditor's buffers at each OS
time quantum, runs the analyses in the background on an un-audited core,
and accounts for their (small) CPU cost.
"""

from repro.osmodel.api import AuditAPI, User
from repro.osmodel.daemon import CCHunterDaemon, DaemonStats
from repro.osmodel.migration import ContextTimeline, unify_conflict_records

__all__ = [
    "AuditAPI",
    "User",
    "CCHunterDaemon",
    "DaemonStats",
    "ContextTimeline",
    "unify_conflict_records",
]
