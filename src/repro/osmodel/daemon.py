"""The CC-Hunter daemon (Section V-B).

A background process records the auditor's histogram buffers at every OS
time quantum (contention channels) and drains the conflict-miss vector
registers (oscillation channels); the pattern-clustering analysis runs
every 512 quanta and the autocorrelation analysis every quantum. Both are
cheap — the paper measures 0.25 s worst-case per clustering invocation
(0.02 s with feature-dimension reduction) and 0.001 s per autocorrelation
— and run on a currently un-audited core so they do not perturb the
monitored workload.

This module wraps :class:`~repro.core.detector.CCHunter` (which implements
the per-quantum recording) with the OS-visible pieces: monitor-core
placement and analysis-cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.config import CLUSTERING_WINDOW_QUANTA
from repro.core.detector import CCHunter
from repro.core.report import DetectionReport
from repro.errors import SchedulingError
from repro.sim.machine import Machine

#: Analysis CPU costs measured by the paper (seconds per invocation).
CLUSTERING_COST_S = 0.25
CLUSTERING_COST_REDUCED_S = 0.02
AUTOCORR_COST_S = 0.001


@dataclass
class DaemonStats:
    """Bookkeeping of the daemon's own footprint."""

    quanta_observed: int = 0
    autocorr_invocations: int = 0
    clustering_invocations: int = 0
    analysis_cpu_seconds: float = 0.0
    monitor_core: Optional[int] = None


class CCHunterDaemon:
    """OS daemon driving a CC-Hunter session."""

    def __init__(
        self,
        machine: Machine,
        hunter: CCHunter,
        use_dimension_reduction: bool = True,
        clustering_period_quanta: int = CLUSTERING_WINDOW_QUANTA,
    ):
        self.machine = machine
        self.hunter = hunter
        self.use_dimension_reduction = use_dimension_reduction
        self.clustering_period = clustering_period_quanta
        self.stats = DaemonStats()
        # The daemon is one more consumer of the hunter's event source —
        # the same per-quantum observations the detection session folds.
        hunter.source.subscribe(self)

    def push_quantum(self, obs) -> None:
        """Observation-consumer hook: account one quantum's analysis cost."""
        self._account_quantum(obs.quantum, obs.t0, obs.t1)

    def place_monitor(self, audited_cores: Set[int]) -> int:
        """Pick an un-audited core for the daemon's analysis threads."""
        for core in range(self.machine.config.n_cores):
            if core not in audited_cores:
                self.stats.monitor_core = core
                return core
        raise SchedulingError(
            "every core is under audit; no core left for the monitor"
        )

    def _account_quantum(self, quantum: int, t0: int, t1: int) -> None:
        self.stats.quanta_observed += 1
        # Autocorrelation runs at the end of every quantum.
        self.stats.autocorr_invocations += 1
        self.stats.analysis_cpu_seconds += AUTOCORR_COST_S
        # Pattern clustering runs once per clustering window.
        if (quantum + 1) % self.clustering_period == 0:
            self.stats.clustering_invocations += 1
            self.stats.analysis_cpu_seconds += (
                CLUSTERING_COST_REDUCED_S
                if self.use_dimension_reduction
                else CLUSTERING_COST_S
            )

    def overhead_fraction(self) -> float:
        """Daemon CPU time as a fraction of observed wall time."""
        if self.stats.quanta_observed == 0:
            return 0.0
        observed = (
            self.stats.quanta_observed
            * self.machine.config.os_quantum_seconds
        )
        return self.stats.analysis_cpu_seconds / observed

    def report(self) -> DetectionReport:
        """Final detection report (delegates to the hunter)."""
        return self.hunter.report()
