"""Exception hierarchy for the CC-Hunter reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class SchedulingError(SimulationError):
    """A process could not be placed on a hardware context."""


class ChannelError(ReproError):
    """A covert-channel protocol was configured or driven incorrectly."""


class DetectionError(ReproError):
    """A detection algorithm received input it cannot analyze."""


class HardwareError(ReproError):
    """A modeled hardware structure was used outside its contract."""


class AuthorizationError(ReproError):
    """An unprivileged user attempted a privileged audit operation."""
