"""Exception hierarchy and exit-code taxonomy for the CC-Hunter reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.

The CLI maps library failures to a documented, stable exit-code
taxonomy (see docs/ROBUSTNESS.md) via :func:`exit_code_for`, so
operators and scripts can branch on *why* an audit failed without
parsing tracebacks:

====  ======================  ===========================================
code  constant                meaning
====  ======================  ===========================================
0     EXIT_OK                 success, nothing detected
2     EXIT_USAGE              bad arguments / unknown spec strings
3     EXIT_DETECTED           success, covert channel activity detected
4     EXIT_CORRUPT_ARCHIVE    trace archive failed checksum/format checks
5     EXIT_MISSING_INPUT      input file missing or unreadable
6     EXIT_TRIAL_FAILURE      trial execution failed (crash/timeout)
7     EXIT_INTERNAL           any other library error
8     EXIT_BENCH_REGRESSION   benchmark regressed past baseline tolerance
9     EXIT_UNAVAILABLE        detection service unreachable / refused
====  ======================  ===========================================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class SchedulingError(SimulationError):
    """A process could not be placed on a hardware context."""


class ChannelError(ReproError):
    """A covert-channel protocol was configured or driven incorrectly."""


class DetectionError(ReproError):
    """A detection algorithm received input it cannot analyze."""


class HardwareError(ReproError):
    """A modeled hardware structure was used outside its contract."""


class AuthorizationError(ReproError):
    """An unprivileged user attempted a privileged audit operation."""


class TraceCorruptionError(DetectionError):
    """A trace archive is corrupt, truncated, or fails checksum checks."""


class FaultSpecError(ReproError):
    """A fault-injection spec string could not be parsed."""


class BenchError(ReproError):
    """A benchmark spec, baseline, or result document is unusable."""


class BenchRegressionError(BenchError):
    """A fresh benchmark run regressed past its baseline tolerance."""


class ServeError(ReproError):
    """The multi-tenant detection service hit a lifecycle problem."""


class WireError(ServeError):
    """A wire frame violated the ``repro.serve.wire/v1`` protocol."""


class FrameDecodeError(WireError):
    """One frame's payload failed validation.

    Recoverable: the length-prefix framing is still aligned, so the
    service answers with an ``error`` frame and keeps the connection.
    Any other :class:`WireError` (bad length, truncated frame) means
    the byte stream itself can no longer be trusted and is fatal.
    """


class ServeUnavailableError(ServeError):
    """The service endpoint is unreachable or refused the session."""


# ------------------------------------------------------------- exit codes

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_DETECTED = 3
EXIT_CORRUPT_ARCHIVE = 4
EXIT_MISSING_INPUT = 5
EXIT_TRIAL_FAILURE = 6
EXIT_INTERNAL = 7
EXIT_BENCH_REGRESSION = 8
EXIT_UNAVAILABLE = 9


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code an exception maps to (taxonomy above)."""
    # Imported lazily to keep this module dependency-free at import time.
    from repro.exec.runner import ExecError
    from repro.obs.evidence import EvidenceError
    from repro.obs.profile import ProfileError

    if isinstance(exc, BenchRegressionError):
        return EXIT_BENCH_REGRESSION
    if isinstance(exc, (ServeUnavailableError, ConnectionError)):
        return EXIT_UNAVAILABLE
    if isinstance(exc, WireError):
        return EXIT_USAGE
    if isinstance(exc, (TraceCorruptionError, EvidenceError)):
        return EXIT_CORRUPT_ARCHIVE
    if isinstance(exc, (FileNotFoundError, IsADirectoryError, PermissionError)):
        return EXIT_MISSING_INPUT
    if isinstance(exc, ExecError):
        return EXIT_TRIAL_FAILURE
    if isinstance(exc, (FaultSpecError, ConfigError, BenchError, ProfileError)):
        return EXIT_USAGE
    return EXIT_INTERNAL
