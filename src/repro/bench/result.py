"""The ``repro.bench.result/v1`` document: metrics plus provenance.

A benchmark number is only comparable when you know *where* it came
from: which commit, which machine, which mode (quick smoke vs full
run), and when. This module stamps all of that onto a flat metrics
mapping. Two deliberate choices:

- **The timestamp is passed in.** Library code never reads the wall
  clock for provenance — the CLI (or test) supplies an ISO-8601 string,
  so replays and tests are deterministic and a result's timestamp means
  "when the operator says the run happened", not "when this function
  was called".
- **The git revision is best-effort.** Outside a checkout (or without
  git on PATH) it is simply ``None``; a missing revision must never
  fail a benchmark run.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Any, Dict, Mapping, Optional

#: Format tag of a single benchmark result document.
RESULT_FORMAT = "repro.bench.result/v1"


def machine_fingerprint() -> Dict[str, Any]:
    """A small, stable description of the machine a bench ran on."""
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
    }


def git_revision(root: Optional[str] = None) -> Optional[str]:
    """The checkout's HEAD revision, or None when unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def bench_result(
    name: str,
    metrics: Mapping[str, Any],
    *,
    timestamp: Optional[str],
    quick: bool,
    git_rev: Optional[str] = None,
    fingerprint: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one result document from a bench's raw metrics doc."""
    return {
        "format": RESULT_FORMAT,
        "name": name,
        "timestamp": timestamp,
        "quick": quick,
        "git_rev": git_rev,
        "machine": dict(fingerprint) if fingerprint is not None else None,
        "metrics": dict(metrics),
    }
