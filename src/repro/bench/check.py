"""Run registered benches and gate fresh numbers against baselines.

``run_bench`` executes a bench the same way its pytest wrapper would —
it imports ``benchmarks/bench_<name>.py`` and calls the measurement
entry function — but outside pytest, so the harness (and CI) need no
benchmark plugins. Two import-time details matter:

- The bench modules read ``REPRO_BENCH_QUICK`` *at import* to size
  their trial counts, so the env var is set before the import and each
  (bench, quick) pair gets its own module instance under a unique name.
- They do ``from conftest import record``; the harness loads the real
  ``benchmarks/conftest.py`` under that name for the duration of the
  import (saving and restoring any module already registered as
  ``conftest``, e.g. pytest's own), so running the harness from inside
  a test session cannot cross-wire conftests.

``compare_metrics`` is pure — it takes a fresh metrics doc and a
baseline doc and returns per-metric rows — so tests can gate synthetic
documents without running a single trial. ``check_benches`` composes
the two and raises :class:`repro.errors.BenchRegressionError` (CLI
exit code 8) when any metric lands outside its tolerance.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.result import bench_result
from repro.bench.suite import (
    BenchSpec,
    allowed_bound,
    extract_metric,
    get_spec,
)
from repro.errors import BenchError, BenchRegressionError


def _load_bench_module(
    spec: BenchSpec, benchmarks_dir: str, quick: bool
):
    """Import a bench module by path, isolated per (name, quick) pair."""
    module_path = os.path.join(benchmarks_dir, spec.module + ".py")
    if not os.path.isfile(module_path):
        raise BenchError(
            f"benchmark module not found: {module_path}"
        )
    module_name = f"_repro_bench_{spec.name}_{'quick' if quick else 'full'}"

    saved_env = os.environ.get("REPRO_BENCH_QUICK")
    saved_conftest = sys.modules.get("conftest")
    os.environ["REPRO_BENCH_QUICK"] = "1" if quick else ""
    try:
        conftest_path = os.path.join(benchmarks_dir, "conftest.py")
        if os.path.isfile(conftest_path):
            cspec = importlib.util.spec_from_file_location(
                "conftest", conftest_path
            )
            conftest = importlib.util.module_from_spec(cspec)
            cspec.loader.exec_module(conftest)
            sys.modules["conftest"] = conftest
        mspec = importlib.util.spec_from_file_location(
            module_name, module_path
        )
        module = importlib.util.module_from_spec(mspec)
        sys.modules[module_name] = module
        try:
            mspec.loader.exec_module(module)
        except Exception:
            sys.modules.pop(module_name, None)
            raise
        return module
    finally:
        if saved_conftest is not None:
            sys.modules["conftest"] = saved_conftest
        else:
            sys.modules.pop("conftest", None)
        if saved_env is None:
            os.environ.pop("REPRO_BENCH_QUICK", None)
        else:
            os.environ["REPRO_BENCH_QUICK"] = saved_env


def run_bench(
    name: str, benchmarks_dir: str, quick: bool = False
) -> Dict[str, Any]:
    """Run one registered bench; returns its raw metrics document."""
    spec = get_spec(name)
    module = _load_bench_module(spec, benchmarks_dir, quick)
    entry = getattr(module, spec.entry, None)
    if entry is None:
        raise BenchError(
            f"benchmark {name!r}: module {spec.module} has no entry "
            f"function {spec.entry!r}"
        )
    # The entry reads module-level trial counts sized at import; the
    # env var only needed to be live for the import above.
    metrics = entry()
    if not isinstance(metrics, dict):
        raise BenchError(
            f"benchmark {name!r}: entry {spec.entry!r} returned "
            f"{type(metrics).__name__}, expected dict"
        )
    return metrics


def load_baseline(spec: BenchSpec, baseline_dir: str) -> Dict[str, Any]:
    path = os.path.join(baseline_dir, spec.baseline)
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise BenchError(
            f"benchmark {spec.name!r}: baseline file missing: {path}. "
            "Run the full benchmark suite to regenerate it."
        )
    except ValueError as exc:
        raise BenchError(
            f"benchmark {spec.name!r}: baseline {path} is not valid "
            f"JSON: {exc}"
        )
    if not isinstance(doc, dict):
        raise BenchError(
            f"benchmark {spec.name!r}: baseline {path} must be a JSON "
            "object"
        )
    return doc


def compare_metrics(
    spec: BenchSpec,
    fresh: Mapping[str, Any],
    baseline: Mapping[str, Any],
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """Per-metric comparison rows; pure, no benches run.

    Each row carries ``ok`` plus everything needed to print a verdict
    line: metric key, direction, baseline and fresh values, and the
    worst tolerated value (``allowed``). Metrics marked ``quick=False``
    are reported as skipped rows under a quick run instead of judged.
    """
    rows: List[Dict[str, Any]] = []
    for metric in spec.metrics:
        row: Dict[str, Any] = {
            "bench": spec.name,
            "metric": metric.key,
            "direction": metric.direction,
            "kind": metric.kind,
        }
        if quick and not metric.quick:
            row.update(ok=True, skipped=True)
            rows.append(row)
            continue
        base_value = extract_metric(baseline, metric.key)
        fresh_value = extract_metric(fresh, metric.key)
        row.update(skipped=False)
        if metric.kind == "bool":
            # A true baseline is an invariant; a false one gates nothing.
            ok = bool(fresh_value) or not bool(base_value)
            row.update(
                baseline=bool(base_value), fresh=bool(fresh_value), ok=ok
            )
            rows.append(row)
            continue
        base_value = float(base_value)
        fresh_value = float(fresh_value)
        allowed = allowed_bound(metric, base_value)
        if metric.direction == "higher":
            ok = fresh_value >= allowed
        else:
            ok = fresh_value <= allowed
        row.update(
            baseline=base_value,
            fresh=fresh_value,
            allowed=allowed,
            ok=ok,
        )
        rows.append(row)
    return rows


def _format_failure(row: Mapping[str, Any]) -> str:
    if row["kind"] == "bool":
        return (
            f"{row['bench']}.{row['metric']}: baseline {row['baseline']} "
            f"but fresh run produced {row['fresh']}"
        )
    word = "below" if row["direction"] == "higher" else "above"
    return (
        f"{row['bench']}.{row['metric']}: fresh {row['fresh']:.6g} is "
        f"{word} the tolerated bound {row['allowed']:.6g} "
        f"(baseline {row['baseline']:.6g}, {row['direction']} is better)"
    )


def check_benches(
    names: Optional[Sequence[str]] = None,
    *,
    baseline_dir: str,
    benchmarks_dir: str,
    quick: bool = False,
    history_path: Optional[str] = None,
    timestamp: Optional[str] = None,
    git_rev: Optional[str] = None,
    fingerprint: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the named benches (default: all) and gate against baselines.

    Returns a report ``{"quick", "benches": [{name, rows, metrics}]}``
    after appending one result document per bench to ``history_path``
    (when given). Raises :class:`BenchRegressionError` once all benches
    have run if any gated metric failed — every verdict is evaluated
    and recorded before the gate trips, so one regression does not hide
    another.
    """
    from repro.bench.suite import suite_names

    if not names:
        names = suite_names()
    report: Dict[str, Any] = {"quick": quick, "benches": []}
    failures: List[Dict[str, Any]] = []
    history_records = []
    for name in names:
        spec = get_spec(name)
        baseline = load_baseline(spec, baseline_dir)
        fresh = run_bench(name, benchmarks_dir, quick=quick)
        rows = compare_metrics(spec, fresh, baseline, quick=quick)
        failures.extend(row for row in rows if not row["ok"])
        report["benches"].append(
            {"name": name, "rows": rows, "metrics": fresh}
        )
        history_records.append(
            bench_result(
                name,
                fresh,
                timestamp=timestamp,
                quick=quick,
                git_rev=git_rev,
                fingerprint=fingerprint,
            )
        )
    if history_path is not None:
        from repro.bench.history import append_history

        append_history(history_path, history_records)
    if failures:
        raise BenchRegressionError(
            "benchmark regression: "
            + "; ".join(_format_failure(row) for row in failures)
        )
    return report
