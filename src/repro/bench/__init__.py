"""Unified benchmark harness with baseline regression gating.

The ``benchmarks/bench_*.py`` files each measure one performance claim
(columnar hot path, instrumentation overhead) and commit their numbers
to ``BENCH_*.json`` snapshots at the repo root. Before this package
those snapshots were one-off: no history, no machine fingerprint, and
only hand-written per-bench assertions guarding them. This package
turns them into *baselines*:

- ``repro.bench.suite`` — the declarative registry: every bench is a
  :class:`BenchSpec` naming its module, entry function, committed
  baseline file, and the metrics it gates on, each a
  :class:`MetricSpec` with a higher/lower-is-better direction and a
  per-metric tolerance.
- ``repro.bench.check`` — runs a bench through its entry function and
  compares the fresh metrics against the committed baseline; any
  out-of-tolerance metric raises :class:`repro.errors.BenchRegressionError`
  (CLI exit code 8). ``repro bench check`` is the user-facing gate;
  CI runs it with ``--quick``.
- ``repro.bench.result`` — the ``repro.bench.result/v1`` document:
  metrics plus git revision and machine fingerprint, with the
  timestamp *passed in* by the caller (library code never reads the
  wall clock for provenance).
- ``repro.bench.history`` — append-only ``benchmarks/history.jsonl``
  of result documents, the trajectory the one-off snapshots lacked.

See docs/PERFORMANCE.md ("Benchmark harness and regression gating").
"""

from repro.bench.check import (
    check_benches,
    compare_metrics,
    run_bench,
)
from repro.bench.history import (
    HISTORY_PATH_DEFAULT,
    append_history,
    load_history,
)
from repro.bench.result import (
    RESULT_FORMAT,
    bench_result,
    git_revision,
    machine_fingerprint,
)
from repro.bench.suite import (
    SUITE,
    BenchSpec,
    MetricSpec,
    extract_metric,
    get_spec,
    suite_names,
)

__all__ = [
    "SUITE",
    "BenchSpec",
    "MetricSpec",
    "extract_metric",
    "get_spec",
    "suite_names",
    "RESULT_FORMAT",
    "bench_result",
    "git_revision",
    "machine_fingerprint",
    "HISTORY_PATH_DEFAULT",
    "append_history",
    "load_history",
    "check_benches",
    "compare_metrics",
    "run_bench",
]
