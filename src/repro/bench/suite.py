"""The benchmark registry: which benches exist and what they gate on.

Each :class:`BenchSpec` binds a ``benchmarks/bench_*.py`` module to its
committed baseline file and the metrics the regression gate compares.
Metrics are declared with an explicit *direction* — for throughput,
higher is better; for overhead ratios, lower is better — plus a
per-metric tolerance sized for the reality that CI runners are slower
and noisier than the development machines that wrote the baselines:

- ``tolerance`` is relative: a higher-is-better metric fails when the
  fresh value drops below ``baseline * (1 - tolerance)``; lower-is-
  better when it rises above ``baseline * (1 + tolerance)``.
- ``abs_slack`` is additive headroom on top of the relative bound,
  for small ratios (a 5% overhead baseline with 5 points of absolute
  slack tolerates up to ~10%) where relative tolerance alone would
  gate on noise.
- ``quick=False`` marks metrics that a 2-trial ``--quick`` smoke run
  cannot resolve (few-percent relative overheads); the quick gate
  skips them, mirroring the benches' own quick-mode behavior.
- ``kind="bool"`` metrics ignore direction/tolerance: a baseline of
  true must stay true (verdict-identity invariants).

The generous throughput tolerances are intentional: the gate exists to
catch the ~10x regression of losing the columnar hot path (1602 -> 156
quanta/s, docs/PERFORMANCE.md), not 20% runner-to-runner variance. The
old hard floor of 400 quanta/s is now just the ``quanta_per_second.off``
row below — one instance of a general mechanism.
"""

from __future__ import annotations

from typing import Any, Mapping, NamedTuple, Tuple

from repro.errors import BenchError


class MetricSpec(NamedTuple):
    """One gated metric inside a bench's result document."""

    #: Dotted keypath into the bench's metrics doc, e.g.
    #: ``"quanta_per_second.off"`` or ``"session.speedup"``.
    key: str
    #: ``"higher"`` or ``"lower"`` is better (ignored for bools).
    direction: str = "higher"
    #: Relative tolerance against the baseline value.
    tolerance: float = 0.5
    #: Additive slack on top of the relative bound (same unit as the
    #: metric; useful for small ratios like overhead fractions).
    abs_slack: float = 0.0
    #: Whether a ``--quick`` (low-trial) run can resolve this metric.
    quick: bool = True
    #: ``"float"`` or ``"bool"``.
    kind: str = "float"


class BenchSpec(NamedTuple):
    """One registered benchmark: module, entry point, baseline, gates."""

    #: Registry name (``repro bench check <name>``).
    name: str
    #: Module filename under ``benchmarks/`` (no ``.py``).
    module: str
    #: Zero-argument entry function returning the metrics doc.
    entry: str
    #: Committed baseline filename at the repo root.
    baseline: str
    metrics: Tuple[MetricSpec, ...]


SUITE: Tuple[BenchSpec, ...] = (
    BenchSpec(
        name="obs_overhead",
        module="bench_obs_overhead",
        entry="measure_overhead",
        baseline="BENCH_obs.json",
        metrics=(
            # Absolute-throughput anchor: catching the loss of the
            # columnar hot path, not runner variance. 0.75 relative
            # tolerance on a ~1600 q/s baseline gates at ~400 q/s —
            # the old FLOOR_QUANTA_PER_SECOND, derived instead of
            # hard-coded.
            MetricSpec("quanta_per_second.off", "higher", tolerance=0.75),
            MetricSpec(
                "overhead_vs_off.counters", "lower",
                tolerance=0.5, abs_slack=0.05, quick=False,
            ),
            MetricSpec(
                "overhead_vs_off.evidence", "lower",
                tolerance=0.5, abs_slack=0.08, quick=False,
            ),
            MetricSpec(
                "overhead_vs_off.profile", "lower",
                tolerance=0.5, abs_slack=0.05, quick=False,
            ),
            MetricSpec(
                "overhead_vs_off.telemetry", "lower",
                tolerance=0.5, abs_slack=0.05, quick=False,
            ),
            # The profiler must keep attributing essentially the whole
            # session (>= 90% of run wall time) on any machine.
            MetricSpec(
                "profile_attribution_coverage", "higher", tolerance=0.08,
            ),
            MetricSpec(
                "evidence_verdicts_identical", kind="bool",
            ),
            MetricSpec(
                "profile_verdicts_identical", kind="bool",
            ),
        ),
    ),
    BenchSpec(
        name="columnar",
        module="bench_columnar",
        entry="measure_columnar",
        baseline="BENCH_columnar.json",
        metrics=(
            MetricSpec(
                "session.columnar_quanta_per_second", "higher",
                tolerance=0.75,
            ),
            # Speedup ratios divide out machine speed, so they travel
            # better than raw throughput; still leave wide margins.
            MetricSpec("session.speedup", "higher", tolerance=0.6),
            MetricSpec(
                "kernels.autocorrelogram.speedup", "higher", tolerance=0.8,
            ),
            MetricSpec(
                "kernels.density_histogram.speedup", "higher", tolerance=0.8,
            ),
            MetricSpec("session.verdicts_identical", kind="bool"),
        ),
    ),
    BenchSpec(
        name="sim_throughput",
        module="bench_sim_throughput",
        entry="measure_sim_throughput",
        baseline="BENCH_sim.json",
        metrics=(
            MetricSpec(
                "session.vectorized_quanta_per_second", "higher",
                tolerance=0.75,
            ),
            # The session ratio is modest by design (its sweep phases
            # are all-miss thrash and both paths share the rewritten
            # bloom/tracker internals); gate it loosely and anchor the
            # hard claim on the hot-set kernel below.
            MetricSpec("session.speedup", "higher", tolerance=0.6),
            MetricSpec(
                "kernels.access_series_hot_set.speedup", "higher",
                tolerance=0.6,
            ),
            # Quick mode's 50k-key sample fits inside the scalar path's
            # probe_words memo, deflating the batch-vs-scalar ratio to
            # single digits; only the full 200k-key run resolves it.
            MetricSpec(
                "kernels.bloom.add.speedup", "higher", tolerance=0.8,
                quick=False,
            ),
            MetricSpec(
                "kernels.bloom.contains.speedup", "higher", tolerance=0.8,
                quick=False,
            ),
            MetricSpec("session.events_identical", kind="bool"),
            MetricSpec(
                "kernels.access_series_hot_set.counters_identical",
                kind="bool",
            ),
        ),
    ),
    BenchSpec(
        name="serve_load",
        module="bench_serve_load",
        entry="measure_serve_load",
        baseline="BENCH_serve.json",
        metrics=(
            # Verdict round-trip latency under light load: the gate
            # exists to catch the event loop blocking (a synchronous
            # fold stalling every tenant), not scheduler jitter —
            # hence the wide relative band plus absolute slack.
            MetricSpec(
                "tiers.t2.verdict_latency_ms.p50", "lower",
                tolerance=2.0, abs_slack=50.0,
            ),
            MetricSpec(
                "tiers.t8.quanta_per_second", "higher", tolerance=0.75,
            ),
            # Shedding must stay bounded at the top tier: losing the
            # sampling ladder (hard-shedding everything, or shedding
            # nothing and ballooning latency) moves this a lot.
            MetricSpec(
                "tiers.t8.shed_rate", "lower",
                tolerance=1.0, abs_slack=0.25,
            ),
            # The 16-tenant tier only runs in the full bench; the
            # 2-trial --quick smoke stops at t8.
            MetricSpec(
                "tiers.t16.quanta_per_second", "higher",
                tolerance=0.75, quick=False,
            ),
            MetricSpec(
                "tiers.t16.verdict_latency_ms.p99", "lower",
                tolerance=3.0, abs_slack=250.0, quick=False,
            ),
            MetricSpec("clean_report_identical", kind="bool"),
        ),
    ),
)


def suite_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in SUITE)


def get_spec(name: str) -> BenchSpec:
    for spec in SUITE:
        if spec.name == name:
            return spec
    raise BenchError(
        f"unknown benchmark {name!r}; registered: {', '.join(suite_names())}"
    )


def extract_metric(doc: Mapping[str, Any], key: str) -> Any:
    """Resolve a dotted keypath inside a metrics document."""
    node: Any = doc
    for part in key.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise BenchError(
                f"metric {key!r} missing from result document "
                f"(stopped at {part!r})"
            )
        node = node[part]
    return node


def allowed_bound(spec: MetricSpec, baseline: float) -> float:
    """The worst fresh value ``spec`` tolerates against ``baseline``."""
    if spec.direction == "higher":
        return baseline * (1.0 - spec.tolerance) - spec.abs_slack
    if spec.direction == "lower":
        return baseline * (1.0 + spec.tolerance) + spec.abs_slack
    raise BenchError(
        f"metric {spec.key!r}: direction must be 'higher' or 'lower', "
        f"got {spec.direction!r}"
    )
