"""Append-only JSONL history of benchmark result documents.

``benchmarks/history.jsonl`` is the trajectory the one-off
``BENCH_*.json`` snapshots lacked: every harness run (local or CI)
appends one ``repro.bench.result/v1`` line per bench, so "when did the
columnar path get slower?" becomes a grep instead of an archaeology
dig. CI uploads the file as a build artifact (.github/workflows/ci.yml).

Reads are tolerant: a corrupt line is skipped, never fatal — history is
telemetry, not a source of truth; baselines stay in ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping

#: Repo-relative default location for the run history.
HISTORY_PATH_DEFAULT = os.path.join("benchmarks", "history.jsonl")


def append_history(
    path: str, records: Iterable[Mapping[str, Any]]
) -> int:
    """Append result documents as JSONL; returns the count written."""
    count = 0
    lines = []
    for record in records:
        lines.append(json.dumps(record, sort_keys=True))
        count += 1
    if not lines:
        return 0
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")
    return count


def load_history(path: str) -> List[Dict[str, Any]]:
    """All parseable result documents in the file (corrupt lines skipped)."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict):
                records.append(doc)
    return records
