"""Trace export and offline analysis.

In a real deployment the CC-Hunter daemon records the auditor's buffers
online and the (cheap) analyses run in the background; for forensics and
tuning, operators also want to *persist* a session's indicator events and
re-run detection offline with different parameters. This module
round-trips a machine's taps through a single ``.npz`` archive and runs
the detectors on the stored trains — no simulator required on the
analysis side.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.autocorr import autocorrelogram
from repro.core.clustering import analyze_recurrence
from repro.core.density import default_delta_t
from repro.core.event_train import dominant_pair_series
from repro.core.oscillation import OscillationAnalysis, analyze_autocorrelogram
from repro.core.report import DetectionReport, UnitVerdict
from repro.errors import DetectionError
from repro.sim.machine import Machine
from repro.util.stats import sample_counts_to_histogram

_FORMAT_VERSION = 1


@dataclass
class TraceArchive:
    """A recorded monitoring session: indicator events plus metadata.

    Sparse events (bus locks, conflict misses) keep exact timestamps.
    The dense functional-unit wait events are stored as *exact per-Δt
    counts* at each unit's default Δt — the quantity every burst analysis
    consumes — which keeps archives compact without thinning densities.
    """

    quantum_cycles: int
    n_quanta: int
    bus_lock_times: np.ndarray
    divider_dt: int
    divider_wait_counts: Dict[int, np.ndarray]
    multiplier_dt: int
    multiplier_wait_counts: Dict[int, np.ndarray]
    cache_times: np.ndarray
    cache_replacers: np.ndarray
    cache_victims: np.ndarray

    @property
    def horizon(self) -> int:
        return self.quantum_cycles * self.n_quanta


def export_traces(
    machine: Machine,
    path: Union[str, Path],
    n_quanta: Optional[int] = None,
) -> TraceArchive:
    """Persist a machine's recorded indicator events to ``path`` (.npz)."""
    quanta = n_quanta if n_quanta is not None else machine.quanta_completed
    if quanta <= 0:
        raise DetectionError("nothing recorded: run at least one quantum")
    horizon = quanta * machine.quantum_cycles
    times, reps, vics = machine.cache_miss_tap.records_in(0, horizon)
    divider_dt = default_delta_t("divider")
    multiplier_dt = default_delta_t("multiplier")
    payload = {
        "format_version": np.array([_FORMAT_VERSION]),
        "quantum_cycles": np.array([machine.quantum_cycles]),
        "n_quanta": np.array([quanta]),
        "divider_dt": np.array([divider_dt]),
        "multiplier_dt": np.array([multiplier_dt]),
        "bus_lock_times": machine.bus_lock_tap.times_in(0, horizon),
        "cache_times": times,
        "cache_replacers": reps,
        "cache_victims": vics,
    }
    divider_counts: Dict[int, np.ndarray] = {}
    multiplier_counts: Dict[int, np.ndarray] = {}
    for core in range(machine.config.n_cores):
        div = machine.divider_wait_tap_for(core).density_counts(
            divider_dt, 0, horizon
        ).astype(np.int32)
        mul = machine.multiplier_wait_tap_for(core).density_counts(
            multiplier_dt, 0, horizon
        ).astype(np.int32)
        divider_counts[core] = div
        multiplier_counts[core] = mul
        payload[f"divider_wait_counts_{core}"] = div
        payload[f"multiplier_wait_counts_{core}"] = mul
    np.savez_compressed(Path(path), **payload)
    return TraceArchive(
        quantum_cycles=machine.quantum_cycles,
        n_quanta=quanta,
        bus_lock_times=payload["bus_lock_times"],
        divider_dt=divider_dt,
        divider_wait_counts=divider_counts,
        multiplier_dt=multiplier_dt,
        multiplier_wait_counts=multiplier_counts,
        cache_times=times,
        cache_replacers=reps,
        cache_victims=vics,
    )


def load_traces(path: Union[str, Path]) -> TraceArchive:
    """Load a trace archive written by :func:`export_traces`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise DetectionError(
                f"trace archive format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        divider_counts: Dict[int, np.ndarray] = {}
        multiplier_counts: Dict[int, np.ndarray] = {}
        for key in data.files:
            if key.startswith("divider_wait_counts_"):
                divider_counts[int(key.rsplit("_", 1)[1])] = data[key]
            elif key.startswith("multiplier_wait_counts_"):
                multiplier_counts[int(key.rsplit("_", 1)[1])] = data[key]
        return TraceArchive(
            quantum_cycles=int(data["quantum_cycles"][0]),
            n_quanta=int(data["n_quanta"][0]),
            bus_lock_times=data["bus_lock_times"],
            divider_dt=int(data["divider_dt"][0]),
            divider_wait_counts=divider_counts,
            multiplier_dt=int(data["multiplier_dt"][0]),
            multiplier_wait_counts=multiplier_counts,
            cache_times=data["cache_times"],
            cache_replacers=data["cache_replacers"],
            cache_victims=data["cache_victims"],
        )


# ---------------------------------------------------------------- analysis


def _burst_verdict_from_times(
    unit_name: str,
    times: np.ndarray,
    archive: TraceArchive,
    dt: int,
) -> UnitVerdict:
    histograms: List[np.ndarray] = []
    for q in range(archive.n_quanta):
        t0 = q * archive.quantum_cycles
        t1 = t0 + archive.quantum_cycles
        window = times[(times >= t0) & (times < t1)]
        counts = np.bincount(
            (window - t0) // dt,
            minlength=-(-archive.quantum_cycles // dt),
        )
        histograms.append(sample_counts_to_histogram(counts, 128))
    return _burst_verdict_from_histograms(unit_name, histograms, archive)


def _burst_verdict_from_counts(
    unit_name: str,
    counts: np.ndarray,
    archive: TraceArchive,
    base_dt: int,
    dt: Optional[int],
) -> UnitVerdict:
    """Burst verdict from stored per-Δt counts (optionally rebinned).

    A custom ``dt`` must be an integer multiple of the recorded base Δt;
    adjacent windows are summed to rebin.
    """
    if dt is not None and dt != base_dt:
        if dt % base_dt != 0:
            raise DetectionError(
                f"offline Δt {dt} must be a multiple of the recorded "
                f"base Δt {base_dt}"
            )
        factor = dt // base_dt
        trim = (counts.size // factor) * factor
        counts = counts[:trim].reshape(-1, factor).sum(axis=1)
        base_dt = dt
    per_quantum = -(-archive.quantum_cycles // base_dt)
    histograms: List[np.ndarray] = []
    for q in range(archive.n_quanta):
        window = counts[q * per_quantum:(q + 1) * per_quantum]
        histograms.append(sample_counts_to_histogram(window, 128))
    return _burst_verdict_from_histograms(unit_name, histograms, archive)


def _burst_verdict_from_histograms(
    unit_name: str,
    histograms: List[np.ndarray],
    archive: TraceArchive,
) -> UnitVerdict:
    recurrence = analyze_recurrence(histograms)
    best_lr = max(
        (a.likelihood_ratio for a in recurrence.burst_analyses), default=0.0
    )
    return UnitVerdict(
        unit=unit_name,
        method="burst",
        detected=bool(recurrence.recurrent and recurrence.burst_clusters),
        quanta_analyzed=archive.n_quanta,
        max_likelihood_ratio=best_lr,
        recurrent=recurrence.recurrent,
        burst_window_fraction=recurrence.burst_window_fraction,
    )


def _cache_verdict(
    archive: TraceArchive,
    max_lag: int,
    min_train_events: int,
    window_fraction: float,
) -> UnitVerdict:
    width = max(1, int(round(archive.quantum_cycles * window_fraction)))
    analyses: List[OscillationAnalysis] = []
    windows = 0
    start = 0
    while start < archive.horizon:
        end = min(start + width, archive.horizon)
        lo = np.searchsorted(archive.cache_times, start, side="left")
        hi = np.searchsorted(archive.cache_times, end, side="left")
        windows += 1
        labels, _idx, _pair = dominant_pair_series(
            archive.cache_replacers[lo:hi], archive.cache_victims[lo:hi]
        )
        if (
            labels.size >= min_train_events
            and 4 <= int(labels.sum()) <= labels.size - 4
        ):
            analyses.append(
                analyze_autocorrelogram(autocorrelogram(labels, max_lag))
            )
        start = end
    significant = [a for a in analyses if a.significant]
    periods = [a.dominant_period for a in significant if a.dominant_period]
    return UnitVerdict(
        unit="cache",
        method="oscillation",
        detected=bool(significant),
        quanta_analyzed=windows,
        oscillating_windows=len(significant),
        max_peak=max((a.max_peak for a in analyses), default=0.0),
        dominant_period=float(np.median(periods)) if periods else None,
    )


def analyze_traces(
    archive: TraceArchive,
    bus_dt: Optional[int] = None,
    divider_dt: Optional[int] = None,
    multiplier_dt: Optional[int] = None,
    max_lag: int = 1000,
    min_train_events: int = 64,
    window_fraction: float = 1.0,
) -> DetectionReport:
    """Run the full CC-Hunter analysis offline over a trace archive.

    Unlike the online auditor (limited to two monitors), offline analysis
    covers every recorded unit — the "super-secure" configuration the
    paper mentions, affordable here because the data is already captured.
    """
    verdicts = [
        _burst_verdict_from_times(
            "membus",
            archive.bus_lock_times,
            archive,
            bus_dt or default_delta_t("membus"),
        )
    ]
    for core, counts in sorted(archive.divider_wait_counts.items()):
        if counts.sum():
            verdicts.append(
                _burst_verdict_from_counts(
                    f"divider(core {core})",
                    counts,
                    archive,
                    archive.divider_dt,
                    divider_dt,
                )
            )
    for core, counts in sorted(archive.multiplier_wait_counts.items()):
        if counts.sum():
            verdicts.append(
                _burst_verdict_from_counts(
                    f"multiplier(core {core})",
                    counts,
                    archive,
                    archive.multiplier_dt,
                    multiplier_dt,
                )
            )
    verdicts.append(
        _cache_verdict(archive, max_lag, min_train_events, window_fraction)
    )
    return DetectionReport(verdicts=tuple(verdicts))
