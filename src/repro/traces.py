"""Trace export and offline analysis.

In a real deployment the CC-Hunter daemon records the auditor's buffers
online and the (cheap) analyses run in the background; for forensics and
tuning, operators also want to *persist* a session's indicator events and
re-run detection offline with different parameters. This module
round-trips a machine's taps through a single ``.npz`` archive and
replays the stored trains through the same streaming pipeline the live
detector uses (:class:`ArchiveEventSource`) — no simulator required on
the analysis side, and no second analysis code path to drift.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union
from zipfile import BadZipFile

import numpy as np

from repro.core.density import default_delta_t
from repro.core.report import DetectionReport
from repro.errors import DetectionError, TraceCorruptionError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.tracing import trace_span
from repro.pipeline.session import build_session
from repro.pipeline.sinks import VerdictSink
from repro.pipeline.source import (
    ChannelKind,
    ChannelSpec,
    ConflictRecords,
    ObservationConsumer,
    QuantumObservation,
)
from repro.sim.machine import Machine
from repro.util.dtypes import ensure_int64

#: Version 2 adds the per-record CRC32 ``checksum_manifest``; version 1
#: archives (no manifest) still load, with integrity checks skipped.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Scalar metadata keys: corruption here is never skippable.
_META_KEYS = ("format_version", "quantum_cycles", "n_quanta",
              "divider_dt", "multiplier_dt")

_log = get_logger("traces")


def _crc(arr: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (dtype included via the manifest)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _checksum_manifest(payload: Dict[str, np.ndarray]) -> str:
    """JSON manifest of per-record CRC32 / dtype / shape."""
    manifest = {
        key: {
            "crc32": _crc(value),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
        for key, value in payload.items()
    }
    return json.dumps(manifest, sort_keys=True)


def _gap_channel(key: str) -> str:
    """Unit name a corrupted record key maps to (for gap reporting)."""
    if key == "bus_lock_times":
        return "membus"
    if key.startswith("cache_"):
        return "cache"
    for kind in ("divider", "multiplier"):
        prefix = f"{kind}_wait_counts_"
        if key.startswith(prefix):
            return f"{kind}(core {key[len(prefix):]})"
    return key


@dataclass
class TraceArchive:
    """A recorded monitoring session: indicator events plus metadata.

    Sparse events (bus locks, conflict misses) keep exact timestamps.
    The dense functional-unit wait events are stored as *exact per-Δt
    counts* at each unit's default Δt — the quantity every burst analysis
    consumes — which keeps archives compact without thinning densities.

    ``gaps`` lists the units whose records failed integrity checks and
    were blanked by a skip-and-continue load (see :func:`load_traces`);
    replay stamps matching ``corrupt:<unit>`` fault tags so analyzers
    degrade instead of silently trusting zeroed data.
    """

    quantum_cycles: int
    n_quanta: int
    bus_lock_times: np.ndarray
    divider_dt: int
    divider_wait_counts: Dict[int, np.ndarray]
    multiplier_dt: int
    multiplier_wait_counts: Dict[int, np.ndarray]
    cache_times: np.ndarray
    cache_replacers: np.ndarray
    cache_victims: np.ndarray
    gaps: Tuple[str, ...] = field(default=())

    @property
    def horizon(self) -> int:
        return self.quantum_cycles * self.n_quanta


def export_traces(
    machine: Machine,
    path: Union[str, Path],
    n_quanta: Optional[int] = None,
) -> TraceArchive:
    """Persist a machine's recorded indicator events to ``path`` (.npz)."""
    quanta = n_quanta if n_quanta is not None else machine.quanta_completed
    if quanta <= 0:
        raise DetectionError("nothing recorded: run at least one quantum")
    horizon = quanta * machine.quantum_cycles
    times, reps, vics = machine.cache_miss_tap.records_in(0, horizon)
    divider_dt = default_delta_t("divider")
    multiplier_dt = default_delta_t("multiplier")
    payload = {
        "format_version": np.array([_FORMAT_VERSION]),
        "quantum_cycles": np.array([machine.quantum_cycles]),
        "n_quanta": np.array([quanta]),
        "divider_dt": np.array([divider_dt]),
        "multiplier_dt": np.array([multiplier_dt]),
        "bus_lock_times": machine.bus_lock_tap.times_in(0, horizon),
        "cache_times": times,
        "cache_replacers": reps,
        "cache_victims": vics,
    }
    divider_counts: Dict[int, np.ndarray] = {}
    multiplier_counts: Dict[int, np.ndarray] = {}
    for core in range(machine.config.n_cores):
        div = machine.divider_wait_tap_for(core).density_counts(
            divider_dt, 0, horizon
        ).astype(np.int32)
        mul = machine.multiplier_wait_tap_for(core).density_counts(
            multiplier_dt, 0, horizon
        ).astype(np.int32)
        divider_counts[core] = div
        multiplier_counts[core] = mul
        payload[f"divider_wait_counts_{core}"] = div
        payload[f"multiplier_wait_counts_{core}"] = mul
    # The integrity manifest covers every record written above; it is
    # excluded from itself (the CRCs protect the data, zip structure
    # protects the manifest).
    payload["checksum_manifest"] = np.array(_checksum_manifest(payload))
    np.savez_compressed(Path(path), **payload)
    return TraceArchive(
        quantum_cycles=machine.quantum_cycles,
        n_quanta=quanta,
        bus_lock_times=payload["bus_lock_times"],
        divider_dt=divider_dt,
        divider_wait_counts=divider_counts,
        multiplier_dt=multiplier_dt,
        multiplier_wait_counts=multiplier_counts,
        cache_times=times,
        cache_replacers=reps,
        cache_victims=vics,
    )


def _read_archive_payload(path: Path) -> Dict[str, np.ndarray]:
    """Decode every record in the archive, mapping container damage to
    :class:`TraceCorruptionError` (missing files propagate as OSError)."""
    try:
        with np.load(path) as data:
            return {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise
    except (BadZipFile, zlib.error, ValueError, EOFError, OSError) as exc:
        raise TraceCorruptionError(
            f"{path}: not a readable trace archive ({exc})"
        ) from exc


def load_traces(
    path: Union[str, Path],
    verify: bool = True,
    on_corruption: str = "raise",
) -> TraceArchive:
    """Load a trace archive written by :func:`export_traces`.

    When the archive carries a checksum manifest (format >= 2) and
    ``verify`` is on, every record's CRC32/dtype/shape is re-checked.
    ``on_corruption`` decides what a mismatch does:

    - ``"raise"`` (default): :class:`TraceCorruptionError` naming every
      damaged record — nothing half-loaded escapes;
    - ``"skip"``: damaged *data* records are blanked (sparse events
      emptied, dense counts zeroed), the affected unit is listed in
      ``TraceArchive.gaps``, and loading continues. Damaged metadata
      always raises — there is no safe way to guess the geometry.
    """
    if on_corruption not in ("raise", "skip"):
        raise DetectionError(
            f"on_corruption must be 'raise' or 'skip', got {on_corruption!r}"
        )
    src = Path(path)
    payload = _read_archive_payload(src)
    missing = [k for k in _META_KEYS if k not in payload]
    if missing:
        raise TraceCorruptionError(
            f"{src}: truncated archive, missing metadata {missing}"
        )
    version = int(payload["format_version"][0])
    if version not in _SUPPORTED_VERSIONS:
        raise TraceCorruptionError(
            f"{src}: trace archive format {version} not supported "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    corrupt: List[str] = []
    if verify and "checksum_manifest" in payload:
        manifest: Dict[str, Any] = json.loads(
            str(payload["checksum_manifest"][()])
        )
        absent = [k for k in manifest if k not in payload]
        if absent:
            raise TraceCorruptionError(
                f"{src}: truncated archive, records missing: {sorted(absent)}"
            )
        for key, expected in sorted(manifest.items()):
            value = payload[key]
            if (
                str(value.dtype) != expected["dtype"]
                or list(value.shape) != expected["shape"]
                or _crc(value) != expected["crc32"]
            ):
                corrupt.append(key)
    bad_meta = [k for k in corrupt if k in _META_KEYS]
    if bad_meta:
        raise TraceCorruptionError(
            f"{src}: archive metadata failed integrity checks: {bad_meta}"
        )
    gaps: List[str] = []
    if corrupt:
        if on_corruption == "raise":
            raise TraceCorruptionError(
                f"{src}: records failed integrity checks: {sorted(corrupt)} "
                "(re-record the trace, or load with on_corruption='skip')"
            )
        # Skip-and-continue: blank each damaged record and carry a gap.
        # The parallel cache_* arrays are blanked together — a partial
        # conflict log would silently mislabel records.
        if any(k.startswith("cache_") for k in corrupt):
            corrupt = sorted(set(corrupt) | {
                k for k in payload if k.startswith("cache_")
            })
        for key in corrupt:
            arr = payload[key]
            # Dense per-Δt counts keep their length (zeroed); sparse
            # event/record arrays are emptied.
            payload[key] = (
                np.zeros_like(arr) if "wait_counts" in key else arr[:0]
            )
            channel = _gap_channel(key)
            if channel not in gaps:
                gaps.append(channel)
            _log.warning(
                "%s: record %r failed integrity check; blanked "
                "(unit %r will replay degraded)", src, key, channel,
            )
    divider_counts: Dict[int, np.ndarray] = {}
    multiplier_counts: Dict[int, np.ndarray] = {}
    for key in payload:
        if key.startswith("divider_wait_counts_"):
            divider_counts[int(key.rsplit("_", 1)[1])] = payload[key]
        elif key.startswith("multiplier_wait_counts_"):
            multiplier_counts[int(key.rsplit("_", 1)[1])] = payload[key]
    return TraceArchive(
        quantum_cycles=int(payload["quantum_cycles"][0]),
        n_quanta=int(payload["n_quanta"][0]),
        # Event timestamps re-enter the columnar pipeline here: widen
        # narrow integers, reject float columns loudly (see
        # repro.util.dtypes).
        bus_lock_times=ensure_int64(
            payload["bus_lock_times"], "bus lock times"
        ),
        divider_dt=int(payload["divider_dt"][0]),
        divider_wait_counts=divider_counts,
        multiplier_dt=int(payload["multiplier_dt"][0]),
        multiplier_wait_counts=multiplier_counts,
        cache_times=ensure_int64(payload["cache_times"], "cache times"),
        cache_replacers=payload["cache_replacers"],
        cache_victims=payload["cache_victims"],
        gaps=tuple(gaps),
    )


# ----------------------------------------------------------------- replay


def _rebin_counts(counts: np.ndarray, base_dt: int, dt: int) -> np.ndarray:
    """Sum adjacent per-Δt windows to a coarser Δt (integer multiple)."""
    if dt % base_dt != 0:
        raise DetectionError(
            f"offline Δt {dt} must be a multiple of the recorded "
            f"base Δt {base_dt}"
        )
    factor = dt // base_dt
    if factor == 1:
        return counts
    trim = (counts.size // factor) * factor
    return counts[:trim].reshape(-1, factor).sum(axis=1)


class ArchiveEventSource:
    """EventSource replaying a :class:`TraceArchive` quantum by quantum.

    The second implementation of the pipeline's source contract (the
    simulator's :class:`~repro.pipeline.source.MachineEventSource` is the
    first): each recorded unit becomes a burst channel at its stored (or
    rebinned) Δt, plus the conflict channel, so archives flow through the
    *same* analyzers as live sessions. Unlike the online auditor (limited
    to two monitor slots), replay offers every recorded unit — the
    "super-secure" configuration the paper mentions, affordable offline
    because the data is already captured.

    ``include_idle`` keeps functional-unit channels that recorded no
    events at all (by default they are skipped, matching the report
    layout of live two-slot sessions).
    """

    def __init__(
        self,
        archive: TraceArchive,
        bus_dt: Optional[int] = None,
        divider_dt: Optional[int] = None,
        multiplier_dt: Optional[int] = None,
        include_idle: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.archive = archive
        self._specs: List[ChannelSpec] = []
        #: name -> (dt, whole-horizon per-Δt counts) for dense channels.
        self._dense: Dict[str, Tuple[int, np.ndarray]] = {}
        self._consumers: List[ObservationConsumer] = []
        self.metrics = metrics if metrics is not None else get_default()
        #: Fault tags stamped on every replayed observation: units whose
        #: records were blanked by a skip-and-continue load.
        self._fault_tags: Tuple[str, ...] = tuple(
            f"corrupt:{unit}" for unit in archive.gaps
        )

        self._bus_dt = bus_dt or default_delta_t("membus")
        self._specs.append(
            ChannelSpec("membus", ChannelKind.BURST, self._bus_dt)
        )
        for core, counts in sorted(archive.divider_wait_counts.items()):
            if counts.sum() or include_idle:
                dt = divider_dt or archive.divider_dt
                self._add_dense(
                    f"divider(core {core})",
                    _rebin_counts(counts, archive.divider_dt, dt),
                    dt,
                )
        for core, counts in sorted(archive.multiplier_wait_counts.items()):
            if counts.sum() or include_idle:
                dt = multiplier_dt or archive.multiplier_dt
                self._add_dense(
                    f"multiplier(core {core})",
                    _rebin_counts(counts, archive.multiplier_dt, dt),
                    dt,
                )
        self._specs.append(ChannelSpec("cache", ChannelKind.CONFLICT))

    def _add_dense(self, name: str, counts: np.ndarray, dt: int) -> None:
        self._specs.append(ChannelSpec(name, ChannelKind.BURST, dt))
        # Archives store dense counts as int32 for compactness; the
        # pipeline's columnar contract is int64 everywhere, so widen at
        # the rehydration boundary (floats fail loudly — an archive with
        # fractional counts is corrupt, not rescalable).
        self._dense[name] = (dt, ensure_int64(counts, f"{name} counts"))

    @property
    def quantum_cycles(self) -> int:
        return self.archive.quantum_cycles

    def channels(self) -> Tuple[ChannelSpec, ...]:
        return tuple(self._specs)

    def subscribe(self, consumer: ObservationConsumer) -> None:
        self._consumers.append(consumer)

    def _observation(self, quantum: int) -> QuantumObservation:
        archive = self.archive
        t0 = quantum * archive.quantum_cycles
        t1 = t0 + archive.quantum_cycles
        counts: Dict[str, np.ndarray] = {}
        times = archive.bus_lock_times
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="left")
        counts["membus"] = np.bincount(
            (times[lo:hi] - t0) // self._bus_dt,
            minlength=-(-archive.quantum_cycles // self._bus_dt),
        )
        for name, (dt, dense) in self._dense.items():
            per_quantum = -(-archive.quantum_cycles // dt)
            counts[name] = dense[quantum * per_quantum:(quantum + 1) * per_quantum]
        lo = np.searchsorted(archive.cache_times, t0, side="left")
        hi = np.searchsorted(archive.cache_times, t1, side="left")
        conflicts = ConflictRecords(
            times=archive.cache_times[lo:hi],
            replacers=archive.cache_replacers[lo:hi],
            victims=archive.cache_victims[lo:hi],
        )
        return QuantumObservation(
            quantum=quantum, t0=t0, t1=t1, counts=counts,
            conflicts=conflicts, faults=self._fault_tags,
        )

    def __iter__(self) -> Iterator[QuantumObservation]:
        for quantum in range(self.archive.n_quanta):
            yield self._observation(quantum)

    def replay(self) -> None:
        """Push every recorded quantum to the subscribed consumers."""
        timed = self.metrics.enabled
        t_start = perf_counter() if timed else 0.0
        with trace_span("replay.run", n_quanta=self.archive.n_quanta):
            for obs in self:
                for consumer in self._consumers:
                    consumer.push_quantum(obs)
        if timed:
            elapsed = perf_counter() - t_start
            self.metrics.counter(
                "cchunter_replay_quanta_total",
                "archived quanta replayed through the pipeline",
            ).inc(self.archive.n_quanta)
            self.metrics.counter(
                "cchunter_replay_seconds_total",
                "wall-clock seconds spent replaying archives",
            ).inc(elapsed)
            if elapsed > 0:
                self.metrics.gauge(
                    "cchunter_replay_quanta_per_second",
                    "replay throughput of the last replay() call",
                ).set(self.archive.n_quanta / elapsed)
            _log.info(
                "replayed %d quanta in %.3fs",
                self.archive.n_quanta,
                elapsed,
            )


def analyze_traces(
    archive: TraceArchive,
    bus_dt: Optional[int] = None,
    divider_dt: Optional[int] = None,
    multiplier_dt: Optional[int] = None,
    max_lag: int = 1000,
    min_train_events: int = 64,
    window_fraction: float = 1.0,
    sinks: Iterable[VerdictSink] = (),
    track_detection_latency: bool = False,
    injectors: Iterable[object] = (),
    capture_evidence: bool = False,
    evidence_capacity: Optional[int] = None,
) -> DetectionReport:
    """Run the full CC-Hunter analysis offline over a trace archive.

    Builds an :class:`ArchiveEventSource` and replays it through a
    standard :func:`~repro.pipeline.session.build_session` pipeline — the
    identical analyzer code path live sessions use, so offline verdicts
    cannot drift from online ones. ``sinks`` (e.g. a
    :class:`~repro.pipeline.sinks.MetricsSink`) and
    ``track_detection_latency`` make the replayed session evaluate
    verdicts eagerly each quantum, exactly like a live eager session.

    ``injectors`` (see :mod:`repro.faults`) perturb the replayed stream
    through a :class:`~repro.faults.FaultInjectingSource` before it
    reaches the analyzers — replaying one recorded session under many
    deterministic fault scenarios.
    """
    source = ArchiveEventSource(
        archive,
        bus_dt=bus_dt,
        divider_dt=divider_dt,
        multiplier_dt=multiplier_dt,
    )
    feed = source
    injectors = list(injectors)
    if injectors:
        from repro.faults.source import FaultInjectingSource

        feed = FaultInjectingSource(source, injectors)
    session = build_session(
        feed,
        window_fraction=window_fraction,
        max_lag=max_lag,
        min_train_events=min_train_events,
        sinks=sinks,
        track_detection_latency=track_detection_latency,
        capture_evidence=capture_evidence,
        evidence_capacity=evidence_capacity,
    )
    feed.subscribe(session)
    source.replay()
    if session.sinks:
        return session.close()
    return session.current_verdicts(with_evidence=capture_evidence)
