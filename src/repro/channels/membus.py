"""The memory bus covert channel (Wu et al. style, Section IV-A).

To transmit a '1', the trojan repeatedly performs atomic unaligned memory
accesses spanning two cache lines; each triggers a memory bus lock (still
emulated on QPI-based parts), putting the bus into a contended state the
spy observes as inflated memory latency. For a '0' the trojan leaves the
bus un-contended. The spy continuously times its own (cache-missing)
memory accesses and averages a number of latency samples per bit.

Calibration: one locking access every ``lock_period`` cycles sustains
roughly ``Δt / lock_period = 100000 / 5000 = 20`` lock events per Δt
window — the burst mode near histogram bin #20 in Figure 6a.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.channels.base import ChannelConfig, CovertChannel
from repro.channels.decoder import decode_by_threshold
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.sim.process import BusLockBurst, BusSample, Process, WaitUntil


class MemoryBusCovertChannel(CovertChannel):
    """Trojan/spy pair communicating through bus-lock contention."""

    name = "membus-channel"

    def __init__(
        self,
        machine: Machine,
        config: ChannelConfig,
        lock_period: int = 5_000,
        samples_per_bit: int = 55,
    ):
        super().__init__(machine, config)
        if lock_period <= 0:
            raise ChannelError("lock period must be positive")
        if samples_per_bit <= 0:
            raise ChannelError("samples_per_bit must be positive")
        self.lock_period = lock_period
        self.samples_per_bit = samples_per_bit
        self.locks_per_one = max(1, self.active_cycles // lock_period)
        self.sample_period = max(
            1, self.active_cycles // samples_per_bit
        )
        #: Per-sample latencies the spy observed, one array per bit (Fig. 2).
        self.spy_samples: List[np.ndarray] = []

    @property
    def decode_threshold(self) -> float:
        """Mean-latency decision boundary between locked and idle bus."""
        bus = self.machine.config.bus
        return bus.base_latency + bus.locked_extra_latency / 2.0

    def _trojan_body(self, proc: Process):
        for i, bit in enumerate(self.message):
            yield WaitUntil(self.bit_start(i))
            if bit == 1:
                yield BusLockBurst(
                    count=self.locks_per_one, period=self.lock_period
                )
            # '0': leave the bus un-contended for the whole period.

    def _spy_body(self, proc: Process):
        for i in range(len(self.message)):
            yield WaitUntil(self.bit_start(i))
            latencies = yield BusSample(
                count=self.samples_per_bit, period=self.sample_period
            )
            self.spy_samples.append(latencies)
            bits = decode_by_threshold(
                [float(np.mean(latencies))], self.decode_threshold
            )
            self.decoded_bits.append(bits[0])

    def sample_latencies(self) -> np.ndarray:
        """All spy latency samples in order — the series of Figure 2."""
        if not self.spy_samples:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.spy_samples)
