"""Covert timing channel reproductions (the paper's attack workloads).

Three trojan/spy pairs drive the simulated machine exactly the way the
paper's test channels drive real hardware:

- :mod:`membus` — bus locking via atomic unaligned accesses (Wu et al.).
- :mod:`divider` — SMT integer-divider contention (Wang & Lee style).
- :mod:`cache` — L2 conflict-miss ping-pong over set groups (Xu et al.).

These exist to *exercise the detector*; the library's contribution is
CC-Hunter, not the attacks (whose robustness the paper defers to prior
work).
"""

from repro.channels.base import ChannelConfig, CovertChannel
from repro.channels.cache import CacheCovertChannel
from repro.channels.decoder import (
    decode_by_threshold,
    decode_ratio,
    mean_by_bit_window,
)
from repro.channels.divider import DividerCovertChannel, MultiplierCovertChannel
from repro.channels.membus import MemoryBusCovertChannel

__all__ = [
    "ChannelConfig",
    "CovertChannel",
    "MemoryBusCovertChannel",
    "DividerCovertChannel",
    "MultiplierCovertChannel",
    "CacheCovertChannel",
    "decode_by_threshold",
    "decode_ratio",
    "mean_by_bit_window",
]
