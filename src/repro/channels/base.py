"""Common covert-channel machinery: configuration, phase timing, deploy.

All three channels share a phase-synchronized protocol: time is divided
into bit periods of ``1/bandwidth`` seconds; at the start of each period
the trojan either creates conflicts (to signal the bit) or stays idle, and
the spy measures the resource during the period's *active window*. The
paper's threat model assumes the pair has already synchronized (channel
setup/confirmation is why real channels take minutes for short messages),
which the shared bit clock models.

At low bandwidths the trojan does not stretch its conflicts over the whole
multi-second bit period — it emits the burst of conflicts needed to signal
reliably and then goes dormant (the behaviour the paper highlights when
discussing 0.1 bps channels and finer observation windows). The burst
length is ``min(bit_period, max_active_cycles)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ChannelError
from repro.sim.engine import Priority
from repro.sim.machine import Machine
from repro.sim.process import Process
from repro.util.bitstream import Message, bit_error_rate


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters shared by every covert channel implementation."""

    message: Message
    bandwidth_bps: float = 10.0
    #: Cap on the conflict-generating part of a bit period (cycles).
    #: ``None`` uses the channel's own default: contention channels hold
    #: the resource for up to 100 M cycles (40 ms) per bit, the cache
    #: channel's sweep/probe rounds burst for up to 25 M cycles.
    max_active_cycles: Optional[int] = None
    #: Cycle at which bit 0's period starts (post-synchronization).
    start_time: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ChannelError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if self.max_active_cycles is not None and self.max_active_cycles <= 0:
            raise ChannelError("max_active_cycles must be positive")
        if self.start_time < 0:
            raise ChannelError("start_time cannot be negative")


class CovertChannel:
    """Base class wiring a trojan/spy pair onto a machine.

    Subclasses implement :meth:`_trojan_body` and :meth:`_spy_body` as
    process generators and may use :meth:`bit_start` / :attr:`active_cycles`
    for phase timing. Call :meth:`deploy` to place both processes.
    """

    #: Subclass override: human-readable channel name.
    name = "covert-channel"
    #: Subclass override: default cap on the active part of a bit period.
    default_active_cap = 100_000_000

    def __init__(self, machine: Machine, config: ChannelConfig):
        self.machine = machine
        self.config = config
        self.bit_period = machine.clock.cycles_per_bit(config.bandwidth_bps)
        cap = config.max_active_cycles or self.default_active_cap
        self.active_cycles = min(self.bit_period, cap)
        self.decoded_bits: List[int] = []
        self.trojan: Optional[Process] = None
        self.spy: Optional[Process] = None

    # ------------------------------------------------------------- protocol

    @property
    def message(self) -> Message:
        return self.config.message

    def bit_start(self, index: int) -> int:
        """Cycle at which bit ``index``'s period begins."""
        if index < 0:
            raise ChannelError(f"bit index cannot be negative: {index}")
        return self.config.start_time + index * self.bit_period

    @property
    def transmission_end(self) -> int:
        """Cycle at which the last bit period ends."""
        return self.bit_start(len(self.message))

    def quanta_needed(self) -> int:
        """OS quanta required to cover the whole transmission."""
        return -(-self.transmission_end // self.machine.quantum_cycles)

    # --------------------------------------------------------------- deploy

    def _trojan_body(self, proc: Process):
        raise NotImplementedError

    def _spy_body(self, proc: Process):
        raise NotImplementedError

    def deploy(
        self,
        trojan_ctx: Optional[int] = None,
        spy_ctx: Optional[int] = None,
        core: Optional[int] = None,
    ) -> None:
        """Spawn the trojan (producer) and spy (consumer) processes.

        Pass ``core`` to co-locate both as hyperthreads of one core (the
        divider and cache channels need SMT co-residency / cache sharing);
        pass explicit contexts for full control. The trojan runs at
        producer priority so its per-bit conflicts are committed before the
        spy samples the same bit window.
        """
        if self.trojan is not None:
            raise ChannelError(f"{self.name} is already deployed")
        self.trojan = Process(
            f"{self.name}.trojan", body=self._trojan_body,
            priority=Priority.PRODUCER,
        )
        self.spy = Process(
            f"{self.name}.spy", body=self._spy_body, priority=Priority.CONSUMER
        )
        self.machine.spawn(self.trojan, ctx=trojan_ctx, core=core)
        self.machine.spawn(self.spy, ctx=spy_ctx, core=core)

    # ------------------------------------------------------------- results

    @property
    def trojan_ctx(self) -> int:
        if self.trojan is None or self.trojan.ctx is None:
            raise ChannelError(f"{self.name} is not deployed")
        return self.trojan.ctx

    @property
    def spy_ctx(self) -> int:
        if self.spy is None or self.spy.ctx is None:
            raise ChannelError(f"{self.name} is not deployed")
        return self.spy.ctx

    def bit_error_rate(self) -> float:
        """BER of what the spy decoded against the transmitted message."""
        return bit_error_rate(tuple(self.message), self.decoded_bits)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(bw={self.config.bandwidth_bps} bps, "
            f"bits={len(self.message)})"
        )
