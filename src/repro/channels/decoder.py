"""Spy-side decoding helpers.

The spy accumulates latency samples per bit window and infers the bit from
their statistics: a mean above a threshold for contention channels (bus,
divider), or a group-latency ratio above/below 1 for the cache channel.
These helpers are shared by the channel implementations and by analysis
code reproducing Figures 2, 3 and 7.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ChannelError


def decode_by_threshold(mean_latencies: Sequence[float], threshold: float
                        ) -> List[int]:
    """One bit per window: 1 if the window's mean latency exceeds threshold.

    >>> decode_by_threshold([300.0, 150.0, 290.0], threshold=250.0)
    [1, 0, 1]
    """
    return [1 if m > threshold else 0 for m in mean_latencies]


def decode_ratio(
    g1_means: Sequence[float], g0_means: Sequence[float]
) -> List[int]:
    """Cache-channel decode: 1 when G1 accesses took longer than G0.

    A ratio above 1 means the G1 sets missed (the trojan replaced them),
    hence a '1' was sent; below 1 means the G0 sets missed.
    """
    if len(g1_means) != len(g0_means):
        raise ChannelError("group mean sequences must have equal length")
    bits = []
    for g1, g0 in zip(g1_means, g0_means):
        if g0 <= 0:
            raise ChannelError(f"non-positive G0 mean latency: {g0}")
        bits.append(1 if g1 / g0 > 1.0 else 0)
    return bits


def mean_by_bit_window(samples: np.ndarray, samples_per_bit: int
                       ) -> np.ndarray:
    """Mean of each consecutive ``samples_per_bit`` group of samples.

    Trailing samples that do not fill a window are dropped.
    """
    if samples_per_bit <= 0:
        raise ChannelError("samples_per_bit must be positive")
    arr = np.asarray(samples, dtype=np.float64)
    n_windows = arr.size // samples_per_bit
    if n_windows == 0:
        raise ChannelError(
            f"{arr.size} samples cannot fill a window of {samples_per_bit}"
        )
    trimmed = arr[: n_windows * samples_per_bit]
    return trimmed.reshape(n_windows, samples_per_bit).mean(axis=1)
