"""The shared-L2 cache covert channel (Xu et al., Section IV-C).

During synchronization the pair agrees on two groups of cache sets, G1
and G0. To transmit bit ``b`` the trojan repeatedly sweeps group ``G_b``,
replacing cache blocks there; the spy concurrently probes one of its own
lines in every set of both groups and times the two groups separately.
The swept group misses (the spy's lines keep getting evicted), the other
hits, and the latency ratio reveals the bit (Figure 7).

Like the bus and divider trojans — which repeat their contention pattern
"a number of times" per bit — trojan and spy loop in alternating *rounds*
inside each bit's active window. Each round the trojan's sweep evicts the
spy's signal line in every set of the swept group (a trojan→spy conflict
miss) and the spy's probe re-fetches it, evicting a trojan line (a
spy→trojan conflict miss). Because every covert block is re-touched every
round, eviction-to-refetch distances stay far inside the conflict
tracker's four-generation horizon regardless of message bit patterns, and
the conflict-miss train alternates 'T→S' and 'S→T' phases of one event
per swept set — an oscillation whose wavelength equals the *total* number
of sets used (512 sets → autocorrelation peaks near lag 512, Figure 8b),
inflated slightly by interference noise.

Eviction mechanics: the spy keeps one signal line per set resident; the
trojan keeps ``associativity`` lines per set, so every covert set holds
one more live line than it has ways and each insertion evicts exactly the
other party's line. The trojan orders each sweep so the line the spy
evicted last round is re-fetched last (hits first, refreshing LRU
positions) — the reliability trick real attack code uses; the order
self-heals after noise disturbances because a full in-order pass always
leaves the set's recency equal to the pass order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.channels.base import ChannelConfig, CovertChannel
from repro.channels.decoder import decode_ratio
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.sim.process import CacheAccessSeries, Process, WaitUntil
from repro.util.rng import derive_rng

#: Disjoint tag namespaces for the two parties' covert working sets.
_TROJAN_TAG_BASE = 0x10_000
_SPY_TAG_BASE = 0x20_000


class CacheCovertChannel(CovertChannel):
    """Trojan/spy pair communicating through L2 conflict misses."""

    name = "cache-channel"
    #: Sweep/probe rounds burst briefly, then the pair goes dormant — the
    #: low-bandwidth behaviour the paper's Figure 11 discussion describes.
    default_active_cap = 25_000_000

    def __init__(
        self,
        machine: Machine,
        config: ChannelConfig,
        n_sets_total: int = 512,
        group_seed: int = 7,
        rounds_per_cluster: int = 4,
        evasion_skip_prob: float = 0.0,
        evasion_subset_frac: float = 1.0,
    ):
        super().__init__(machine, config)
        n_cache_sets = machine.config.l2.n_sets
        if n_sets_total < 2 or n_sets_total % 2 != 0:
            raise ChannelError("n_sets_total must be an even number >= 2")
        if n_sets_total > n_cache_sets:
            raise ChannelError(
                f"channel wants {n_sets_total} sets; cache has {n_cache_sets}"
            )
        if rounds_per_cluster < 2:
            raise ChannelError("need at least 2 rounds per cluster")
        if not 0.0 <= evasion_skip_prob < 1.0:
            raise ChannelError("evasion skip probability must be in [0, 1)")
        if not 0.0 < evasion_subset_frac <= 1.0:
            raise ChannelError("evasion subset fraction must be in (0, 1]")
        #: Detection-evasion knobs (Section III / IV-D). ``skip`` drops whole
        #: rounds (which only thins the train — the surviving rounds keep
        #: their clean periodicity); ``subset`` sweeps a random subset of
        #: the group's sets each round, which genuinely jitters the phase
        #: run-lengths — at the price of the spy's latency contrast. The
        #: evasion benchmark quantifies both.
        self.evasion_skip_prob = evasion_skip_prob
        self.evasion_subset_frac = evasion_subset_frac
        self._evasion_rng = derive_rng(group_seed, "cache-evasion")
        self.n_sets_total = n_sets_total
        # "Dynamically determined" groups: the sync phase picks the sets; we
        # model it with a seeded draw of distinct sets.
        rng = derive_rng(group_seed, "cache-channel-groups")
        chosen = rng.choice(n_cache_sets, size=n_sets_total, replace=False)
        half = n_sets_total // 2
        self.g1_sets: Tuple[int, ...] = tuple(int(s) for s in chosen[:half])
        self.g0_sets: Tuple[int, ...] = tuple(int(s) for s in chosen[half:])

        ways = machine.config.l2.associativity
        cache = machine.config.l2
        # Generous per-phase time allowances (steady-state sweeps are mostly
        # hits; one miss per set).
        gap = 8
        sweep_cycles = half * (
            (ways - 1) * (cache.hit_latency + gap)
            + (cache.miss_latency + gap)
        )
        probe_cycles = n_sets_total * (cache.miss_latency + gap)
        self.sweep_allowance = int(sweep_cycles * 1.5) + 10_000
        self.probe_allowance = int(probe_cycles * 1.5) + 10_000
        self.round_period = self.sweep_allowance + self.probe_allowance

        # Round pacing: rounds come in clusters of ``rounds_per_cluster``
        # back-to-back sweep/probe rounds; clusters are spread across the
        # bit period, at most one per OS quantum. A high-bandwidth bit is
        # a single dense burst of rounds; a 0.1 bps bit emits a short
        # cluster of conflicts roughly every quantum and is otherwise
        # dormant — the paper's low-bandwidth behaviour ("a certain number
        # of conflicts ... frequently followed by longer periods of
        # dormancy").
        self.rounds_per_cluster = rounds_per_cluster
        cluster_duration = rounds_per_cluster * self.round_period
        if cluster_duration > self.bit_period:
            raise ChannelError(
                f"bit period {self.bit_period} too short for a cluster of "
                f"{rounds_per_cluster} sweep/probe rounds "
                f"({cluster_duration} cycles); lower the bandwidth or the "
                "number of sets"
            )
        quantum = machine.quantum_cycles
        self.cluster_interval = max(
            cluster_duration, min(self.bit_period // 4, quantum)
        )
        n_clusters = max(1, self.bit_period // self.cluster_interval)
        while (
            n_clusters > 1
            and (n_clusters - 1) * self.cluster_interval + cluster_duration
            > self.bit_period
        ):
            n_clusters -= 1
        self.clusters_per_bit = int(n_clusters)
        self.rounds_per_bit = self.clusters_per_bit * rounds_per_cluster
        # Per-set rotating write order for the trojan's sweep (see module doc).
        self._trojan_order: Dict[int, List[int]] = {
            s: [_TROJAN_TAG_BASE + s * 16 + w for w in range(ways)]
            for s in self.g1_sets + self.g0_sets
        }
        # Without subset evasion every set of a swept group rotates in
        # lockstep, so a group has only ``ways`` distinct sweep patterns;
        # precompute them as (n, 2) arrays the cache's batch kernel takes
        # without conversion, and track one rotation counter per group.
        self._ways = ways
        self._sweep_variants: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        self._sweep_rot: Dict[Tuple[int, ...], int] = {}
        if self.evasion_subset_frac >= 1.0:
            for group in (self.g1_sets, self.g0_sets):
                variants = []
                for r in range(ways):
                    rows = [
                        (s, _TROJAN_TAG_BASE + s * 16 + (r + w) % ways)
                        for s in group
                        for w in range(ways)
                    ]
                    variants.append(np.asarray(rows, dtype=np.int64))
                self._sweep_variants[group] = variants
                self._sweep_rot[group] = 0
        #: The spy's probe patterns never change: one resident line per
        #: set of each group, in group order.
        self._spy_probe_g1 = np.asarray(
            [(s, self._spy_tag(s)) for s in self.g1_sets], dtype=np.int64
        )
        self._spy_probe_g0 = np.asarray(
            [(s, self._spy_tag(s)) for s in self.g0_sets], dtype=np.int64
        )
        #: Spy-observed mean access latency per group per bit (Figure 7).
        self.g1_means: List[float] = []
        self.g0_means: List[float] = []
        #: Constant measurement overhead the spy's timing loop adds per
        #: access (pointer chasing + timestamping), included in reported
        #: ratios so they land in the paper's ~0.5-2.0 range rather than
        #: the raw miss/hit latency ratio.
        self.measure_overhead = 150.0

    def group_of_bit(self, bit: int) -> Tuple[int, ...]:
        return self.g1_sets if bit == 1 else self.g0_sets

    def _spy_tag(self, set_index: int) -> int:
        return _SPY_TAG_BASE + set_index

    # --------------------------------------------------------------- bodies

    def _trojan_sweep_accesses(self, sets: Sequence[int]):
        """One sweep: every trojan line of every set, rotation applied.

        Returns a precomputed ``(n, 2)`` array when the group's sweep
        pattern is one of the ``ways`` lockstep rotations, else a tuple
        of pairs (subset evasion diverges the per-set rotations).

        Under subset evasion each set is swept only with probability
        ``evasion_subset_frac`` this round; unswept sets keep their
        rotation state (their spy line stays resident, so the spy reads a
        weaker signal there).
        """
        variants = self._sweep_variants.get(sets)
        if variants is not None:
            r = self._sweep_rot[sets]
            self._sweep_rot[sets] = (r + 1) % self._ways
            return variants[r]
        accesses: List[Tuple[int, int]] = []
        for s in sets:
            if (
                self.evasion_subset_frac < 1.0
                and self._evasion_rng.random() > self.evasion_subset_frac
            ):
                continue
            order = self._trojan_order[s]
            accesses.extend((s, tag) for tag in order)
            # The spy's next probe will evict order[0] (this sweep leaves it
            # least-recent); re-fetch it last next round: rotate left one.
            self._trojan_order[s] = order[1:] + order[:1]
        return tuple(accesses)

    def _round_start(self, bit_index: int, round_index: int) -> int:
        cluster, within = divmod(round_index, self.rounds_per_cluster)
        return (
            self.bit_start(bit_index)
            + cluster * self.cluster_interval
            + within * self.round_period
        )

    def _trojan_body(self, proc: Process):
        for i, bit in enumerate(self.message):
            group = self.group_of_bit(bit)
            for r in range(self.rounds_per_bit):
                if (
                    self.evasion_skip_prob
                    and self._evasion_rng.random() < self.evasion_skip_prob
                ):
                    continue  # evasion: break periodicity, starve the spy
                yield WaitUntil(self._round_start(i, r))
                sweep = self._trojan_sweep_accesses(group)
                if len(sweep):
                    yield CacheAccessSeries(accesses=sweep)

    def _spy_body(self, proc: Process):
        for i in range(len(self.message)):
            g1_lat: List[np.ndarray] = []
            g0_lat: List[np.ndarray] = []
            for r in range(self.rounds_per_bit):
                # Probe after this round's sweep has finished.
                yield WaitUntil(
                    self._round_start(i, r) + self.sweep_allowance
                )
                lat1 = yield CacheAccessSeries(accesses=self._spy_probe_g1)
                lat0 = yield CacheAccessSeries(accesses=self._spy_probe_g0)
                g1_lat.append(lat1)
                g0_lat.append(lat0)
            g1_mean = float(np.concatenate(g1_lat).mean()) + self.measure_overhead
            g0_mean = float(np.concatenate(g0_lat).mean()) + self.measure_overhead
            self.g1_means.append(g1_mean)
            self.g0_means.append(g0_mean)
            self.decoded_bits.append(decode_ratio([g1_mean], [g0_mean])[0])

    # -------------------------------------------------------------- results

    def latency_ratios(self) -> np.ndarray:
        """Per-bit G1/G0 mean access-time ratios — the series of Figure 7."""
        if not self.g1_means:
            return np.zeros(0, dtype=np.float64)
        return np.asarray(self.g1_means) / np.asarray(self.g0_means)

    def deploy(self, trojan_ctx=None, spy_ctx=None, core=None):
        """Deploy on any two contexts; the L2 is shared machine-wide.

        The paper runs the pair on different VMs/cores of one processor;
        by default the trojan and spy land on different cores.
        """
        if trojan_ctx is None and spy_ctx is None and core is None:
            trojan_ctx, spy_ctx = 0, self.machine.config.threads_per_core
        super().deploy(trojan_ctx=trojan_ctx, spy_ctx=spy_ctx, core=core)
