"""Channel coding for covert transmission reliability.

The paper stresses that covert channels pay heavily for reliability —
synchronization, confirmation, retransmission (131.5 s for 64 reliable
bits in Okamura et al.) — and that noise forces the pair to slow down
rather than hide. This module models the simplest such reliability
mechanism, an ``n``-fold repetition code with majority decoding, so
experiments can trade raw bandwidth for post-noise fidelity and show
that coding does not help against mitigations (a 50% BER stays 50%
under any repetition factor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ChannelError
from repro.util.bitstream import Message


@dataclass(frozen=True)
class RepetitionCode:
    """Repeat each payload bit ``factor`` times; decode by majority."""

    factor: int = 3

    def __post_init__(self) -> None:
        if self.factor < 1 or self.factor % 2 == 0:
            raise ChannelError(
                f"repetition factor must be odd and >= 1, got {self.factor}"
            )

    def encode(self, message: Message) -> Message:
        """The on-channel message: every bit repeated ``factor`` times.

        >>> RepetitionCode(3).encode(Message.from_bits([1, 0])).bits
        (1, 1, 1, 0, 0, 0)
        """
        bits: List[int] = []
        for bit in message:
            bits.extend([bit] * self.factor)
        return Message.from_bits(bits)

    def decode(self, raw_bits: Sequence[int]) -> List[int]:
        """Majority-vote each group of ``factor`` received bits.

        Trailing incomplete groups are dropped (the transmission was cut
        short).
        """
        decoded = []
        for i in range(0, len(raw_bits) - self.factor + 1, self.factor):
            group = raw_bits[i : i + self.factor]
            decoded.append(1 if sum(group) * 2 > self.factor else 0)
        return decoded

    def effective_bandwidth(self, raw_bandwidth_bps: float) -> float:
        """Payload bits per second at a given on-channel signaling rate."""
        if raw_bandwidth_bps <= 0:
            raise ChannelError("bandwidth must be positive")
        return raw_bandwidth_bps / self.factor

    def residual_ber(self, raw_ber: float) -> float:
        """Post-decoding bit error rate for i.i.d. raw errors.

        The majority vote fails when more than half the repetitions flip:
        ``sum_{k > n/2} C(n, k) p^k (1-p)^(n-k)``. Repetition only helps
        when the raw BER is below 1/2 — a mitigation that drives raw
        errors to coin-flipping defeats any repetition factor.

        >>> RepetitionCode(3).residual_ber(0.5)
        0.5
        """
        if not 0.0 <= raw_ber <= 1.0:
            raise ChannelError(f"BER must be in [0, 1], got {raw_ber}")
        n = self.factor
        total = 0.0
        for k in range(n // 2 + 1, n + 1):
            total += (
                math.comb(n, k) * raw_ber**k * (1 - raw_ber) ** (n - k)
            )
        return total


def coded_session_bits(message: Message, factor: int = 3) -> Message:
    """Convenience: the on-channel bits for a payload under repetition.

    Feed the result to any channel's ``ChannelConfig``; decode the spy's
    ``decoded_bits`` with :meth:`RepetitionCode.decode`.
    """
    return RepetitionCode(factor).encode(message)
