"""The integer-divider covert channel (Section IV-A, Wang & Lee style).

Trojan and spy run as hyperthreads of the same SMT core. For a '1' the
trojan saturates the core's division units with back-to-back divisions;
for a '0' it spins in an empty loop. The spy continuously executes loop
iterations containing a fixed number of integer divisions and times them:
contended iterations take visibly longer. Every spy division that waits
on the busy divider raises the wait-on-busy indicator event CC-Hunter
audits (Δt = 500 cycles; saturation sustains ~96 wait events per window,
the second mode of Figure 6b).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.channels.base import ChannelConfig, CovertChannel
from repro.channels.decoder import decode_by_threshold
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.sim.process import DividerLoop, DividerSaturate, Process, WaitUntil


class DividerCovertChannel(CovertChannel):
    """Trojan/spy SMT pair communicating through divider contention."""

    name = "divider-channel"
    #: Functional unit the pair contends on ('divider' or 'multiplier').
    unit_kind = "divider"

    def __init__(
        self,
        machine: Machine,
        config: ChannelConfig,
        divs_per_iter: int = 4,
    ):
        super().__init__(machine, config)
        if divs_per_iter <= 0:
            raise ChannelError("divs_per_iter must be positive")
        self.divs_per_iter = divs_per_iter
        divider = getattr(machine.config, self.unit_kind)
        self._lat_idle = (
            divider.loop_overhead + divs_per_iter * divider.latency
        )
        self._lat_contended = divider.loop_overhead + divs_per_iter * (
            divider.latency + divider.contended_extra_latency
        )
        # Size the spy's loop so it fits the active window even when every
        # iteration is contended; the remainder of the window is slack.
        self.iterations_per_bit = max(
            1, self.active_cycles // self._lat_contended
        )
        #: Per-iteration latencies the spy observed, per bit (Figure 3).
        self.spy_samples: List[np.ndarray] = []

    @property
    def decode_threshold(self) -> float:
        """Mean iteration latency separating contended from idle loops."""
        return (self._lat_idle + self._lat_contended) / 2.0

    def deploy(self, trojan_ctx=None, spy_ctx=None, core=None):
        """Deploy; both processes must share a core (SMT hyperthreads)."""
        if core is None and (trojan_ctx is None or spy_ctx is None):
            core = 0
        super().deploy(trojan_ctx=trojan_ctx, spy_ctx=spy_ctx, core=core)
        if self.trojan.core != self.spy.core:
            raise ChannelError(
                f"{self.name} requires trojan and spy on one SMT core"
            )

    def _trojan_body(self, proc: Process):
        for i, bit in enumerate(self.message):
            yield WaitUntil(self.bit_start(i))
            if bit == 1:
                yield DividerSaturate(
                    duration=self.active_cycles, unit=self.unit_kind
                )
            # '0': empty loop — divider left un-contended.

    def _spy_body(self, proc: Process):
        for i in range(len(self.message)):
            yield WaitUntil(self.bit_start(i))
            latencies = yield DividerLoop(
                iterations=self.iterations_per_bit,
                divs_per_iter=self.divs_per_iter,
                unit=self.unit_kind,
            )
            # Keep a bounded subsample per bit for plotting; decode on the
            # full-window mean (the loop itself spans the active window so
            # wait events are generated throughout).
            stride = max(1, latencies.size // 200)
            self.spy_samples.append(latencies[::stride])
            bits = decode_by_threshold(
                [float(np.mean(latencies))], self.decode_threshold
            )
            self.decoded_bits.append(bits[0])

    def sample_latencies(self) -> np.ndarray:
        """All spy loop-iteration latencies in order — Figure 3's series."""
        if not self.spy_samples:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.spy_samples)


class MultiplierCovertChannel(DividerCovertChannel):
    """Wang & Lee's multiplier variant of the SMT contention channel.

    Identical protocol, different shared unit: the trojan saturates the
    core's (pipelined) multiplier, whose contention penalty and
    wait-event rate are lower than the divider's — CC-Hunter audits it
    with a wider Δt but the same burst analysis.
    """

    name = "multiplier-channel"
    unit_kind = "multiplier"
