"""One experiment driver per figure in the paper's evaluation.

Every ``figN_*`` function runs the corresponding experiment on the
simulated machine and returns a result object holding the plotted series
plus the summary statistics the paper quotes. Sizes default to
bench-friendly values; pass larger ``n_bits`` / ``n_messages`` /
``n_quanta`` for paper-scale runs (the benchmarks print both the series
summaries and the headline numbers).

The sweep figures (10-14) are built from *independent* trials, so each
takes ``jobs`` (worker processes; 1 = in-process serial, 0 = every CPU)
and an optional ``progress(done, total)`` callback, and fans its trials
out through :class:`repro.exec.TrialRunner`. Results are bit-identical
for every ``jobs`` value — trial seeds are pure functions of the trial
parameters and results are gathered in canonical order (see
docs/PERFORMANCE.md; tests/exec/test_equivalence.py enforces this).

See DESIGN.md for the experiment index mapping figures to modules, and
EXPERIMENTS.md for measured-vs-paper values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.channels.divider import DividerCovertChannel, MultiplierCovertChannel
from repro.channels.membus import MemoryBusCovertChannel
from repro.core.autocorr import autocorrelogram
from repro.core.burst import BurstAnalysis, analyze_histogram
from repro.core.detector import AuditUnit, CCHunter
from repro.core.event_train import dominant_pair_series
from repro.core.oscillation import OscillationAnalysis, analyze_autocorrelogram
from repro.errors import ReproError
from repro.exec import TrialRunner, TrialSpec
from repro.sim.machine import Machine
from repro.util.bitstream import Message
from repro.util.stats import poisson_pmf, sample_counts_to_histogram
from repro.workloads.base import ActivityProfile, workload_process
from repro.workloads.noise import background_noise_processes


# --------------------------------------------------------------------------
# shared experiment plumbing
# --------------------------------------------------------------------------


@dataclass
class ChannelRun:
    """A completed covert-channel session with its detector attached."""

    machine: Machine
    hunter: CCHunter
    channel: object
    quanta: int

    @property
    def ber(self) -> float:
        return self.channel.bit_error_rate()


_CHANNELS = {
    "membus": MemoryBusCovertChannel,
    "divider": DividerCovertChannel,
    "multiplier": MultiplierCovertChannel,
    "cache": CacheCovertChannel,
}

_AUDITS = {
    "membus": AuditUnit.MEMORY_BUS,
    "divider": AuditUnit.DIVIDER,
    "multiplier": AuditUnit.MULTIPLIER,
    "cache": AuditUnit.CACHE,
}


def run_channel_session(
    kind: str,
    message: Message,
    bandwidth_bps: float = 10.0,
    seed: int = 1,
    noise: bool = True,
    window_fraction: float = 1.0,
    max_quanta: Optional[int] = None,
    sinks=(),
    track_detection_latency: bool = False,
    injectors=(),
    capture_evidence: bool = False,
    metrics=None,
    columnar: bool = True,
    cache_vectorized: bool = True,
    **channel_kwargs,
) -> ChannelRun:
    """Run one covert transmission under CC-Hunter audit.

    ``kind`` is 'membus', 'divider' or 'cache'. The session covers the
    whole transmission (or ``max_quanta`` if given), with the paper's
    "at least three other active processes" unless ``noise=False``.
    ``sinks`` (verdict sinks) receive per-quantum verdict updates while
    the session runs — the streaming pipeline's online view.
    ``injectors`` (see :mod:`repro.faults`) perturb the observation
    stream before it reaches the analyzers — the robustness drills'
    entry point into a live session. ``columnar`` selects the tap read
    strategy (hot path vs legacy full-history reference) and exists so
    the parity tests can run the same session both ways;
    ``cache_vectorized`` does the same for the shared cache's batched
    access kernels.
    """
    if kind not in _CHANNELS:
        raise ReproError(f"unknown channel kind {kind!r}")
    machine = Machine(seed=seed, metrics=metrics, cache_vectorized=cache_vectorized)
    hunter = CCHunter(
        machine,
        window_fraction=window_fraction,
        sinks=sinks,
        track_detection_latency=track_detection_latency,
        injectors=injectors,
        capture_evidence=capture_evidence,
        metrics=metrics,
        columnar=columnar,
    )
    config = ChannelConfig(message=message, bandwidth_bps=bandwidth_bps)
    channel = _CHANNELS[kind](machine, config, **channel_kwargs)
    if kind in ("divider", "multiplier"):
        hunter.audit(_AUDITS[kind], core=0)
        channel.deploy(core=0)
    else:
        hunter.audit(_AUDITS[kind])
        channel.deploy()
    quanta = channel.quanta_needed()
    if max_quanta is not None:
        quanta = min(quanta, max_quanta)
    quanta = max(1, quanta)
    if noise:
        avoid = (channel.trojan_ctx, channel.spy_ctx)
        background_noise_processes(
            machine, n_quanta=quanta, seed=seed, avoid_contexts=avoid
        )
    machine.run_quanta(quanta)
    return ChannelRun(machine, hunter, channel, quanta)


def aggregate_histogram(hunter: CCHunter, unit: AuditUnit,
                        core: Optional[int] = None) -> np.ndarray:
    """Sum a burst monitor's per-quantum histograms over the whole run."""
    hists = hunter.burst_histograms(unit, core=core)
    return np.sum(hists, axis=0)


# --------------------------------------------------------------------------
# Figures 2 and 3 — spy-observed latency series
# --------------------------------------------------------------------------


@dataclass
class LatencySeriesResult:
    """Series of spy-observed latencies over a message (Figures 2-3)."""

    latencies: np.ndarray
    message: Message
    decode_threshold: float
    ber: float
    mean_when_one: float
    mean_when_zero: float

    @property
    def separation(self) -> float:
        """Mean latency gap between '1' and '0' bits (cycles)."""
        return self.mean_when_one - self.mean_when_zero


def _latency_series(run: ChannelRun) -> LatencySeriesResult:
    channel = run.channel
    per_bit = [np.mean(s) for s in channel.spy_samples]
    bits = list(channel.message)
    ones = [m for m, b in zip(per_bit, bits) if b == 1]
    zeros = [m for m, b in zip(per_bit, bits) if b == 0]
    return LatencySeriesResult(
        latencies=channel.sample_latencies(),
        message=channel.message,
        decode_threshold=channel.decode_threshold,
        ber=run.ber,
        mean_when_one=float(np.mean(ones)) if ones else 0.0,
        mean_when_zero=float(np.mean(zeros)) if zeros else 0.0,
    )


def fig2_membus_latency(
    seed: int = 1, n_bits: int = 64, bandwidth_bps: float = 10.0
) -> LatencySeriesResult:
    """Figure 2: average memory-access latency seen by the bus-channel spy.

    Contended (locked) bus during '1' bits raises the spy's average
    latency; '0' bits leave it at the uncontended baseline.
    """
    message = Message.random(n_bits, seed)
    run = run_channel_session("membus", message, bandwidth_bps, seed=seed)
    return _latency_series(run)


def fig3_divider_latency(
    seed: int = 1, n_bits: int = 64, bandwidth_bps: float = 10.0
) -> LatencySeriesResult:
    """Figure 3: average loop-iteration latency seen by the divider spy."""
    message = Message.random(n_bits, seed)
    run = run_channel_session("divider", message, bandwidth_bps, seed=seed)
    return _latency_series(run)


# --------------------------------------------------------------------------
# Figure 4 — event trains
# --------------------------------------------------------------------------


@dataclass
class EventTrainResult:
    """Indicator-event trains for the two contention channels (Figure 4)."""

    bus_times: np.ndarray
    divider_times: np.ndarray
    window: Tuple[int, int]
    message: Message

    def burst_fraction(self, times: np.ndarray, bit_period: int) -> float:
        """Fraction of events landing in '1'-bit periods (bursts)."""
        if times.size == 0:
            return 0.0
        bit_idx = np.minimum(times // bit_period, len(self.message) - 1)
        bits = np.asarray(self.message.bits)[bit_idx]
        return float(bits.mean())


def fig4_event_trains(
    seed: int = 1, n_bits: int = 16, bandwidth_bps: float = 10.0
) -> EventTrainResult:
    """Figure 4: event trains showing burst patterns during '1' bits."""
    message = Message.random(n_bits, seed)
    bus_run = run_channel_session("membus", message, bandwidth_bps, seed=seed)
    div_run = run_channel_session("divider", message, bandwidth_bps, seed=seed)
    horizon = bus_run.quanta * bus_run.machine.quantum_cycles
    bus_times = bus_run.machine.bus_lock_tap.times_in(0, horizon)
    div_times = div_run.machine.divider_wait_tap_for(0).materialize_times(
        0, horizon, max_events=20_000
    )
    return EventTrainResult(
        bus_times=bus_times,
        divider_times=div_times,
        window=(0, horizon),
        message=message,
    )


# --------------------------------------------------------------------------
# Figure 5 — methodology illustration
# --------------------------------------------------------------------------


@dataclass
class MethodologyResult:
    """Event train -> density histogram -> Poisson reference (Figure 5)."""

    window_counts: np.ndarray
    histogram: np.ndarray
    poisson_reference: np.ndarray


def fig5_methodology(seed: int = 1, n_windows: int = 512) -> MethodologyResult:
    """Figure 5: how a bursty train departs from the Poisson reference.

    A synthetic train mixes Poisson background with injected bursts; the
    histogram shows the second mode the Poisson fit cannot explain.
    """
    rng = np.random.default_rng(seed)
    background = rng.poisson(0.4, size=n_windows)
    counts = background.copy()
    burst_windows = rng.choice(n_windows, size=n_windows // 16, replace=False)
    counts[burst_windows] += rng.integers(15, 25, size=burst_windows.size)
    hist = sample_counts_to_histogram(counts, 128)
    lam = counts.mean()
    reference = poisson_pmf(np.arange(128), lam) * n_windows
    return MethodologyResult(
        window_counts=counts, histogram=hist, poisson_reference=reference
    )


# --------------------------------------------------------------------------
# Figure 6 — event density histograms for the contention channels
# --------------------------------------------------------------------------


@dataclass
class DensityHistogramResult:
    """Aggregate density histograms plus burst analyses (Figure 6)."""

    bus_hist: np.ndarray
    bus_analysis: BurstAnalysis
    divider_hist: np.ndarray
    divider_analysis: BurstAnalysis

    @property
    def bus_burst_bin(self) -> int:
        """Density bin of the bus channel's burst mode (paper: ~#20)."""
        return _mode_bin(self.bus_hist)

    @property
    def divider_burst_bin(self) -> int:
        """Density bin of the divider's burst mode (paper: ~#96)."""
        return _mode_bin(self.divider_hist)


def _mode_bin(hist: np.ndarray) -> int:
    """Highest-frequency bin excluding the zero-density bin."""
    if hist[1:].sum() == 0:
        return 0
    return int(1 + np.argmax(hist[1:]))


def fig6_density_histograms(
    seed: int = 1, n_bits: int = 16, bandwidth_bps: float = 10.0
) -> DensityHistogramResult:
    """Figure 6: density histograms with the covert burst mode.

    Δt = 100 000 cycles for the bus, 500 cycles for the divider; the '1'
    bits produce a clearly separated second distribution (bin ~20 for the
    bus, bins ~84-105 peaking near 96 for the divider).
    """
    message = Message.random(n_bits, seed)
    bus_run = run_channel_session("membus", message, bandwidth_bps, seed=seed)
    div_run = run_channel_session("divider", message, bandwidth_bps, seed=seed)
    bus_hist = aggregate_histogram(bus_run.hunter, AuditUnit.MEMORY_BUS)
    div_hist = aggregate_histogram(div_run.hunter, AuditUnit.DIVIDER, core=0)
    return DensityHistogramResult(
        bus_hist=bus_hist,
        bus_analysis=analyze_histogram(bus_hist),
        divider_hist=div_hist,
        divider_analysis=analyze_histogram(div_hist),
    )


# --------------------------------------------------------------------------
# Figure 7 — cache channel latency ratios
# --------------------------------------------------------------------------


@dataclass
class CacheRatioResult:
    """Per-bit G1/G0 latency ratios (Figure 7)."""

    ratios: np.ndarray
    message: Message
    ber: float

    @property
    def mean_ratio_ones(self) -> float:
        bits = np.asarray(self.message.bits[: self.ratios.size])
        sel = self.ratios[bits == 1]
        return float(sel.mean()) if sel.size else 0.0

    @property
    def mean_ratio_zeros(self) -> float:
        bits = np.asarray(self.message.bits[: self.ratios.size])
        sel = self.ratios[bits == 0]
        return float(sel.mean()) if sel.size else 0.0


def fig7_cache_ratios(
    seed: int = 1,
    n_bits: int = 64,
    bandwidth_bps: float = 100.0,
    n_sets: int = 512,
) -> CacheRatioResult:
    """Figure 7: G1/G0 access-time ratios decode the transmitted bits."""
    message = Message.random(n_bits, seed)
    run = run_channel_session(
        "cache", message, bandwidth_bps, seed=seed, n_sets_total=n_sets
    )
    return CacheRatioResult(
        ratios=run.channel.latency_ratios(), message=message, ber=run.ber
    )


# --------------------------------------------------------------------------
# Figure 8 — conflict-miss train and autocorrelogram
# --------------------------------------------------------------------------


@dataclass
class CacheAutocorrResult:
    """Labeled conflict train and its correlogram (Figure 8, Figure 13)."""

    times: np.ndarray
    identifiers: np.ndarray
    acf: np.ndarray
    analysis: OscillationAnalysis
    n_sets: int

    @property
    def peak_lag(self) -> int:
        """Lag of the highest correlogram peak (paper: ~533 for 512 sets)."""
        if self.analysis.peak_lags.size == 0:
            return 0
        top = int(np.argmax(self.analysis.peak_heights))
        return int(self.analysis.peak_lags[top])

    @property
    def peak_value(self) -> float:
        return self.analysis.max_peak


def fig8_cache_autocorrelogram(
    seed: int = 1,
    n_bits: int = 24,
    bandwidth_bps: float = 200.0,
    n_sets: int = 512,
    max_lag: int = 1000,
) -> CacheAutocorrResult:
    """Figure 8: the conflict-miss train oscillates at the set-count lag.

    'T→S' (trojan replaces spy) and 'S→T' phases alternate with one event
    per swept set, so the autocorrelogram peaks near lag = total sets used
    (512), shifted slightly by noise events from other contexts.
    """
    message = Message.random(n_bits, seed)
    run = run_channel_session(
        "cache", message, bandwidth_bps, seed=seed, n_sets_total=n_sets
    )
    horizon = run.quanta * run.machine.quantum_cycles
    times, reps, vics = run.machine.cache_miss_tap.records_in(0, horizon)
    # As in the detector, autocorrelate the dominant cross-context pair's
    # event series ('S→T' = 0, 'T→S' = 1). Noise conflicts involving the
    # pair still land in the series (they perturb it, shifting the peak
    # slightly off the set count, as the paper observes).
    labels, idx, _pair = dominant_pair_series(reps, vics)
    times = times[idx]
    ids = labels
    acf = autocorrelogram(labels, max_lag)
    return CacheAutocorrResult(
        times=times,
        identifiers=ids,
        acf=acf,
        analysis=analyze_autocorrelogram(acf),
        n_sets=n_sets,
    )


# --------------------------------------------------------------------------
# Figure 10 — bandwidth sweep over all three channels
# --------------------------------------------------------------------------


@dataclass
class BandwidthPoint:
    """One (channel, bandwidth) cell of Figure 10."""

    kind: str
    bandwidth_bps: float
    likelihood_ratio: Optional[float]
    detected: bool
    max_peak: Optional[float]
    ber: float
    quanta: int


def _message_with_ones(n_bits: int, seed: int, min_ones: int = 2) -> Message:
    """Random message guaranteed to carry at least ``min_ones`` 1-bits.

    Short low-bandwidth test messages must still contain enough '1's to
    exercise the contention path (an all-zero message transmits silence).
    """
    message = Message.random(n_bits, seed)
    if message.ones >= min(min_ones, n_bits):
        return message
    bits = list(message.bits)
    for i in range(0, len(bits), 2):
        bits[i] = 1
    return Message.from_bits(bits)


def _fig10_trial(
    kind: str,
    bandwidth_bps: float,
    n_bits: int,
    seed: int,
    cache_sets: int,
) -> BandwidthPoint:
    """One (channel, bandwidth) cell of Figure 10; picklable trial."""
    message = _message_with_ones(n_bits, seed)
    kwargs = {"n_sets_total": cache_sets} if kind == "cache" else {}
    run = run_channel_session(kind, message, bandwidth_bps, seed=seed, **kwargs)
    verdict = run.hunter.report().verdicts[0]
    if kind == "cache":
        lr = None
        peak = verdict.max_peak
    else:
        unit = _AUDITS[kind]
        core = 0 if kind == "divider" else None
        agg = aggregate_histogram(run.hunter, unit, core=core)
        lr = analyze_histogram(agg).likelihood_ratio
        peak = None
    return BandwidthPoint(
        kind=kind,
        bandwidth_bps=bandwidth_bps,
        likelihood_ratio=lr,
        detected=verdict.detected,
        max_peak=peak,
        ber=run.ber,
        quanta=run.quanta,
    )


def fig10_bandwidth_sweep(
    seed: int = 1,
    bandwidths: Sequence[float] = (0.1, 10.0, 1000.0),
    n_bits_low_bw: int = 4,
    n_bits: int = 16,
    cache_sets: int = 256,
    min_quanta_burst: int = 3,
    jobs: int = 1,
    progress=None,
    timeout_s: Optional[float] = None,
) -> List[BandwidthPoint]:
    """Figure 10: detection across 0.1 / 10 / 1000 bps.

    Burst channels keep likelihood ratios >= 0.9 at every bandwidth; the
    0.1 bps cache channel shows weak full-window autocorrelation (see
    Figure 11 for the fix). At high bandwidths a short message finishes
    within one quantum, so the burst channels transmit enough bits to
    cover ``min_quanta_burst`` quanta (recurrence needs several windows —
    a real channel would simply keep transmitting).
    """
    quantum_seconds = 0.1
    params = []
    for bw in bandwidths:
        bits = n_bits_low_bw if bw < 1.0 else n_bits
        burst_bits = max(
            bits, int(bw * quantum_seconds * min_quanta_burst)
        )
        for kind in ("membus", "divider", "cache"):
            params.append({
                "kind": kind,
                "bandwidth_bps": bw,
                "n_bits": bits if kind == "cache" else burst_bits,
            })
    spec = TrialSpec(
        fn=_fig10_trial,
        common={"seed": seed, "cache_sets": cache_sets},
        key="fig10",
        timeout_s=timeout_s,
    )
    return TrialRunner(jobs=jobs, progress=progress).run_trials(
        spec, params=params
    )


# --------------------------------------------------------------------------
# Figure 11 — finer observation windows for the 0.1 bps cache channel
# --------------------------------------------------------------------------


@dataclass
class WindowScalingPoint:
    """One observation-window size of Figure 11."""

    fraction: float
    best_peak: float
    significant_windows: int
    windows_analyzed: int


def _fig11_fraction(
    fraction: float,
    times: np.ndarray,
    reps: np.ndarray,
    vics: np.ndarray,
    quantum: int,
    horizon: int,
    max_lag: int,
    min_train_events: int,
) -> WindowScalingPoint:
    """Re-analyze one session's conflict records at one window size."""
    width = max(1, int(round(quantum * fraction)))
    best = 0.0
    significant = 0
    analyzed = 0
    start = 0
    while start < horizon:
        end = min(start + width, horizon)
        lo = np.searchsorted(times, start, side="left")
        hi = np.searchsorted(times, end, side="left")
        analyzed += 1
        labels, _idx, _pair = dominant_pair_series(
            reps[lo:hi], vics[lo:hi]
        )
        if (
            labels.size >= min_train_events
            and 4 <= int(labels.sum()) <= labels.size - 4
        ):
            analysis = analyze_autocorrelogram(
                autocorrelogram(labels, max_lag)
            )
            best = max(best, analysis.max_peak)
            significant += int(analysis.significant)
        start = end
    return WindowScalingPoint(
        fraction=fraction,
        best_peak=best,
        significant_windows=significant,
        windows_analyzed=analyzed,
    )


def fig11_window_scaling(
    seed: int = 1,
    fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
    bandwidth_bps: float = 0.1,
    n_bits: int = 3,
    cache_sets: int = 256,
    max_lag: int = 1000,
    min_train_events: int = 64,
    jobs: int = 1,
    progress=None,
    timeout_s: Optional[float] = None,
) -> List[WindowScalingPoint]:
    """Figure 11: shrinking the window sharpens low-bandwidth detection.

    At 0.1 bps the covert conflict clusters occupy slivers of each
    quantum, so full-window trains are noise-diluted; fractional windows
    isolate the clusters and the repetitive peaks emerge. One session is
    simulated and its conflict records re-analyzed at every window size
    (exactly what the software daemon would do at a finer cadence) —
    the session runs once in-process, the per-fraction re-analyses fan
    out.
    """
    message = _message_with_ones(n_bits, seed)
    run = run_channel_session(
        "cache", message, bandwidth_bps, seed=seed, n_sets_total=cache_sets
    )
    horizon = run.quanta * run.machine.quantum_cycles
    times, reps, vics = run.machine.cache_miss_tap.records_in(0, horizon)
    spec = TrialSpec(
        fn=_fig11_fraction,
        common={
            "times": times,
            "reps": reps,
            "vics": vics,
            "quantum": run.machine.quantum_cycles,
            "horizon": horizon,
            "max_lag": max_lag,
            "min_train_events": min_train_events,
        },
        key="fig11",
        timeout_s=timeout_s,
    )
    return TrialRunner(jobs=jobs, progress=progress).run_trials(
        spec, params=[{"fraction": f} for f in fractions]
    )


# --------------------------------------------------------------------------
# Figure 12 — encoded message patterns
# --------------------------------------------------------------------------


@dataclass
class MessageSweepResult:
    """Histogram spread over random 64-bit messages (Figure 12)."""

    kind: str
    mean_hist: np.ndarray
    min_hist: np.ndarray
    max_hist: np.ndarray
    likelihood_ratios: List[float]
    cache_peaks: List[float]

    @property
    def min_likelihood_ratio(self) -> float:
        return min(self.likelihood_ratios) if self.likelihood_ratios else 0.0


def _fig12_trial(
    kind: str,
    index: int,
    seed: int,
    n_bits: int,
    bandwidth_bps: float,
    cache_bandwidth_bps: float,
    cache_sets: int,
):
    """One (channel, message) trial of Figure 12; picklable.

    Returns ``("peak", max_acf_peak)`` for the cache channel and
    ``("hist", aggregate_histogram, likelihood_ratio)`` for the burst
    channels — only the per-trial statistics travel back to the parent,
    never the machine or the hunter.
    """
    message = Message.random(n_bits, seed * 1000 + index)
    if kind == "cache":
        run = run_channel_session(
            kind,
            message,
            cache_bandwidth_bps,
            seed=seed + index,
            n_sets_total=cache_sets,
        )
        analyses = run.hunter.cache_analyses()
        return ("peak", max((a.max_peak for a in analyses), default=0.0))
    run = run_channel_session(kind, message, bandwidth_bps, seed=seed + index)
    unit = _AUDITS[kind]
    core = 0 if kind == "divider" else None
    agg = aggregate_histogram(run.hunter, unit, core=core)
    return ("hist", agg, analyze_histogram(agg).likelihood_ratio)


def fig12_message_sweep(
    seed: int = 1,
    n_messages: int = 8,
    n_bits: int = 16,
    bandwidth_bps: float = 10.0,
    kinds: Sequence[str] = ("membus", "divider", "cache"),
    cache_bandwidth_bps: float = 200.0,
    cache_sets: int = 256,
    jobs: int = 1,
    progress=None,
    timeout_s: Optional[float] = None,
) -> List[MessageSweepResult]:
    """Figure 12: random message patterns barely move the signatures.

    The paper uses 256 random 64-bit messages; pass ``n_messages=256,
    n_bits=64`` for the full-scale run (and ``jobs=0`` to spread it over
    every CPU). Burst-channel likelihood ratios stay above 0.9; cache
    correlogram deviations are insignificant.
    """
    spec = TrialSpec(
        fn=_fig12_trial,
        common={
            "seed": seed,
            "n_bits": n_bits,
            "bandwidth_bps": bandwidth_bps,
            "cache_bandwidth_bps": cache_bandwidth_bps,
            "cache_sets": cache_sets,
        },
        key="fig12",
        timeout_s=timeout_s,
    )
    params = [
        {"kind": kind, "index": i}
        for kind in kinds
        for i in range(n_messages)
    ]
    trials = TrialRunner(jobs=jobs, progress=progress).run_trials(
        spec, params=params
    )
    results = []
    for k, kind in enumerate(kinds):
        # TrialFailure results (timeouts etc. under timeout_s) are falsy
        # and simply drop out of the aggregates.
        per_kind = [t for t in trials[k * n_messages : (k + 1) * n_messages] if t]
        hists = [t[1] for t in per_kind if t[0] == "hist"]
        lrs = [t[2] for t in per_kind if t[0] == "hist"]
        peaks = [t[1] for t in per_kind if t[0] == "peak"]
        if hists:
            stack = np.stack(hists)
            results.append(
                MessageSweepResult(
                    kind=kind,
                    mean_hist=stack.mean(axis=0),
                    min_hist=stack.min(axis=0),
                    max_hist=stack.max(axis=0),
                    likelihood_ratios=lrs,
                    cache_peaks=[],
                )
            )
        else:
            empty = np.zeros(128)
            results.append(
                MessageSweepResult(
                    kind=kind,
                    mean_hist=empty,
                    min_hist=empty,
                    max_hist=empty,
                    likelihood_ratios=[],
                    cache_peaks=peaks,
                )
            )
    return results


# --------------------------------------------------------------------------
# Figure 13 — cache channel set-count sweep
# --------------------------------------------------------------------------


def fig13_cache_set_sweep(
    seed: int = 1,
    set_counts: Sequence[int] = (256, 128, 64),
    bandwidth_bps: float = 1000.0,
    n_bits: int = 16,
    jobs: int = 1,
    progress=None,
    timeout_s: Optional[float] = None,
) -> List[CacheAutocorrResult]:
    """Figure 13: the oscillation wavelength tracks the sets used.

    Peaks reach ~0.95 and sit at (or, with noise, slightly above) the
    number of sets used for communication.
    """
    spec = TrialSpec(
        fn=fig8_cache_autocorrelogram,
        common={
            "seed": seed, "n_bits": n_bits, "bandwidth_bps": bandwidth_bps,
        },
        key="fig13",
        timeout_s=timeout_s,
    )
    return TrialRunner(jobs=jobs, progress=progress).run_trials(
        spec, params=[{"n_sets": n} for n in set_counts]
    )


# --------------------------------------------------------------------------
# Figure 14 — false-alarm study
# --------------------------------------------------------------------------


@dataclass
class FalseAlarmResult:
    """One benchmark pairing of the false-alarm study (Figure 14)."""

    pair: Tuple[str, str]
    bus_hist: np.ndarray
    bus_lr: float
    divider_hist: np.ndarray
    divider_lr: float
    cache_max_peak: float
    bus_detected: bool
    divider_detected: bool
    cache_detected: bool

    @property
    def any_alarm(self) -> bool:
        return self.bus_detected or self.divider_detected or self.cache_detected


def _fig14_trial(
    profile_a: ActivityProfile,
    profile_b: ActivityProfile,
    seed: int,
    n_quanta: int,
) -> FalseAlarmResult:
    """Screen one benign workload pair under full audit; picklable."""
    machine = Machine(seed=seed)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    hunter.audit(AuditUnit.DIVIDER, core=0)
    cache_hunter = CCHunter(machine)
    cache_hunter.audit(AuditUnit.CACHE)
    machine.spawn(
        workload_process(profile_a, machine, n_quanta, seed=1, instance=0),
        ctx=0,
    )
    machine.spawn(
        workload_process(profile_b, machine, n_quanta, seed=2, instance=1),
        ctx=1,
    )
    machine.run_quanta(n_quanta)
    bus_verdict, div_verdict = hunter.report().verdicts
    cache_verdict = cache_hunter.report().verdicts[0]
    bus_hist = aggregate_histogram(hunter, AuditUnit.MEMORY_BUS)
    div_hist = aggregate_histogram(hunter, AuditUnit.DIVIDER, core=0)
    return FalseAlarmResult(
        pair=(profile_a.name, profile_b.name),
        bus_hist=bus_hist,
        bus_lr=analyze_histogram(bus_hist).likelihood_ratio,
        divider_hist=div_hist,
        divider_lr=analyze_histogram(div_hist).likelihood_ratio,
        cache_max_peak=cache_verdict.max_peak or 0.0,
        bus_detected=bus_verdict.detected,
        divider_detected=div_verdict.detected,
        cache_detected=cache_verdict.detected,
    )


def default_benign_pairs() -> List[Tuple[ActivityProfile, ActivityProfile]]:
    """The paper's representative benign pairings (Figure 14)."""
    from repro.workloads.filebench import mailserver, webserver
    from repro.workloads.spec import bzip2, gobmk, h264ref, sjeng
    from repro.workloads.stream import stream

    return [
        (gobmk, sjeng),
        (bzip2, h264ref),
        (stream, stream),
        (mailserver, mailserver),
        (webserver, webserver),
    ]


def fig14_false_alarms(
    pairs: Optional[Sequence[Tuple[ActivityProfile, ActivityProfile]]] = None,
    seed: int = 9,
    n_quanta: int = 8,
    jobs: int = 1,
    progress=None,
    timeout_s: Optional[float] = None,
) -> List[FalseAlarmResult]:
    """Figure 14: benign pairs must not trip any detector.

    Default pairs reproduce the paper's representative subset: gobmk+sjeng
    (bus-heavy), bzip2+h264ref (division-heavy), stream x2, mailserver x2
    (the weak bins-5-8 second mode), webserver x2 (brief periodicity).
    """
    if pairs is None:
        pairs = default_benign_pairs()
    spec = TrialSpec(
        fn=_fig14_trial,
        common={"seed": seed, "n_quanta": n_quanta},
        key="fig14",
        timeout_s=timeout_s,
    )
    return TrialRunner(jobs=jobs, progress=progress).run_trials(
        spec,
        params=[{"profile_a": a, "profile_b": b} for a, b in pairs],
    )


# --------------------------------------------------------------------------
# Detection summary (paper's headline claims)
# --------------------------------------------------------------------------


@dataclass
class DetectionSummary:
    """Headline result: all channels detected, zero false alarms."""

    channel_detections: Dict[str, bool] = field(default_factory=dict)
    false_alarms: int = 0
    pairs_tested: int = 0

    @property
    def all_detected(self) -> bool:
        return all(self.channel_detections.values())


def _detection_trial(kind: str, seed: int, n_bits: int) -> bool:
    """Run one covert channel under audit; True when detected."""
    message = Message.random(n_bits, seed)
    kwargs = {"n_sets_total": 256} if kind == "cache" else {}
    bw = 200.0 if kind == "cache" else 10.0
    run = run_channel_session(kind, message, bw, seed=seed, **kwargs)
    return run.hunter.report().verdicts[0].detected


def detection_summary(
    seed: int = 1, n_bits: int = 16, n_quanta_benign: int = 6, jobs: int = 1
) -> DetectionSummary:
    """Run every channel and every benign pair; tally the verdicts."""
    summary = DetectionSummary()
    kinds = ("membus", "divider", "cache")
    spec = TrialSpec(
        fn=_detection_trial,
        common={"seed": seed, "n_bits": n_bits},
        key="detection_summary",
    )
    detections = TrialRunner(jobs=jobs).run_trials(
        spec, params=[{"kind": kind} for kind in kinds]
    )
    summary.channel_detections.update(zip(kinds, detections))
    for res in fig14_false_alarms(
        seed=seed + 1, n_quanta=n_quanta_benign, jobs=jobs
    ):
        summary.pairs_tested += 1
        if res.any_alarm:
            summary.false_alarms += 1
    return summary
