"""Table I: CC-auditor area, power and latency estimates."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import AuditorConfig, CacheConfig
from repro.hardware.cost_model import (
    estimate_auditor_costs,
    total_area_mm2,
    total_power_mw,
)

#: Paper values for context (Section V-A): Intel i7 die area and peak power.
I7_AREA_MM2 = 263.0
I7_PEAK_POWER_W = 130.0


def table1_rows(
    auditor: Optional[AuditorConfig] = None,
    cache: Optional[CacheConfig] = None,
) -> List[Tuple[str, float, float, float]]:
    """Rows of Table I: (structure, area mm^2, power mW, latency ns)."""
    costs = estimate_auditor_costs(auditor, cache)
    order = ("histogram_buffers", "registers", "conflict_miss_detector")
    return [
        (
            name,
            costs[name].area_mm2,
            costs[name].power_mw,
            costs[name].latency_ns,
        )
        for name in order
    ]


def table1_text(
    auditor: Optional[AuditorConfig] = None,
    cache: Optional[CacheConfig] = None,
) -> str:
    """Render Table I plus the paper's context comparisons."""
    rows = table1_rows(auditor, cache)
    costs = estimate_auditor_costs(auditor, cache)
    lines = [
        "Table I: Area, Power and Latency Estimates of CC-Auditor",
        f"{'structure':<26}{'area(mm^2)':>12}{'power(mW)':>12}{'latency(ns)':>13}",
    ]
    for name, area, power, latency in rows:
        lines.append(f"{name:<26}{area:>12.4f}{power:>12.1f}{latency:>13.2f}")
    area = total_area_mm2(costs)
    power = total_power_mw(costs)
    lines.append(
        f"total: {area:.4f} mm^2 ({100 * area / I7_AREA_MM2:.4f}% of an i7 die), "
        f"{power:.1f} mW ({100 * power / 1000 / I7_PEAK_POWER_W:.5f}% of i7 peak)"
    )
    return "\n".join(lines)
