"""Terminal rendering of the paper's plot types.

Minimal dependency-free plotting: frequency histograms (Figures 6, 10,
12, 14), autocorrelograms (Figures 8, 11, 13), event trains (Figure 4)
and latency series (Figures 2, 3, 7). These are for human inspection of
benchmark output; the numeric series are returned by
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DetectionError

_BARS = " ▁▂▃▄▅▆▇█"


def _scale_to_bars(values: np.ndarray) -> str:
    top = values.max()
    if top <= 0:
        return " " * values.size
    idx = np.ceil(values / top * (len(_BARS) - 1)).astype(int)
    return "".join(_BARS[i] for i in idx)


def render_histogram(
    hist: Sequence[float],
    title: str = "",
    max_bins: int = 64,
    log_scale: bool = True,
) -> str:
    """One-line bar rendering of a density histogram (bin 0 annotated).

    Log scaling keeps the (huge) bin-0 spike from flattening the burst
    mode the plot exists to show.
    """
    arr = np.asarray(hist, dtype=np.float64)
    if arr.size == 0:
        raise DetectionError("cannot render an empty histogram")
    shown = arr[:max_bins]
    scaled = np.log1p(shown) if log_scale else shown
    bars = _scale_to_bars(scaled)
    nonzero = np.nonzero(arr)[0]
    top_bin = int(nonzero[-1]) if nonzero.size else 0
    header = f"{title}\n" if title else ""
    return (
        f"{header}|{bars}| bins 0..{shown.size - 1}"
        f" (bin0={int(arr[0])}, last nonzero bin={top_bin})"
    )


def render_correlogram(
    acf: Sequence[float],
    title: str = "",
    width: int = 72,
    marker_lags: Optional[Sequence[int]] = None,
) -> str:
    """Compact rendering of an autocorrelogram with peak markers."""
    arr = np.asarray(acf, dtype=np.float64)
    if arr.size < 2:
        raise DetectionError("correlogram too short to render")
    # Downsample to terminal width, keeping extremes visible via max-abs.
    bins = np.array_split(arr, min(width, arr.size))
    condensed = np.array([b[np.abs(b).argmax()] for b in bins])
    rows = []
    header = f"{title}\n" if title else ""
    for level in (0.75, 0.25, -0.25, -0.75):
        row = "".join(
            "*" if (v >= level if level > 0 else v <= level) else " "
            for v in condensed
        )
        rows.append(f"{level:+.2f} |{row}|")
    footer = f"lags 0..{arr.size - 1}"
    if marker_lags is not None and len(marker_lags) > 0:
        footer += f", peaks at {list(marker_lags)[:6]}"
    return header + "\n".join(rows) + "\n" + footer


def render_event_train(
    times: Sequence[int],
    t0: int,
    t1: int,
    title: str = "",
    width: int = 72,
) -> str:
    """Density-strip rendering of an event train (Figure 4 style)."""
    if t1 <= t0:
        raise DetectionError(f"empty train window [{t0}, {t1})")
    arr = np.asarray(times, dtype=np.int64)
    arr = arr[(arr >= t0) & (arr < t1)]
    edges = np.linspace(t0, t1, width + 1)
    counts, _ = np.histogram(arr, bins=edges)
    bars = _scale_to_bars(np.log1p(counts.astype(np.float64)))
    header = f"{title}\n" if title else ""
    return f"{header}|{bars}| {arr.size} events in [{t0}, {t1})"


def render_series(
    values: Sequence[float],
    title: str = "",
    width: int = 72,
    height: int = 8,
) -> str:
    """Small scatter rendering of a latency series (Figures 2/3/7 style)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise DetectionError("cannot render an empty series")
    bins = np.array_split(arr, min(width, arr.size))
    means = np.array([b.mean() for b in bins])
    lo, hi = float(means.min()), float(means.max())
    span = hi - lo or 1.0
    rows = []
    levels = np.round((means - lo) / span * (height - 1)).astype(int)
    for level in range(height - 1, -1, -1):
        rows.append("".join("o" if lv == level else " " for lv in levels))
    header = f"{title}\n" if title else ""
    body = "\n".join(f"|{r}|" for r in rows)
    return f"{header}{body}\nmin={lo:.1f} max={hi:.1f} n={arr.size}"
