"""Reproduction of the paper's figures and tables.

One function per figure/table in the evaluation, each returning the
plotted series plus the quantitative summary the benchmarks print;
:mod:`ascii_plot` renders histograms, correlograms and event trains in a
terminal.
"""

from repro.analysis.ascii_plot import (
    render_correlogram,
    render_event_train,
    render_histogram,
    render_series,
)
from repro.analysis.tables import table1_rows

__all__ = [
    "render_histogram",
    "render_correlogram",
    "render_event_train",
    "render_series",
    "table1_rows",
]
