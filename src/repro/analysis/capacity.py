"""Covert-channel bandwidth assessment per TCSEC (paper Section II).

The Orange Book classifies covert channels by bandwidth: above 100 bits/s
is a *high* bandwidth channel; below 0.1 bit/s is generally "not
considered very feasible" (too expensive for the adversary to extract
anything meaningful). This module scores a (possibly noisy) covert
session: its raw bandwidth, the effective information rate through the
binary symmetric channel its bit error rate induces, and the TCSEC class
— the numbers an operator needs to prioritize responses after CC-Hunter
raises a detection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import DetectionError


class TcsecClass(Enum):
    """TCSEC covert-channel bandwidth classes."""

    HIGH = "high (> 100 bps)"
    MODERATE = "moderate (0.1 .. 100 bps)"
    INFEASIBLE = "generally infeasible (< 0.1 bps)"


#: TCSEC thresholds in bits per second.
HIGH_BANDWIDTH_BPS = 100.0
FEASIBILITY_FLOOR_BPS = 0.1


def classify_bandwidth(bits_per_second: float) -> TcsecClass:
    """The Orange Book class of a channel's effective bandwidth.

    >>> classify_bandwidth(1000.0)
    <TcsecClass.HIGH: 'high (> 100 bps)'>
    >>> classify_bandwidth(0.49)
    <TcsecClass.MODERATE: 'moderate (0.1 .. 100 bps)'>
    """
    if bits_per_second < 0:
        raise DetectionError("bandwidth cannot be negative")
    if bits_per_second > HIGH_BANDWIDTH_BPS:
        return TcsecClass.HIGH
    if bits_per_second >= FEASIBILITY_FLOOR_BPS:
        return TcsecClass.MODERATE
    return TcsecClass.INFEASIBLE


def binary_entropy(p: float) -> float:
    """H(p) in bits; H(0) = H(1) = 0.

    >>> binary_entropy(0.5)
    1.0
    """
    if not 0.0 <= p <= 1.0:
        raise DetectionError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bsc_capacity(ber: float) -> float:
    """Capacity (bits per channel use) of a binary symmetric channel.

    A covert channel with bit error rate ``ber`` can carry at most
    ``1 - H(ber)`` bits of information per transmitted bit.

    >>> bsc_capacity(0.0)
    1.0
    >>> bsc_capacity(0.5)
    0.0
    """
    return 1.0 - binary_entropy(ber)


@dataclass(frozen=True)
class ChannelAssessment:
    """Operator-facing assessment of a measured covert session."""

    raw_bandwidth_bps: float
    bit_error_rate: float
    effective_bandwidth_bps: float
    tcsec_class: TcsecClass

    def summary(self) -> str:
        return (
            f"raw {self.raw_bandwidth_bps:g} bps, BER "
            f"{self.bit_error_rate:.3f} -> effective "
            f"{self.effective_bandwidth_bps:.3g} bps "
            f"[{self.tcsec_class.value}]"
        )


def assess_channel(raw_bandwidth_bps: float, ber: float) -> ChannelAssessment:
    """Assess a covert session from its signaling rate and error rate.

    The effective rate is the BSC capacity times the raw rate — what the
    adversary can actually extract with ideal coding. The TCSEC class is
    taken on the *effective* rate, so a fast but error-riddled channel
    (e.g. after clock fuzzing) is correctly downgraded.
    """
    if raw_bandwidth_bps <= 0:
        raise DetectionError("raw bandwidth must be positive")
    effective = raw_bandwidth_bps * bsc_capacity(min(ber, 0.5))
    return ChannelAssessment(
        raw_bandwidth_bps=raw_bandwidth_bps,
        bit_error_rate=ber,
        effective_bandwidth_bps=effective,
        tcsec_class=classify_bandwidth(effective),
    )
