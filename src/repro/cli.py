"""Command-line interface: run the reproduction's experiments directly.

Usage::

    python -m repro table1
    python -m repro detect --channel membus --bandwidth 10 --bits 32
    python -m repro false-alarms
    python -m repro figure 6

``detect`` runs a covert session under audit and prints the channel's
decode result, CC-Hunter's report, and the TCSEC bandwidth assessment;
with ``--stream`` it prints the pipeline's per-quantum verdict updates
as the session runs, and with ``--json`` it emits a machine-readable
report for downstream consumers. ``figure N`` regenerates a paper figure
at bench scale.

The global ``--jobs N`` flag fans the sweep commands (``figure 10-14``,
``false-alarms``) out over N worker processes through
``repro.exec.TrialRunner`` (``--jobs 0`` uses every CPU). Results are
bit-identical to a serial run — see docs/PERFORMANCE.md.

Observability surface: every command starts from a fresh metrics
registry; ``detect``/``analyze`` accept ``--metrics-out metrics.json``
(JSON snapshot of all counters/gauges/histograms), ``detect`` accepts
``--trace-out trace.json`` (opt-in spans, Chrome-trace format), both
accept ``--profile-out profile.json`` (per-stage wall/CPU attribution,
``repro.obs.profile/v1``), and ``repro metrics metrics.json`` /
``repro profile profile.json`` re-render the snapshots (Prometheus
text; top-N self-time table, collapsed stacks, or speedscope JSON).
``--log-level``/``--log-json`` configure the structured ``repro.*``
loggers.

Performance surface (docs/PERFORMANCE.md): ``repro bench check`` runs
the registered ``benchmarks/bench_*.py`` suites and gates the fresh
numbers against the committed ``BENCH_*.json`` baselines; an
out-of-tolerance metric exits with the dedicated regression code (8).
``repro bench run`` measures without gating and ``repro bench history``
lists the appended ``benchmarks/history.jsonl`` trajectory.

Robustness surface (docs/ROBUSTNESS.md): ``detect``/``analyze`` accept
``--inject 'drop:0.1,stall:0.05:3@membus'`` fault-injection specs,
``analyze`` accepts ``--skip-corrupt`` to degrade around damaged
archive records instead of aborting, and the sweep commands accept
``--trial-timeout SECONDS`` to record (rather than die on) stuck
trials. Every failure mode maps to a documented exit code — see
:mod:`repro.errors` for the taxonomy.

Serving surface (docs/SERVING.md): ``repro serve`` runs the
multi-tenant detection service until SIGINT (graceful drain, per-tenant
summary, exit 0); ``repro stream`` points a synthetic tenant at it —
``--profile covert|benign``, ``--inject 'drop:0.2'`` for a lossy
transport — and exits 3 if the final report detects a channel, 9 if
the service is unreachable or refuses admission. With ``repro serve
--admin-port`` the service exposes its live telemetry plane
(docs/OBSERVABILITY.md), and ``repro top`` renders the tenant fleet
against it, sorted by SLO burn rate (exit 9 when unreachable).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import figures as fig
from repro.analysis.ascii_plot import (
    render_correlogram,
    render_histogram,
    render_series,
)
from repro.analysis.capacity import assess_channel
from repro.analysis.tables import table1_text
from repro.obs import (
    configure_logging,
    disable_tracing,
    enable_tracing,
    get_default,
    load_snapshot,
    new_default,
    render_prometheus,
)
from repro.util.bitstream import Message


def _cmd_table1(_args) -> int:
    print(table1_text())
    return 0


def _build_injectors(args):
    """Parse the --inject spec (if any) into an injector chain."""
    text = getattr(args, "inject", None)
    if not text:
        return ()
    from repro.faults import injectors_from_string

    return injectors_from_string(text, seed=getattr(args, "seed", 0))


def _report_trial_failures(results) -> List:
    """Print recorded TrialFailure slots; return the usable results."""
    from repro.exec import TrialFailure

    usable = []
    for result in results:
        if isinstance(result, TrialFailure):
            print(
                f"repro: trial {result.index} {result.kind}: "
                f"{result.message}",
                file=sys.stderr,
            )
        else:
            usable.append(result)
    return usable


def _write_obs_artifacts(args, recorder=None, profiler=None) -> None:
    """Persist the run's metrics snapshot / span trace / stage profile."""
    if getattr(args, "metrics_out", None):
        get_default().write_json(args.metrics_out)
        print(
            f"metrics snapshot written to {args.metrics_out}",
            file=sys.stderr,
        )
    if recorder is not None:
        recorder.write_chrome_trace(args.trace_out)
        disable_tracing()
        print(
            f"chrome trace ({len(recorder.spans())} spans) written to "
            f"{args.trace_out}",
            file=sys.stderr,
        )
    if profiler is not None:
        from repro.obs.profile import disable_profiling

        doc = profiler.write_json(args.profile_out)
        disable_profiling()
        print(
            f"stage profile ({doc['spans']} spans, "
            f"{len(doc['stages'])} stages) written to {args.profile_out}; "
            "render with `repro profile`",
            file=sys.stderr,
        )


def _report_format_for(path: Optional[str], explicit: Optional[str]) -> str:
    """Report format: explicit flag wins, else the output extension."""
    if explicit:
        return explicit
    if path and path.endswith((".md", ".markdown")):
        return "md"
    return "html"


def _meta_report(report) -> dict:
    """Report dict for evidence metadata, without nested evidence."""
    payload = report.to_dict()
    for verdict in payload.get("verdicts", ()):
        verdict.pop("evidence", None)
    return payload


def _write_forensics(args, bundles, meta, sampler=None) -> None:
    """Persist evidence / forensic report / time series, if requested.

    ``bundles`` maps unit → EvidenceBundle or serialized bundle dict;
    ``meta`` is the run context embedded in the evidence document (and
    shown by the report renderer).
    """
    timeseries_out = getattr(args, "timeseries_out", None)
    if sampler is not None and timeseries_out:
        sampler.write_jsonl(timeseries_out)
        print(
            f"metrics time series ({len(sampler)} samples) written to "
            f"{timeseries_out}",
            file=sys.stderr,
        )
    evidence_out = getattr(args, "evidence_out", None)
    report_out = getattr(args, "report_out", None)
    if not (evidence_out or report_out):
        return
    from repro.obs.evidence import evidence_document, write_evidence

    if evidence_out:
        doc = write_evidence(evidence_out, bundles, meta)
        print(
            f"evidence bundles ({len(doc['units'])} units) written to "
            f"{evidence_out}",
            file=sys.stderr,
        )
    else:
        doc = evidence_document(bundles, meta)
    if report_out:
        from repro.report import render_report

        fmt = _report_format_for(report_out, None)
        records = sampler.records() if sampler is not None else None
        text = render_report(doc, fmt, timeseries=records)
        with open(report_out, "w") as handle:
            handle.write(text)
        print(
            f"forensic report ({fmt}) written to {report_out}",
            file=sys.stderr,
        )


def _cmd_detect(args) -> int:
    from repro.pipeline import StreamPrinterSink, TimeseriesSink

    message = Message.random(args.bits, args.seed)
    kwargs = {}
    if args.channel == "cache":
        kwargs["n_sets_total"] = args.cache_sets
    sinks = []
    if args.stream:
        sinks.append(StreamPrinterSink(jsonl=args.as_json))
    if args.watch:
        from repro.report import WatchSink

        sinks.append(WatchSink())
    sampler = None
    if args.timeseries_out:
        from repro.obs import MetricsSampler

        sampler = MetricsSampler(every_quanta=1, source="detect")
        sinks.append(TimeseriesSink(sampler))
    wants_evidence = bool(args.evidence_out or args.report_out)
    recorder = enable_tracing() if args.trace_out else None
    profiler = None
    if args.profile_out:
        from repro.obs.profile import enable_profiling

        profiler = enable_profiling()
    run = fig.run_channel_session(
        args.channel,
        message,
        bandwidth_bps=args.bandwidth,
        seed=args.seed,
        noise=not args.no_noise,
        sinks=sinks,
        track_detection_latency=True,
        injectors=_build_injectors(args),
        capture_evidence=wants_evidence,
        **kwargs,
    )
    ber = run.ber
    # close() rather than report(): the watch / time-series sinks rely
    # on the on_close event for their final frame and sample. With no
    # sinks attached this is equivalent to report().
    report = run.hunter.session.close()
    assessment = assess_channel(args.bandwidth, ber)
    first_detection = {
        unit: run.hunter.session.first_detection_quantum(unit)
        for unit in run.hunter.session.units
    }

    def _forensics() -> None:
        if not (wants_evidence or sampler is not None):
            return
        _write_forensics(
            args,
            run.hunter.evidence(),
            meta={
                "command": "detect",
                "channel": args.channel,
                "bandwidth_bps": float(args.bandwidth),
                "bits": int(args.bits),
                "seed": int(args.seed),
                "quanta": int(run.quanta),
                "bit_error_rate": float(ber),
                "lr_threshold": float(run.hunter.lr_threshold),
                "report": _meta_report(report),
            },
            sampler=sampler,
        )

    if args.as_json:
        payload = {
            "channel": args.channel,
            "bandwidth_bps": args.bandwidth,
            "bits": args.bits,
            "quanta": run.quanta,
            "bit_error_rate": float(ber),
            "effective_bandwidth_bps": float(
                assessment.effective_bandwidth_bps
            ),
            "tcsec_class": assessment.tcsec_class.value,
            "first_detection_quantum": first_detection,
            "report": _meta_report(report),
        }
        print(json.dumps(payload, sort_keys=True))
        _forensics()
        _write_obs_artifacts(args, recorder, profiler)
        return 0
    print(
        f"channel: {args.channel} @ {args.bandwidth:g} bps, "
        f"{args.bits} bits over {run.quanta} quanta"
    )
    print(f"spy bit error rate: {ber:.3f}")
    print(assessment.summary())
    if args.stream:
        for unit, quantum in first_detection.items():
            when = "never detected" if quantum is None else f"quantum {quantum}"
            print(f"first detection [{unit}]: {when}")
    print()
    print(report.render())
    _forensics()
    _write_obs_artifacts(args, recorder, profiler)
    return 0


def _cmd_false_alarms(args) -> int:
    from repro.errors import EXIT_TRIAL_FAILURE

    raw = fig.fig14_false_alarms(
        seed=args.seed, n_quanta=args.quanta, jobs=args.jobs,
        timeout_s=getattr(args, "trial_timeout", None),
    )
    results = _report_trial_failures(raw)
    alarms = 0
    for r in results:
        alarms += r.any_alarm
        print(
            f"{'+'.join(r.pair):<24} bus LR {r.bus_lr:.3f} | divider LR "
            f"{r.divider_lr:.3f} | cache peak {r.cache_max_peak:.2f} | "
            f"{'ALARM' if r.any_alarm else 'clear'}"
        )
    print(f"\nfalse alarms: {alarms} of {len(results)}")
    _write_obs_artifacts(args)
    if len(results) != len(raw):
        return EXIT_TRIAL_FAILURE
    return 1 if alarms else 0


def _cmd_figure(args) -> int:
    n = args.number
    timeout_s = getattr(args, "trial_timeout", None)
    if n == 2:
        r = fig.fig2_membus_latency(seed=args.seed)
        print(render_series(r.latencies, title="Figure 2: bus spy latency"))
        print(f"BER {r.ber:.3f}, separation {r.separation:.0f} cycles")
    elif n == 3:
        r = fig.fig3_divider_latency(seed=args.seed)
        print(render_series(r.latencies, title="Figure 3: divider latency"))
        print(f"BER {r.ber:.3f}")
    elif n == 6:
        r = fig.fig6_density_histograms(seed=args.seed)
        print(render_histogram(r.bus_hist, title="Figure 6a: bus"))
        print(f"burst bin #{r.bus_burst_bin}, "
              f"LR {r.bus_analysis.likelihood_ratio:.3f}")
        print(render_histogram(r.divider_hist, title="Figure 6b: divider",
                               max_bins=128))
        print(f"burst bin #{r.divider_burst_bin}, "
              f"LR {r.divider_analysis.likelihood_ratio:.3f}")
    elif n == 7:
        r = fig.fig7_cache_ratios(seed=args.seed)
        print(render_series(r.ratios, title="Figure 7: G1/G0 ratios"))
        print(f"BER {r.ber:.3f}")
    elif n == 8:
        r = fig.fig8_cache_autocorrelogram(seed=args.seed)
        print(render_correlogram(
            r.acf, title="Figure 8: cache autocorrelogram",
            marker_lags=r.analysis.peak_lags.tolist(),
        ))
        print(f"peak {r.peak_value:.3f} at lag {r.peak_lag}")
    elif n == 10:
        for p in _report_trial_failures(fig.fig10_bandwidth_sweep(
            seed=args.seed, jobs=args.jobs, timeout_s=timeout_s,
        )):
            signal = (
                f"LR {p.likelihood_ratio:.3f}" if p.likelihood_ratio is not None
                else f"ACF peak {p.max_peak:.3f}"
            )
            print(f"{p.kind:<8} @ {p.bandwidth_bps:>7g} bps: {signal} | "
                  f"{'DETECTED' if p.detected else 'missed'}")
    elif n == 11:
        for p in _report_trial_failures(fig.fig11_window_scaling(
            seed=args.seed, jobs=args.jobs, timeout_s=timeout_s,
        )):
            print(f"window x{p.fraction:<5g}: best peak {p.best_peak:.3f}, "
                  f"{p.significant_windows}/{p.windows_analyzed} windows "
                  "significant")
    elif n == 12:
        for r in fig.fig12_message_sweep(
            seed=args.seed, jobs=args.jobs, timeout_s=timeout_s,
        ):
            if r.likelihood_ratios:
                print(f"{r.kind:<8}: min LR over messages "
                      f"{r.min_likelihood_ratio:.3f} (paper: > 0.9)")
            else:
                peaks = r.cache_peaks
                print(f"{r.kind:<8}: ACF peaks "
                      f"{min(peaks):.3f}..{max(peaks):.3f}")
    elif n == 13:
        for r in _report_trial_failures(fig.fig13_cache_set_sweep(
            seed=args.seed, jobs=args.jobs, timeout_s=timeout_s,
        )):
            print(f"{r.n_sets} sets: peak {r.peak_value:.3f} at lag "
                  f"{r.peak_lag}")
    elif n == 14:
        return _cmd_false_alarms(
            argparse.Namespace(
                seed=args.seed, quanta=8, jobs=args.jobs,
                trial_timeout=timeout_s,
                metrics_out=getattr(args, "metrics_out", None),
            )
        )
    else:
        print(
            f"figure {n} not wired to the CLI; see benchmarks/ for the "
            "full set",
            file=sys.stderr,
        )
        return 2
    _write_obs_artifacts(args)
    return 0


def _cmd_record(args) -> int:
    from repro.traces import export_traces

    message = Message.random(args.bits, args.seed)
    run = fig.run_channel_session(
        args.channel, message, bandwidth_bps=args.bandwidth, seed=args.seed
    )
    archive = export_traces(run.machine, args.path)
    print(
        f"recorded {archive.n_quanta} quanta to {args.path}: "
        f"{archive.bus_lock_times.size} bus locks, "
        f"{archive.cache_times.size} conflict misses"
    )
    return 0


def _cmd_analyze(args) -> int:
    from repro.pipeline import MetricsSink
    from repro.traces import analyze_traces, load_traces

    archive = load_traces(
        args.path,
        on_corruption="skip" if args.skip_corrupt else "raise",
    )
    for unit in archive.gaps:
        print(
            f"repro: warning: corrupt records skipped for unit "
            f"'{unit}'; its verdict is degraded",
            file=sys.stderr,
        )
    # --metrics-out (and the forensic outputs) turn the replayed session
    # eager (MetricsSink + first-detection tracking) so the artifacts
    # carry the same per-quantum latency, detection metrics, and verdict
    # timelines a live session would.
    wants_evidence = bool(args.evidence_out or args.report_out)
    wants_metrics = bool(args.metrics_out) or wants_evidence
    sinks = [MetricsSink()] if wants_metrics else []
    sampler = None
    if args.timeseries_out:
        from repro.obs import MetricsSampler
        from repro.pipeline import TimeseriesSink

        sampler = MetricsSampler(every_quanta=1, source="analyze")
        sinks.append(TimeseriesSink(sampler))
    profiler = None
    if args.profile_out:
        from repro.obs.profile import enable_profiling

        profiler = enable_profiling()
    report = analyze_traces(
        archive,
        window_fraction=args.window_fraction,
        sinks=sinks,
        track_detection_latency=wants_metrics,
        injectors=_build_injectors(args),
        capture_evidence=wants_evidence,
    )
    if args.as_json:
        print(json.dumps(_meta_report(report), sort_keys=True))
    else:
        print(report.render())
    if wants_evidence or sampler is not None:
        bundles = {
            v.unit: v.evidence
            for v in report.verdicts
            if v.evidence is not None
        }
        _write_forensics(
            args,
            bundles,
            meta={
                "command": "analyze",
                "archive": args.path,
                "window_fraction": float(args.window_fraction),
                "report": _meta_report(report),
            },
            sampler=sampler,
        )
    _write_obs_artifacts(args, profiler=profiler)
    return 0 if not report.any_detected else 3


def _cmd_report(args) -> int:
    from repro.obs.evidence import load_evidence
    from repro.report import render_report

    doc = load_evidence(args.path)
    records = None
    if args.timeseries:
        from repro.obs.timeseries import load_jsonl

        _header, records = load_jsonl(args.timeseries)
    fmt = _report_format_for(args.out, args.format)
    text = render_report(doc, fmt, timeseries=records, title=args.title)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(
            f"forensic report ({fmt}) written to {args.out}",
            file=sys.stderr,
        )
    else:
        print(text, end="")
    return 0


def _cmd_metrics(args) -> int:
    snapshot = load_snapshot(args.path)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import (
        load_profile,
        render_collapsed,
        render_top,
        to_speedscope,
    )

    doc = load_profile(args.path)
    if args.format == "collapsed":
        text = render_collapsed(doc)
    elif args.format == "speedscope":
        text = (
            json.dumps(to_speedscope(doc, name=args.path), sort_keys=True)
            + "\n"
        )
    else:
        text = render_top(doc, args.top)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(
            f"profile rendering ({args.format}) written to {args.out}",
            file=sys.stderr,
        )
    else:
        print(text, end="")
    return 0


def _bench_provenance():
    """Timestamp/revision/fingerprint for a bench run, computed here —
    the bench library never reads the wall clock itself."""
    from datetime import datetime, timezone

    from repro.bench import git_revision, machine_fingerprint

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "git_rev": git_revision(),
        "fingerprint": machine_fingerprint(),
    }


def _cmd_bench_check(args) -> int:
    from repro.bench import check_benches

    report = check_benches(
        args.names or None,
        baseline_dir=args.baseline_dir,
        benchmarks_dir=args.benchmarks_dir,
        quick=args.quick,
        history_path=None if args.no_history else args.history,
        **_bench_provenance(),
    )
    for bench in report["benches"]:
        for row in bench["rows"]:
            if row.get("skipped"):
                verdict = "skip (full run only)"
            elif row["kind"] == "bool":
                verdict = f"ok   {row['fresh']} (baseline {row['baseline']})"
            else:
                verdict = (
                    f"ok   {row['fresh']:.6g} vs baseline "
                    f"{row['baseline']:.6g} (bound {row['allowed']:.6g}, "
                    f"{row['direction']} is better)"
                )
            print(f"{row['bench']}.{row['metric']}: {verdict}")
    mode = "quick" if report["quick"] else "full"
    print(f"bench check ({mode}): all gated metrics within tolerance")
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench import append_history, bench_result, run_bench, suite_names

    provenance = _bench_provenance()
    names = args.names or suite_names()
    records = []
    for name in names:
        metrics = run_bench(name, args.benchmarks_dir, quick=args.quick)
        records.append(
            bench_result(
                name,
                metrics,
                timestamp=provenance["timestamp"],
                quick=args.quick,
                git_rev=provenance["git_rev"],
                fingerprint=provenance["fingerprint"],
            )
        )
        print(json.dumps(records[-1], sort_keys=True))
    if not args.no_history:
        count = append_history(args.history, records)
        print(
            f"{count} bench result(s) appended to {args.history}",
            file=sys.stderr,
        )
    return 0


def _cmd_bench_history(args) -> int:
    from repro.bench import load_history

    records = load_history(args.history)
    if args.name:
        records = [r for r in records if r.get("name") == args.name]
    for record in records:
        rev = record.get("git_rev") or "-"
        mode = "quick" if record.get("quick") else "full"
        print(
            f"{record.get('timestamp') or '-':<32} {record.get('name'):<16} "
            f"{mode:<5} {rev[:12]}"
        )
    print(f"{len(records)} run(s)", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    """Run the multi-tenant detection service until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.serve import DetectionService, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        initial_credits=args.initial_credits,
        verdict_every=args.verdict_every,
        max_tenants=args.max_tenants,
        max_resident_sessions=args.max_resident,
        idle_expiry=args.idle_expiry,
        drain_timeout=args.drain_timeout,
        admin_port=args.admin_port,
        alerts_out=args.alerts_out,
    )

    async def _main():
        service = DetectionService(config=config, metrics=get_default())
        host, port = await service.start()
        if config.admin_port is not None:
            # Same parseable-readiness convention as the serve line.
            print(
                f"repro serve: telemetry on {host}:{service.admin_port}",
                flush=True,
            )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        # Parseable readiness line: scripts read the bound port from it
        # (port 0 asks the OS for a free one).
        print(
            f"repro serve: listening on {host}:{port} "
            f"({config.shards} shards, max {config.max_tenants} tenants)",
            flush=True,
        )
        waiters = [asyncio.ensure_future(stop_requested.wait())]
        if args.duration is not None:
            waiters.append(
                asyncio.ensure_future(asyncio.sleep(args.duration))
            )
        serving = asyncio.ensure_future(service.serve_forever())
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()
            serving.cancel()
            print(
                "repro serve: draining and shutting down",
                file=sys.stderr,
                flush=True,
            )
            stats = await service.stop()
            await asyncio.gather(serving, return_exceptions=True)
        return stats

    stats = asyncio.run(_main())
    print(f"{len(stats)} tenant(s) served")
    for name in sorted(stats):
        row = stats[name]
        flag = "DETECTED" if row.any_detected else "clear"
        print(
            f"  {name:<20} folded={row.received:<6} shed={row.shed:<5} "
            f"lost={row.lost:<5} health={row.health:<8} {flag}"
        )
    if args.metrics_out:
        get_default().write_json(args.metrics_out)
        print(
            f"metrics snapshot written to {args.metrics_out}",
            file=sys.stderr,
        )
    return 0


def _cmd_stream(args) -> int:
    """Stream synthetic tenant traffic at a running detection service."""
    import asyncio

    from repro.errors import EXIT_DETECTED
    from repro.faults.wire import build_link
    from repro.serve import stream_tenant
    from repro.serve.traffic import CHANNELS, make_observations

    result = asyncio.run(
        stream_tenant(
            args.host,
            args.port,
            args.tenant,
            CHANNELS,
            make_observations(args.profile, args.quanta, seed=args.seed),
            link=build_link(args.inject, seed=args.seed),
            finish_timeout=args.finish_timeout,
        )
    )
    goodbye = result.goodbye
    print(
        f"tenant {args.tenant!r}: attempted {result.attempted}, "
        f"folded {goodbye.received}, shed {goodbye.shed}"
    )
    if args.as_json:
        print(json.dumps(goodbye.report.to_dict(), sort_keys=True))
    else:
        print(goodbye.report.render())
    return EXIT_DETECTED if goodbye.report.any_detected else 0


def _cmd_top(args) -> int:
    """Live tenant-fleet dashboard over the serve telemetry endpoint."""
    import asyncio

    from repro.report.top import run_top

    try:
        asyncio.run(
            run_top(
                args.host,
                args.port,
                interval=args.interval,
                iterations=args.iterations,
                stream=sys.stdout,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _add_jobs_flag(subparser: argparse.ArgumentParser) -> None:
    """Accept --jobs after the subcommand too; the global value is the
    fallback (SUPPRESS keeps the subparser from clobbering it)."""
    subparser.add_argument(
        "--jobs", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for the sweep (1 = serial, 0 = all CPUs)",
    )
    subparser.add_argument(
        "--trial-timeout", type=float, default=argparse.SUPPRESS,
        metavar="SECONDS", dest="trial_timeout",
        help="per-trial wall-clock budget; stuck or crashing trials are "
        "recorded as failures instead of aborting the sweep "
        "(default: no timeout)",
    )


def _add_forensics_flags(subparser: argparse.ArgumentParser) -> None:
    """The evidence / report / time-series outputs (docs/FORENSICS.md)."""
    subparser.add_argument(
        "--evidence-out", metavar="PATH", dest="evidence_out",
        help="capture per-unit forensic evidence bundles and write the "
        "evidence document (JSON) to PATH",
    )
    subparser.add_argument(
        "--report-out", metavar="PATH", dest="report_out",
        help="render a self-contained forensic report to PATH "
        "(.md for Markdown, anything else HTML); implies evidence capture",
    )
    subparser.add_argument(
        "--timeseries-out", metavar="PATH", dest="timeseries_out",
        help="sample the metrics registry once per quantum and write the "
        "JSONL time series to PATH",
    )


_INJECT_HELP = (
    "comma-separated fault injection spec, e.g. "
    "'drop:0.1,stall:0.05:3@membus' — kinds: drop:P, dup:P, "
    "reorder:W, stall:P[:W], bitflip:P[:BITS], saturate:P; "
    "@CHANNEL targets one channel (default all). See docs/ROBUSTNESS.md"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CC-Hunter reproduction command line",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="threshold for the structured repro.* loggers",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of text",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep commands (default 1 = serial, "
        "0 = all CPUs); results are identical for every value",
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        dest="trial_timeout",
        help="per-trial wall-clock budget for sweep commands; stuck or "
        "crashing trials are recorded as failures instead of aborting "
        "(default: no timeout)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=_cmd_table1
    )

    detect = sub.add_parser(
        "detect", help="run a covert channel under CC-Hunter audit"
    )
    detect.add_argument(
        "--channel",
        choices=("membus", "divider", "multiplier", "cache"),
        default="membus",
    )
    detect.add_argument("--bandwidth", type=float, default=10.0)
    detect.add_argument("--bits", type=int, default=32)
    detect.add_argument("--seed", type=int, default=1)
    detect.add_argument("--cache-sets", type=int, default=256)
    detect.add_argument(
        "--no-noise", action="store_true",
        help="disable the background interference processes",
    )
    detect.add_argument(
        "--stream", action="store_true",
        help="print per-quantum verdict updates while the session runs",
    )
    detect.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report (JSON lines with --stream)",
    )
    detect.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a JSON metrics snapshot of the run to PATH",
    )
    detect.add_argument(
        "--trace-out", metavar="PATH",
        help="record spans and write a Chrome-trace JSON file to PATH",
    )
    detect.add_argument(
        "--profile-out", metavar="PATH", dest="profile_out",
        help="attribute per-stage wall/CPU time and write the "
        "repro.obs.profile/v1 document to PATH (render with "
        "`repro profile`)",
    )
    detect.add_argument("--inject", metavar="SPEC", help=_INJECT_HELP)
    detect.add_argument(
        "--watch", action="store_true",
        help="show a live status block (redrawn in place on a TTY) "
        "while the session runs",
    )
    _add_forensics_flags(detect)
    detect.set_defaults(func=_cmd_detect)

    false_alarms = sub.add_parser(
        "false-alarms", help="run the Figure 14 benign-pair screen"
    )
    false_alarms.add_argument("--seed", type=int, default=9)
    false_alarms.add_argument("--quanta", type=int, default=8)
    false_alarms.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a JSON metrics snapshot of the sweep to PATH",
    )
    _add_jobs_flag(false_alarms)
    false_alarms.set_defaults(func=_cmd_false_alarms)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int)
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a JSON metrics snapshot of the figure run to PATH",
    )
    _add_jobs_flag(figure)
    figure.set_defaults(func=_cmd_figure)

    record = sub.add_parser(
        "record",
        help="run a covert session and export its indicator events",
    )
    record.add_argument("path", help="output .npz archive")
    record.add_argument(
        "--channel", choices=("membus", "divider", "multiplier", "cache"),
        default="membus",
    )
    record.add_argument("--bandwidth", type=float, default=100.0)
    record.add_argument("--bits", type=int, default=30)
    record.add_argument("--seed", type=int, default=1)
    record.set_defaults(func=_cmd_record)

    analyze = sub.add_parser(
        "analyze", help="run CC-Hunter offline over a trace archive"
    )
    analyze.add_argument("path", help=".npz archive from `record`")
    analyze.add_argument("--window-fraction", type=float, default=1.0)
    analyze.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as machine-readable JSON",
    )
    analyze.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a JSON metrics snapshot of the replay to PATH",
    )
    analyze.add_argument(
        "--profile-out", metavar="PATH", dest="profile_out",
        help="attribute per-stage wall/CPU time and write the "
        "repro.obs.profile/v1 document to PATH (render with "
        "`repro profile`)",
    )
    analyze.add_argument("--inject", metavar="SPEC", help=_INJECT_HELP)
    analyze.add_argument(
        "--seed", type=int, default=0,
        help="seed for the --inject fault streams",
    )
    analyze.add_argument(
        "--skip-corrupt", action="store_true",
        help="skip corrupt archive records (gap + degraded verdict) "
        "instead of exiting with the corrupt-archive code",
    )
    _add_forensics_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    report = sub.add_parser(
        "report",
        help="render an --evidence-out document as a forensic report",
    )
    report.add_argument("path", help="evidence.json from --evidence-out")
    report.add_argument(
        "--timeseries", metavar="PATH",
        help="JSONL metrics time series from --timeseries-out to embed",
    )
    report.add_argument(
        "--out", metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    report.add_argument(
        "--format", choices=("html", "md"), default=None,
        help="output format (default: by --out extension, else html)",
    )
    report.add_argument(
        "--title", default="CC-Hunter forensic report",
        help="report title",
    )
    report.set_defaults(func=_cmd_report)

    metrics = sub.add_parser(
        "metrics",
        help="re-render a --metrics-out snapshot (Prometheus text or JSON)",
    )
    metrics.add_argument("path", help="metrics.json from --metrics-out")
    metrics.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="output format (default: Prometheus text exposition)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    profile = sub.add_parser(
        "profile",
        help="render a --profile-out stage profile (table, collapsed "
        "stacks, or speedscope JSON)",
    )
    profile.add_argument("path", help="profile.json from --profile-out")
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows in the self-time table (default 15)",
    )
    profile.add_argument(
        "--format", choices=("table", "collapsed", "speedscope"),
        default="table",
        help="table: top-N self-time; collapsed: flamegraph.pl input; "
        "speedscope: JSON for https://speedscope.app (default table)",
    )
    profile.add_argument(
        "--out", metavar="PATH",
        help="write the rendering to PATH instead of stdout",
    )
    profile.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="run the registered benchmarks and gate against the "
        "committed BENCH_*.json baselines (docs/PERFORMANCE.md)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def _add_bench_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "names", nargs="*", metavar="NAME",
            help="benchmarks to run (default: the whole registered suite)",
        )
        p.add_argument(
            "--quick", action="store_true",
            help="low-trial smoke mode (REPRO_BENCH_QUICK): gates only "
            "metrics a 2-trial run can resolve",
        )
        p.add_argument(
            "--benchmarks-dir", default="benchmarks", metavar="DIR",
            dest="benchmarks_dir",
            help="directory holding bench_*.py modules (default: "
            "benchmarks/, i.e. run from the repo root)",
        )
        p.add_argument(
            "--history", default="benchmarks/history.jsonl", metavar="PATH",
            help="JSONL run-history file to append results to "
            "(default: benchmarks/history.jsonl)",
        )
        p.add_argument(
            "--no-history", action="store_true", dest="no_history",
            help="do not append this run to the history file",
        )

    bench_check = bench_sub.add_parser(
        "check",
        help="run benches and fail (exit 8) on any out-of-tolerance "
        "metric vs the committed baselines",
    )
    _add_bench_common(bench_check)
    bench_check.add_argument(
        "--baseline-dir", default=".", metavar="DIR", dest="baseline_dir",
        help="directory holding the committed BENCH_*.json baselines "
        "(default: the current directory, i.e. run from the repo root)",
    )
    bench_check.set_defaults(func=_cmd_bench_check)

    bench_run = bench_sub.add_parser(
        "run",
        help="run benches and print result documents without gating",
    )
    _add_bench_common(bench_run)
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_history = bench_sub.add_parser(
        "history", help="list the appended bench run history"
    )
    bench_history.add_argument(
        "--history", default="benchmarks/history.jsonl", metavar="PATH",
        help="JSONL run-history file (default: benchmarks/history.jsonl)",
    )
    bench_history.add_argument(
        "--name", metavar="NAME", help="only show runs of this benchmark"
    )
    bench_history.set_defaults(func=_cmd_bench_history)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant detection service until SIGINT "
        "(docs/SERVING.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default: 0 = OS-assigned; the bound "
        "port is printed on the readiness line)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="detection worker shards (default: 2)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="per-tenant ingest queue depth; past it observations are "
        "hard-shed (default: 64)",
    )
    serve.add_argument(
        "--initial-credits", type=int, default=32, dest="initial_credits",
        help="per-tenant credit window granted at hello (default: 32)",
    )
    serve.add_argument(
        "--verdict-every", type=int, default=8, dest="verdict_every",
        help="push a verdict frame every N folded quanta (default: 8)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=64, dest="max_tenants",
        help="admission cap on distinct tenants (default: 64)",
    )
    serve.add_argument(
        "--max-resident", type=int, default=48, dest="max_resident",
        help="resident DetectionSession cap; disconnected tenants "
        "beyond it are LRU-evicted (default: 48)",
    )
    serve.add_argument(
        "--idle-expiry", type=float, default=30.0, dest="idle_expiry",
        help="seconds a disconnected tenant stays resident "
        "(default: 30)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, dest="drain_timeout",
        help="shutdown budget for folding queued observations before "
        "the rest are shed (default: 5)",
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for this long then shut down gracefully "
        "(default: until SIGINT/SIGTERM)",
    )
    serve.add_argument(
        "--metrics-out", metavar="PATH", dest="metrics_out",
        help="write the cchunter_serve_* metrics snapshot (JSON) to "
        "PATH at shutdown",
    )
    serve.add_argument(
        "--admin-port", type=int, default=None, dest="admin_port",
        metavar="PORT",
        help="serve the live telemetry plane (/metrics, /healthz, "
        "/readyz, /tenants, /profile) on this port (0 = OS-assigned; "
        "default: disabled) — docs/OBSERVABILITY.md",
    )
    serve.add_argument(
        "--alerts-out", metavar="PATH", dest="alerts_out",
        help="append fired SLO burn-rate alerts (repro.obs.alert/v1 "
        "JSONL) to PATH",
    )
    serve.set_defaults(func=_cmd_serve)

    stream = sub.add_parser(
        "stream",
        help="stream synthetic tenant traffic at a running service "
        "and print its final report (docs/SERVING.md)",
    )
    stream.add_argument(
        "--tenant", required=True, help="tenant name to stream as"
    )
    stream.add_argument(
        "--host", default="127.0.0.1",
        help="service host (default: 127.0.0.1)",
    )
    stream.add_argument(
        "--port", type=int, required=True, help="service port"
    )
    stream.add_argument(
        "--profile", default="covert", choices=("covert", "benign"),
        help="traffic profile (default: covert)",
    )
    stream.add_argument(
        "--quanta", type=int, default=40,
        help="observation quanta to stream (default: 40)",
    )
    stream.add_argument(
        "--seed", type=int, default=0,
        help="traffic and fault-injection seed (default: 0)",
    )
    stream.add_argument(
        "--inject", metavar="SPEC", default=None,
        help="frame-level fault spec, e.g. 'drop:0.2,stall:0.05:0.01,"
        "garbage:0.05' — emulates a lossy client (docs/ROBUSTNESS.md)",
    )
    stream.add_argument(
        "--finish-timeout", type=float, default=30.0,
        dest="finish_timeout",
        help="seconds to wait for the final goodbye report "
        "(default: 30)",
    )
    stream.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the final report as JSON instead of text",
    )
    stream.set_defaults(func=_cmd_stream)

    top = sub.add_parser(
        "top",
        help="live tenant-fleet dashboard polling a serve telemetry "
        "endpoint, sorted by SLO burn rate (docs/OBSERVABILITY.md)",
    )
    top.add_argument(
        "--host", default="127.0.0.1",
        help="telemetry endpoint host (default: 127.0.0.1)",
    )
    top.add_argument(
        "--port", type=int, required=True,
        help="telemetry endpoint port (repro serve --admin-port)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between polls (default: 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N polls (default: run until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import exit_code_for

    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    # Each invocation gets a fresh default registry so --metrics-out
    # snapshots cover exactly this run.
    new_default()
    try:
        return args.func(args)
    except Exception as exc:
        # Every failure exits with a documented code (repro.errors) and
        # a one-line message — no tracebacks for operational errors.
        code = exit_code_for(exc)
        print(f"repro: error: {exc}", file=sys.stderr)
        if code == 7:  # INTERNAL: unexpected — keep the evidence
            import traceback

            traceback.print_exc()
        return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
