"""Cache way-partitioning: remove the cache channel's medium.

Partition-Locking-style defenses (Wang & Lee) assign cache ways to
context groups so one group's fills can never evict another group's
blocks. Applied after CC-Hunter identifies a suspect pair, partitioning
eliminates cross-group conflict misses — the cache channel's only
signal — at the cost of reduced effective capacity per group.

The implementation wraps the shared cache's ``access`` so each lookup
operates on the subset of ways owned by the accessor's group: a fill may
only evict a block whose owner is in the same group.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.machine import Machine
from repro.sim.resources.cache import SharedCache, block_key


class _WayPartition:
    """Way-partitioned view over a SharedCache."""

    def __init__(self, cache: SharedCache, group_of_ctx: Dict[int, int],
                 ways_of_group: Dict[int, int]):
        total_ways = sum(ways_of_group.values())
        if total_ways != cache.config.associativity:
            raise ConfigError(
                f"group ways sum to {total_ways}, cache has "
                f"{cache.config.associativity}"
            )
        self.cache = cache
        self.group_of_ctx = dict(group_of_ctx)
        self.ways_of_group = dict(ways_of_group)
        self.cross_group_evictions_prevented = 0
        self._original_access = cache.access
        cache.access = self._partitioned_access  # type: ignore

    def _group(self, ctx: int) -> int:
        if ctx not in self.group_of_ctx:
            raise ConfigError(f"context {ctx} has no partition group")
        return self.group_of_ctx[ctx]

    def _partitioned_access(self, ctx, set_index, tag, time):
        """Access restricted to the accessor group's ways.

        Hits behave normally (data is where it is); on a miss the victim
        is the LRU block *owned by the same group*, and the group may only
        hold up to its way allocation in the set.
        """
        cache = self.cache
        cache_set = cache._sets[set_index]
        group = self._group(ctx)
        if tag in cache_set:
            return self._original_access(ctx, set_index, tag, time)
        # Miss path: enforce the group's way budget manually.
        cache.misses += 1
        key = block_key(set_index, tag)
        is_conflict = cache.tracker.check_recent_eviction(key)
        group_tags = [
            t for t, owner in cache_set.items()
            if self.group_of_ctx.get(owner, -1) == group
        ]
        victim_owner = None
        if len(group_tags) >= self.ways_of_group[group]:
            victim_tag = group_tags[0]  # LRU among the group's blocks
            victim_owner = cache_set.pop(victim_tag)
            cache.tracker.on_replacement(block_key(set_index, victim_tag))
        elif len(cache_set) >= cache.config.associativity:
            # Set full but group under budget: another group is over its
            # allocation (legacy blocks from before partitioning); evict
            # the globally-LRU block without attributing a conflict pair.
            victim_tag, _owner = cache_set.popitem(last=False)
            cache.tracker.on_replacement(block_key(set_index, victim_tag))
            self.cross_group_evictions_prevented += 1
            victim_owner = None
        cache_set[tag] = ctx
        cache.tracker.on_access(key)
        if is_conflict and victim_owner is not None:
            cache.conflict_misses += 1
            cache.miss_tap.record(time, ctx, victim_owner)
        latency = cache.config.miss_latency
        if cache.latency_jitter:
            latency += int(cache._rng.integers(-cache.latency_jitter,
                                               cache.latency_jitter + 1))
        return latency, False

    def remove(self) -> None:
        """Restore the unpartitioned access path.

        Drops the instance-level override entirely when the original was
        the plain class method, so the cache's batch kernels (disabled
        while any ``access`` wrapper is installed) re-engage; a stacked
        wrapper is reinstalled as-is.
        """
        cache = self.cache
        try:
            del cache.access
        except AttributeError:
            pass
        if cache.access != self._original_access:
            cache.access = self._original_access  # type: ignore


def partition_cache_ways(
    machine: Machine,
    suspect_contexts: Sequence[int],
    suspect_ways: Optional[int] = None,
) -> _WayPartition:
    """Quarantine each suspect context into its own private cache ways.

    Every suspect gets a *separate* group of ``suspect_ways`` ways
    (default: associativity / 4), so the suspects can no longer evict
    each other's blocks — which is the cache channel's only signal — nor
    anyone else's; the remaining contexts share the leftover ways.
    """
    suspects = list(dict.fromkeys(suspect_contexts))
    if not suspects:
        raise ConfigError("need at least one suspect context")
    assoc = machine.config.l2.associativity
    ways = suspect_ways if suspect_ways is not None else max(1, assoc // 4)
    remaining = assoc - ways * len(suspects)
    if ways < 1 or remaining < 1:
        raise ConfigError(
            f"cannot give {len(suspects)} suspects {ways} ways each out of "
            f"{assoc} and leave any for the rest"
        )
    group_of_ctx = {}
    ways_of_group = {}
    for i, ctx in enumerate(suspects):
        group_of_ctx[ctx] = i
        ways_of_group[i] = ways
    shared_group = len(suspects)
    ways_of_group[shared_group] = remaining
    for ctx in range(machine.config.n_contexts):
        group_of_ctx.setdefault(ctx, shared_group)
    return _WayPartition(machine.l2, group_of_ctx, ways_of_group)
