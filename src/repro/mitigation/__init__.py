"""Post-detection mitigations.

CC-Hunter is a detector; the paper positions mitigation techniques —
bandwidth reduction, resource partitioning, clock fuzzing (Hu et al.) —
as complements applied *after* detection. This package implements the
three classic responses against the reproduced channels so the full
detect-then-respond loop can be exercised:

- :mod:`throttle` — rate-limit bus-lock operations per context
  (bandwidth reduction for the bus channel);
- :mod:`partition` — way-partition the shared cache between contexts
  (eliminates cross-context conflict misses, the cache channel's medium);
- :mod:`fuzz` — fuzz the spy's clock by inflating timing jitter
  (degrades every channel's decode reliability at a performance cost).
"""

from repro.mitigation.fuzz import ClockFuzzer, apply_clock_fuzzing
from repro.mitigation.partition import partition_cache_ways
from repro.mitigation.throttle import BusLockThrottle, apply_bus_lock_throttle

__all__ = [
    "ClockFuzzer",
    "apply_clock_fuzzing",
    "partition_cache_ways",
    "BusLockThrottle",
    "apply_bus_lock_throttle",
]
