"""Clock fuzzing: degrade every timing channel's decode reliability.

Hu's classic mitigation randomizes the clock the spy times with, at a
real performance/precision cost to everyone (which is why the paper
recommends detection first, fuzzing second). We model it as amplified
measurement jitter on the resources the spy times: bus sample latencies
and cache access latencies gain a uniform fuzz term, drowning the
latency gap the spy decodes from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.machine import Machine


class ClockFuzzer:
    """Injects uniform timing fuzz into spy-visible latencies.

    ``correlated=False`` (default) draws independent noise per access —
    Hu-style clock fuzzing, which deep averaging can partially defeat.
    ``correlated=True`` draws one offset per *timing call* (a whole probe
    or sampling loop shares it), modeling the burst-correlated latency
    variability of real systems (timer interrupts, DRAM refresh phases,
    co-runner bursts) that the paper says makes low-contrast covert
    signals unreliable — it does not average away within a probe.
    """

    def __init__(self, machine: Machine, fuzz_cycles: int,
                 correlated: bool = False):
        if fuzz_cycles <= 0:
            raise ConfigError("fuzz amplitude must be positive")
        self.machine = machine
        self.fuzz_cycles = fuzz_cycles
        self.correlated = correlated
        self._rng = np.random.default_rng(machine.seed ^ 0xF022)
        self._original_bus_sample = machine.bus.sample
        self._original_cache_series = machine.l2.access_series
        machine.bus.sample = self._fuzzed_bus_sample  # type: ignore
        machine.l2.access_series = self._fuzzed_cache_series  # type: ignore

    def _fuzz(self, latencies: np.ndarray) -> np.ndarray:
        if self.correlated:
            noise = int(self._rng.integers(0, self.fuzz_cycles + 1))
        else:
            noise = self._rng.integers(
                0, self.fuzz_cycles + 1, size=latencies.shape
            )
        return latencies + noise

    def _fuzzed_bus_sample(self, ctx, start, count, period):
        end, latencies = self._original_bus_sample(ctx, start, count, period)
        return end, self._fuzz(latencies)

    def _fuzzed_cache_series(self, ctx, accesses, gap, start):
        end, latencies = self._original_cache_series(
            ctx, accesses, gap, start
        )
        return end, self._fuzz(latencies)

    def remove(self) -> None:
        self.machine.bus.sample = self._original_bus_sample  # type: ignore
        self.machine.l2.access_series = (  # type: ignore
            self._original_cache_series
        )

    def expected_ber_floor(self, latency_gap: float,
                           samples_per_bit: int) -> float:
        """Rough decode-error floor the fuzz imposes on a threshold decoder.

        The spy averages ``samples_per_bit`` readings whose fuzz has
        standard deviation ``fuzz/sqrt(12)``; a Gaussian tail estimate at
        half the latency gap gives the per-bit error probability.
        """
        sigma = self.fuzz_cycles / np.sqrt(12.0) / np.sqrt(samples_per_bit)
        if sigma == 0:
            return 0.0
        z = (latency_gap / 2.0) / sigma
        # Complementary normal CDF via erfc.
        from math import erfc, sqrt

        return 0.5 * erfc(z / sqrt(2.0))


def apply_clock_fuzzing(machine: Machine, fuzz_cycles: int = 800) -> ClockFuzzer:
    """Install clock fuzzing sized to swamp the channels' latency gaps.

    The default 800-cycle amplitude is ~4x the bus channel's contended
    vs uncontended gap, pushing its effective decode error rate toward
    coin-flipping for realistic per-bit sample counts.
    """
    return ClockFuzzer(machine, fuzz_cycles)
