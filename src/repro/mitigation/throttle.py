"""Bus-lock throttling: bandwidth reduction for the bus channel.

After CC-Hunter flags the memory bus, the OS can rate-limit atomic
unaligned operations per offending context (modern kernels expose exactly
this under split-lock detection). The throttle enforces a minimum
spacing between a context's bus locks by stretching bursts, which slashes
the covert channel's usable bandwidth without touching well-behaved
programs (benign lock rates are far below the cap).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.sim.machine import Machine
from repro.sim.resources.bus import MemoryBus


class BusLockThrottle:
    """Per-context minimum spacing between bus-lock operations."""

    def __init__(self, bus: MemoryBus, min_period: int,
                 contexts: Optional[set] = None):
        if min_period <= 0:
            raise ConfigError("throttle period must be positive")
        self.bus = bus
        self.min_period = min_period
        self.contexts = contexts  # None = throttle everyone
        self.locks_delayed = 0
        self._original_lock_burst = bus.lock_burst
        bus.lock_burst = self._throttled_lock_burst  # type: ignore

    def _throttled_lock_burst(
        self, ctx: int, start: int, count: int, period: int
    ) -> int:
        if self.contexts is not None and ctx not in self.contexts:
            return self._original_lock_burst(ctx, start, count, period)
        if period < self.min_period:
            self.locks_delayed += count
            period = self.min_period
        return self._original_lock_burst(ctx, start, count, period)

    def remove(self) -> None:
        """Lift the throttle."""
        self.bus.lock_burst = self._original_lock_burst  # type: ignore

    @property
    def effective_max_lock_rate(self) -> float:
        """Upper bound on throttled lock events per cycle."""
        return 1.0 / self.min_period


def apply_bus_lock_throttle(
    machine: Machine,
    min_period: int = 100_000,
    contexts: Optional[set] = None,
) -> BusLockThrottle:
    """Install a bus-lock throttle on a machine's bus.

    The default spacing of one lock per 100 000 cycles (one per Δt
    window) caps the channel's burst density at 1 event per window —
    indistinguishable from benign noise, and roughly 20x below what the
    channel needs per Figure 6a.
    """
    return BusLockThrottle(machine.bus, min_period, contexts)
