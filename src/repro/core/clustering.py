"""Recurrence detection by pattern clustering (Section IV-B, step 5).

A single bursty histogram can be an accident; covert transmission produces
burst patterns that *recur* across observation windows. The paper's
clustering algorithm (1) discretizes each window's event-density histogram
into a string over a small symbol alphabet and (2) aggregates similar
strings with k-means. Clusters whose aggregate histogram carries a
significant burst distribution reveal how often — and how spread over time
— the burst pattern recurs, regardless of burst spacing (so irregular and
low-bandwidth channels still cluster).

The observation horizon is capped at 512 OS quanta (51.2 s) so old
windows do not dilute the histograms of an active channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CLUSTERING_WINDOW_QUANTA, LIKELIHOOD_RATIO_THRESHOLD
from repro.core.burst import BurstAnalysis, analyze_histogram
from repro.errors import DetectionError
from repro.util.rng import RngLike, make_rng
from repro.util.strings import discretize_histogram


def kmeans(
    points: np.ndarray,
    k: int,
    rng: RngLike = 0,
    max_iters: int = 64,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Plain k-means with k-means++ seeding.

    Returns ``(labels, centroids, inertia)``. Deterministic for a fixed
    seed. Empty clusters are re-seeded on the farthest point.
    """
    X = np.asarray(points, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise DetectionError("kmeans needs a non-empty 2-D point matrix")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise DetectionError(f"k must be in 1..{n}, got {k}")
    gen = make_rng(rng)

    # --- k-means++ seeding
    centroids = np.empty((k, X.shape[1]), dtype=np.float64)
    first = int(gen.integers(0, n))
    centroids[0] = X[first]
    closest_sq = ((X - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total == 0:
            centroids[j] = X[int(gen.integers(0, n))]
            continue
        probs = closest_sq / total
        idx = int(gen.choice(n, p=probs))
        centroids[j] = X[idx]
        closest_sq = np.minimum(closest_sq, ((X - centroids[j]) ** 2).sum(axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        distances = ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        for j in range(k):
            members = X[new_labels == j]
            if members.shape[0] == 0:
                # Re-seed an empty cluster on the farthest point.
                farthest = int(distances.min(axis=1).argmax())
                centroids[j] = X[farthest]
            else:
                centroids[j] = members.mean(axis=0)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
    distances = ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    inertia = float(distances[np.arange(n), labels].sum())
    return labels, centroids, inertia


@dataclass(frozen=True)
class RecurrenceAnalysis:
    """Outcome of the pattern-clustering recurrence check."""

    n_windows: int
    cluster_labels: np.ndarray
    #: Cluster indices whose aggregate histogram has a significant burst
    #: distribution (likelihood ratio >= threshold).
    burst_clusters: Tuple[int, ...]
    #: Per-burst-cluster aggregate burst analyses (parallel to burst_clusters).
    burst_analyses: Tuple[BurstAnalysis, ...]
    #: Windows falling in burst clusters.
    burst_window_indices: np.ndarray
    #: Burst patterns recur: enough burst windows, spread over the horizon.
    recurrent: bool

    @property
    def burst_window_fraction(self) -> float:
        if self.n_windows == 0:
            return 0.0
        return self.burst_window_indices.size / self.n_windows


def analyze_recurrence(
    histograms: Sequence[np.ndarray],
    k: Optional[int] = None,
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    min_burst_windows: int = 2,
    rng: RngLike = 0,
    max_windows: int = CLUSTERING_WINDOW_QUANTA,
    features: Optional[Sequence[np.ndarray]] = None,
) -> RecurrenceAnalysis:
    """Cluster per-window histograms and decide whether bursts recur.

    ``histograms`` is one event-density histogram per observation window
    (most recent windows are kept if more than ``max_windows`` are given).
    A channel is recurrent when the windows that land in burst-significant
    clusters number at least ``min_burst_windows`` and are not all
    contiguous (a single isolated burst episode does not recur).

    ``features`` optionally supplies the per-window discretized
    histograms (``discretize_histogram(h)`` for each window, parallel to
    ``histograms``): streaming callers evaluating verdicts every quantum
    discretize each window once at push time instead of re-discretizing
    the whole horizon per evaluation. The result is identical either way.
    """
    if not histograms:
        raise DetectionError("need at least one window histogram")
    hists = [np.asarray(h, dtype=np.int64) for h in histograms[-max_windows:]]
    width = hists[0].size
    for h in hists:
        if h.size != width:
            raise DetectionError("all window histograms must share bin count")
    n = len(hists)

    if features is None:
        feats = [discretize_histogram(h) for h in hists]
    else:
        if len(features) != len(histograms):
            raise DetectionError(
                "features must parallel histograms (one per window)"
            )
        feats = [
            np.asarray(f, dtype=np.int64) for f in features[-max_windows:]
        ]
    # Distinct-row count over integer symbol strings: byte equality is
    # exactly value equality for int64 rows, and hashing is much cheaper
    # than np.unique's lexicographic row sort.
    n_distinct = len({f.tobytes() for f in feats})
    k_eff = k if k is not None else max(1, min(4, n_distinct))
    if k_eff == 1:
        # One cluster: k-means labels every point 0 regardless of
        # seeding (argmin over a single column), so skip it outright —
        # the centroid is never used. Same labels, bit for bit.
        labels = np.zeros(n, dtype=np.int64)
    else:
        feature_matrix = np.stack(feats).astype(np.float64)
        labels, _centroids, _inertia = kmeans(feature_matrix, k_eff, rng=rng)

    burst_clusters: List[int] = []
    analyses: List[BurstAnalysis] = []
    for j in range(k_eff):
        member_idx = np.nonzero(labels == j)[0]
        if member_idx.size == 0:
            continue
        aggregate = np.sum([hists[i] for i in member_idx], axis=0)
        analysis = analyze_histogram(aggregate, lr_threshold=lr_threshold)
        if analysis.significant:
            burst_clusters.append(j)
            analyses.append(analysis)

    burst_windows = (
        np.nonzero(np.isin(labels, burst_clusters))[0]
        if burst_clusters
        else np.zeros(0, dtype=np.int64)
    )
    recurrent = bool(
        burst_windows.size >= min_burst_windows
        and (
            burst_windows.size > 1
            and (burst_windows[-1] - burst_windows[0]) >= burst_windows.size
            or burst_windows.size >= max(2, n // 2)
        )
    )
    return RecurrenceAnalysis(
        n_windows=n,
        cluster_labels=labels,
        burst_clusters=tuple(burst_clusters),
        burst_analyses=tuple(analyses),
        burst_window_indices=burst_windows,
        recurrent=recurrent,
    )
