"""CC-Hunter's detection algorithms (the paper's primary contribution).

Two detectors over indicator-event trains:

- **Recurrent burst pattern detection** for combinational hardware
  (:mod:`density`, :mod:`burst`, :mod:`clustering`): event-density
  histograms over Δt windows, burst/likelihood-ratio analysis, and k-means
  recurrence clustering of discretized histograms.
- **Oscillatory pattern detection** for memory hardware (:mod:`autocorr`,
  :mod:`oscillation`): autocorrelograms of labeled conflict-miss trains and
  periodicity scoring.

:class:`~repro.core.detector.CCHunter` is the user-facing facade that
attaches both to a simulated machine.
"""

from repro.core.autocorr import (
    RunningAutocorrelogram,
    autocorrelation,
    autocorrelogram,
)
from repro.core.burst import (
    BurstAnalysis,
    StreamingBurstEstimator,
    analyze_histogram,
    find_threshold_bin,
)
from repro.core.calibration import (
    AlphaCalibration,
    DeltaTRegime,
    assess_delta_t,
    calibrate_alpha,
)
from repro.core.clustering import RecurrenceAnalysis, analyze_recurrence, kmeans
from repro.core.density import (
    DensityHistogram,
    StreamingDensityHistogram,
    build_density_histogram,
    choose_delta_t,
)
from repro.core.event_train import EventTrain, LabeledEventTrain
from repro.core.oscillation import OscillationAnalysis, analyze_autocorrelogram
from repro.core.report import DetectionReport, UnitVerdict

# CCHunter sits above the streaming pipeline (repro.pipeline), whose
# analyzers import this package's estimator modules — so the facade is
# resolved lazily to keep the package import acyclic.
_LAZY_DETECTOR = ("AuditUnit", "CCHunter")


def __getattr__(name: str):
    if name in _LAZY_DETECTOR:
        from repro.core import detector

        return getattr(detector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EventTrain",
    "LabeledEventTrain",
    "DensityHistogram",
    "StreamingDensityHistogram",
    "build_density_histogram",
    "choose_delta_t",
    "BurstAnalysis",
    "StreamingBurstEstimator",
    "AlphaCalibration",
    "DeltaTRegime",
    "assess_delta_t",
    "calibrate_alpha",
    "analyze_histogram",
    "find_threshold_bin",
    "RecurrenceAnalysis",
    "analyze_recurrence",
    "kmeans",
    "autocorrelation",
    "autocorrelogram",
    "RunningAutocorrelogram",
    "OscillationAnalysis",
    "analyze_autocorrelogram",
    "AuditUnit",
    "CCHunter",
    "DetectionReport",
    "UnitVerdict",
]
