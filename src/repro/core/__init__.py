"""CC-Hunter's detection algorithms (the paper's primary contribution).

Two detectors over indicator-event trains:

- **Recurrent burst pattern detection** for combinational hardware
  (:mod:`density`, :mod:`burst`, :mod:`clustering`): event-density
  histograms over Δt windows, burst/likelihood-ratio analysis, and k-means
  recurrence clustering of discretized histograms.
- **Oscillatory pattern detection** for memory hardware (:mod:`autocorr`,
  :mod:`oscillation`): autocorrelograms of labeled conflict-miss trains and
  periodicity scoring.

:class:`~repro.core.detector.CCHunter` is the user-facing facade that
attaches both to a simulated machine.
"""

from repro.core.autocorr import autocorrelation, autocorrelogram
from repro.core.burst import BurstAnalysis, analyze_histogram, find_threshold_bin
from repro.core.calibration import (
    AlphaCalibration,
    DeltaTRegime,
    assess_delta_t,
    calibrate_alpha,
)
from repro.core.clustering import RecurrenceAnalysis, analyze_recurrence, kmeans
from repro.core.density import (
    DensityHistogram,
    build_density_histogram,
    choose_delta_t,
)
from repro.core.detector import AuditUnit, CCHunter
from repro.core.event_train import EventTrain, LabeledEventTrain
from repro.core.oscillation import OscillationAnalysis, analyze_autocorrelogram
from repro.core.report import DetectionReport, UnitVerdict

__all__ = [
    "EventTrain",
    "LabeledEventTrain",
    "DensityHistogram",
    "build_density_histogram",
    "choose_delta_t",
    "BurstAnalysis",
    "AlphaCalibration",
    "DeltaTRegime",
    "assess_delta_t",
    "calibrate_alpha",
    "analyze_histogram",
    "find_threshold_bin",
    "RecurrenceAnalysis",
    "analyze_recurrence",
    "kmeans",
    "autocorrelation",
    "autocorrelogram",
    "OscillationAnalysis",
    "analyze_autocorrelogram",
    "AuditUnit",
    "CCHunter",
    "DetectionReport",
    "UnitVerdict",
]
