"""Detection reports: what CC-Hunter tells the administrator.

A :class:`DetectionReport` aggregates one :class:`UnitVerdict` per audited
hardware unit. Verdicts carry the quantitative evidence (likelihood
ratios, recurrence, oscillation peaks) so operators can judge borderline
cases, plus a plain-text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class UnitVerdict:
    """Detection outcome for one audited hardware unit."""

    unit: str
    #: "burst" (combinational hardware) or "oscillation" (memory hardware).
    method: str
    detected: bool
    quanta_analyzed: int
    #: Burst method: best likelihood ratio over burst clusters (None for
    #: oscillation method).
    max_likelihood_ratio: Optional[float] = None
    #: Burst method: did burst patterns recur across windows?
    recurrent: Optional[bool] = None
    #: Burst method: fraction of windows in burst clusters.
    burst_window_fraction: Optional[float] = None
    #: Oscillation method: windows whose correlogram oscillated significantly.
    oscillating_windows: Optional[int] = None
    #: Oscillation method: highest correlogram peak observed.
    max_peak: Optional[float] = None
    #: Oscillation method: estimated oscillation wavelength (events).
    dominant_period: Optional[float] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)
    #: Operational health of the analyzer that produced this verdict:
    #: "ok", "degraded" (evidence impaired by gaps/faults but analysis
    #: continued), or "failed" (analyzer quarantined after repeated
    #: errors). See repro.pipeline.health and docs/ROBUSTNESS.md.
    health: str = "ok"
    #: Serialized forensic evidence bundle
    #: (:meth:`repro.obs.evidence.EvidenceBundle.to_dict`), attached
    #: only when the session captured evidence; see docs/FORENSICS.md.
    #: Excluded from equality so capture never changes verdict identity.
    evidence: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (plain Python scalars only).

        The ``evidence`` key appears only when a bundle is attached, so
        evidence-off payloads are byte-identical to earlier releases.
        """
        out = self._base_dict()
        if self.evidence is not None:
            out["evidence"] = self.evidence
        return out

    def _base_dict(self) -> Dict[str, Any]:
        return {
            "unit": self.unit,
            "method": self.method,
            "detected": bool(self.detected),
            "quanta_analyzed": int(self.quanta_analyzed),
            "max_likelihood_ratio": (
                None
                if self.max_likelihood_ratio is None
                else float(self.max_likelihood_ratio)
            ),
            "recurrent": None if self.recurrent is None else bool(self.recurrent),
            "burst_window_fraction": (
                None
                if self.burst_window_fraction is None
                else float(self.burst_window_fraction)
            ),
            "oscillating_windows": (
                None
                if self.oscillating_windows is None
                else int(self.oscillating_windows)
            ),
            "max_peak": None if self.max_peak is None else float(self.max_peak),
            "dominant_period": (
                None
                if self.dominant_period is None
                else float(self.dominant_period)
            ),
            "notes": list(self.notes),
            "health": self.health,
        }

    def to_json(self) -> str:
        """Strict versioned JSON (``repro.pipeline.verdict/v1``)."""
        from repro.pipeline.codec import verdict_to_json

        return verdict_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "UnitVerdict":
        """Decode :meth:`to_json` output; unknown fields are rejected."""
        from repro.pipeline.codec import verdict_from_json

        return verdict_from_json(text)

    def summary(self) -> str:
        flag = "COVERT TIMING CHANNEL LIKELY" if self.detected else "clear"
        parts = [f"[{self.unit}] {flag} ({self.method} method, "
                 f"{self.quanta_analyzed} quanta)"]
        if self.health != "ok":
            parts.append(f"  health: {self.health.upper()}")
        if self.method == "burst":
            lr = (
                f"{self.max_likelihood_ratio:.3f}"
                if self.max_likelihood_ratio is not None
                else "n/a"
            )
            parts.append(
                f"  likelihood ratio {lr}, recurrent={self.recurrent}, "
                f"burst windows {100 * (self.burst_window_fraction or 0):.1f}%"
            )
        else:
            peak = f"{self.max_peak:.3f}" if self.max_peak is not None else "n/a"
            period = (
                f"{self.dominant_period:.0f}"
                if self.dominant_period
                else "n/a"
            )
            parts.append(
                f"  oscillating windows {self.oscillating_windows}, "
                f"max peak {peak}, period ~{period} events"
            )
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


@dataclass(frozen=True)
class DetectionReport:
    """All verdicts from one CC-Hunter monitoring session."""

    verdicts: Tuple[UnitVerdict, ...]

    @property
    def any_detected(self) -> bool:
        return any(v.detected for v in self.verdicts)

    @property
    def health(self) -> str:
        """Worst per-unit health across the report ("ok" when empty)."""
        order = {"ok": 0, "degraded": 1, "failed": 2}
        return max(
            (v.health for v in self.verdicts),
            key=lambda h: order.get(h, 2),
            default="ok",
        )

    def verdict_for(self, unit: str) -> UnitVerdict:
        for v in self.verdicts:
            if v.unit == unit:
                return v
        raise KeyError(f"no verdict for unit {unit!r}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of every verdict."""
        return {
            "any_detected": bool(self.any_detected),
            "health": self.health,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        if not self.verdicts:
            return "CC-Hunter: no units were audited."
        lines = ["CC-Hunter detection report", "=" * 27]
        for v in self.verdicts:
            lines.append(v.summary())
        lines.append(
            "overall: "
            + ("covert timing channel activity detected"
               if self.any_detected
               else "no covert timing channel activity detected")
        )
        if self.health != "ok":
            lines.append(
                f"pipeline health: {self.health.upper()} — see per-unit "
                "notes; evidence may be incomplete"
            )
        return "\n".join(lines)
