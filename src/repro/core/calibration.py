"""Δt calibration: deriving α from achievable channel bandwidths.

Section IV-B step 1 defines Δt as ``α x (1 / average event rate)``, with
α "an empirical constant determined using the maximum and minimum
achievable covert timing channel bandwidth rates on a given shared
hardware". This module implements that determination:

- the *fastest* achievable channel bounds the burst event rate: Δt must
  be wide enough that a reliable burst fills a window well past the
  benign Poisson regime (otherwise densities degenerate to 0/1 counts);
- the *slowest* feasible channel bounds the observation granularity: Δt
  must stay well below a bit's conflict cluster so bursts are not
  averaged together with dormancy into a normal-looking blur.

The resulting α places Δt between those regimes. With the reproduction's
channel parameters the calibration recovers the paper's Δt values
(100 000 cycles for the bus, 500 for the divider) to within their order
of magnitude, and :func:`assess_delta_t` classifies a candidate Δt into
the Poisson / usable / normal regimes using the index of dispersion of
the observed densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.core.density import choose_delta_t
from repro.errors import DetectionError
from repro.util.stats import index_of_dispersion, sample_counts_to_histogram


@dataclass(frozen=True)
class AlphaCalibration:
    """Outcome of the paper's α determination for one hardware unit."""

    unit: str
    #: Event rate (events/cycle) a saturating burst sustains on this unit.
    burst_event_rate: float
    #: Shortest conflict cluster a feasible channel emits (cycles).
    min_cluster_cycles: int
    #: Target events per Δt window for the burst mode (keeps the second
    #: distribution far from the Poisson head).
    target_burst_density: float
    alpha: float
    delta_t: int

    def summary(self) -> str:
        return (
            f"{self.unit}: burst rate {self.burst_event_rate:.2e} ev/cycle, "
            f"alpha {self.alpha:.3g} -> Δt = {self.delta_t} cycles"
        )


def calibrate_alpha(
    unit: str,
    burst_event_rate: float,
    min_cluster_cycles: int,
    mean_event_rate: float,
    target_burst_density: float = 20.0,
) -> AlphaCalibration:
    """Derive α (and Δt) for a hardware unit.

    ``burst_event_rate`` is the indicator-event rate while the fastest
    channel contends (e.g. one bus lock per 5 000 cycles); a reliable
    burst should fill a window with ``target_burst_density`` events, so
    the window must span ``target / burst_rate`` cycles. That window must
    also fit inside the slowest feasible channel's conflict clusters
    (``min_cluster_cycles``), or bursts would blur into dormancy. α is
    then the window expressed in units of the *mean* inter-event interval
    (the paper's formulation).
    """
    if burst_event_rate <= 0 or mean_event_rate <= 0:
        raise DetectionError("event rates must be positive")
    if min_cluster_cycles <= 0:
        raise DetectionError("cluster length must be positive")
    if target_burst_density <= 1:
        raise DetectionError("target burst density must exceed 1 event")
    window = target_burst_density / burst_event_rate
    window = min(window, float(min_cluster_cycles))
    alpha = window * mean_event_rate
    delta_t = choose_delta_t(mean_event_rate, alpha)
    return AlphaCalibration(
        unit=unit,
        burst_event_rate=burst_event_rate,
        min_cluster_cycles=min_cluster_cycles,
        target_burst_density=target_burst_density,
        alpha=alpha,
        delta_t=delta_t,
    )


class DeltaTRegime(Enum):
    """Which statistical regime a candidate Δt puts densities into."""

    POISSON = "too small: densities are a Poisson 0/1 head"
    USABLE = "usable: burst mode separates from the head"
    NORMAL = "too large: densities blur toward a normal distribution"


def assess_delta_t(
    event_times: Sequence[int],
    dt: int,
    t0: int,
    t1: int,
    burst_mean_threshold: float = 3.0,
    dispersion_threshold: float = 2.0,
) -> DeltaTRegime:
    """Classify a candidate Δt against an observed event train.

    - typical non-empty windows hold fewer than ``burst_mean_threshold``
      events (the 95th percentile of non-zero densities) -> POISSON
      (Δt too small to expose bursts as a separate mode);
    - index of dispersion below ``dispersion_threshold`` -> NORMAL
      (Δt so wide that bursts and dormancy average out into similar
      counts everywhere);
    - otherwise USABLE.
    """
    if dt <= 0 or t1 <= t0:
        raise DetectionError("need a positive Δt and a non-empty window")
    times = np.asarray(event_times, dtype=np.int64)
    times = times[(times >= t0) & (times < t1)]
    n_windows = -(-(t1 - t0) // dt)
    counts = np.bincount((times - t0) // dt, minlength=n_windows)
    nonzero = counts[counts > 0]
    if nonzero.size == 0 or np.percentile(nonzero, 95) < burst_mean_threshold:
        return DeltaTRegime.POISSON
    hist = sample_counts_to_histogram(counts, 128)
    if index_of_dispersion(hist) < dispersion_threshold:
        return DeltaTRegime.NORMAL
    return DeltaTRegime.USABLE


def paper_bus_calibration() -> AlphaCalibration:
    """The bus channel's calibration with this reproduction's parameters.

    One lock per 5 000 cycles while contending; the slowest feasible
    channel (0.1 bps per TCSEC) still clusters >= 100 M cycles of
    contention per bit; mean rate measured over a typical covert
    transmission is within a small factor of the burst rate.
    """
    return calibrate_alpha(
        unit="membus",
        burst_event_rate=1 / 5_000,
        min_cluster_cycles=100_000_000,
        mean_event_rate=1 / 5_000,
    )


def paper_divider_calibration() -> AlphaCalibration:
    """The divider channel's calibration (one wait per ~5.2 cycles).

    The divider's burst density target is higher (the unit fires events
    two orders of magnitude faster), giving the paper's ~500-cycle Δt
    with the observed ~96-event burst mode.
    """
    return calibrate_alpha(
        unit="divider",
        burst_event_rate=1 / 5.2,
        min_cluster_cycles=100_000_000,
        mean_event_rate=1 / 5.2,
        target_burst_density=96.0,
    )
