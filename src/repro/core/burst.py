"""Burst-pattern analysis of event-density histograms (Section IV-B, 3-4).

Step 3 locates the *threshold density*: scanning the histogram left to
right, the first bin that is smaller than its predecessor and no larger
than its successor; if no such valley exists, the point where the slope of
a fitted (smoothed) curve becomes gentle. Everything at or beyond the
threshold is the candidate *burst distribution*.

Step 4 scores the burst distribution with the likelihood ratio — the
number of samples in the burst distribution divided by the total samples,
with bin 0 excluded (zero-density windows carry no contention). Real
covert channels measure ≥ 0.9 even at 0.1 bps; benign programs stay below
0.5, which the paper adopts as the conservative detection threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config import LIKELIHOOD_RATIO_THRESHOLD
from repro.errors import DetectionError
from repro.util.stats import histogram_mean


def _moving_average(values: np.ndarray, width: int = 3) -> np.ndarray:
    if values.size < width:
        return values.astype(np.float64)
    kernel = np.ones(width) / width
    return np.convolve(values.astype(np.float64), kernel, mode="same")


def find_threshold_bin(
    hist: np.ndarray, gentle_fraction: float = 0.05
) -> Optional[int]:
    """The paper's threshold-density rule.

    Primary rule: the first bin ``i >= 1`` with ``hist[i] < hist[i-1]`` and
    ``hist[i] <= hist[i+1]``. Fallback: the first bin where the absolute
    slope of the smoothed histogram falls below ``gentle_fraction`` of its
    maximum (the "slope of the fitted curve becomes gentle" case, which
    handles monotonically decaying histograms). Returns None for
    histograms with fewer than three bins of support.
    """
    arr = np.asarray(hist, dtype=np.float64)
    if arr.size < 3:
        return None
    inner = arr[1:-1]
    valleys = np.nonzero((inner < arr[:-2]) & (inner <= arr[2:]))[0]
    if valleys.size:
        return int(valleys[0]) + 1
    smooth = _moving_average(arr)
    slopes = np.abs(np.diff(smooth))
    max_slope = slopes.max()
    if max_slope == 0:
        return None
    gentle = np.nonzero(slopes[1:] <= gentle_fraction * max_slope)[0]
    if gentle.size:
        return int(gentle[0]) + 1
    return None


def likelihood_ratio(hist: np.ndarray, threshold_bin: int) -> float:
    """Samples at/above the threshold bin over all samples, excluding bin 0.

    Bin 0 is omitted because zero-event windows do not contribute to any
    contention (footnote 3 of the paper).
    """
    arr = np.asarray(hist, dtype=np.float64)
    if not 1 <= threshold_bin < arr.size:
        raise DetectionError(
            f"threshold bin {threshold_bin} outside 1..{arr.size - 1}"
        )
    population = arr[1:].sum()
    if population == 0:
        return 0.0
    return float(arr[threshold_bin:].sum() / population)


@dataclass(frozen=True)
class BurstAnalysis:
    """Outcome of burst-pattern analysis on one density histogram."""

    hist: np.ndarray
    threshold_bin: Optional[int]
    likelihood_ratio: float
    nonburst_mean: float
    burst_mean: float
    #: Burst structure present: a second distribution exists to the right of
    #: the threshold with mean density above 1 event per Δt.
    has_bursts: bool
    #: Burst structure is *significant*: has_bursts and the likelihood ratio
    #: clears the detection threshold (0.5).
    significant: bool

    @property
    def burst_sample_count(self) -> int:
        if self.threshold_bin is None:
            return 0
        return int(self.hist[self.threshold_bin:].sum())


class StreamingBurstEstimator:
    """Running aggregate of per-window density histograms.

    Folding one histogram in is O(n_bins); :meth:`analysis` re-derives
    steps 3-4 from the aggregate alone, also O(n_bins) — bounded work per
    quantum, with a result identical to running :func:`analyze_histogram`
    on the sum of every histogram seen so far.
    """

    def __init__(
        self,
        n_bins: int = 128,
        lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
    ):
        self.lr_threshold = lr_threshold
        self._agg = np.zeros(n_bins, dtype=np.int64)
        self.windows = 0
        self._cached: Optional[BurstAnalysis] = None

    @property
    def aggregate(self) -> np.ndarray:
        return self._agg.copy()

    def update(self, hist: np.ndarray) -> "StreamingBurstEstimator":
        arr = np.asarray(hist, dtype=np.int64)
        if arr.shape != self._agg.shape:
            raise DetectionError(
                f"histogram shape {arr.shape} does not match {self._agg.shape}"
            )
        self._agg += arr
        self.windows += 1
        self._cached = None
        return self

    def update_batch(
        self, hists: "Sequence[np.ndarray]"
    ) -> "StreamingBurstEstimator":
        """Fold a sequence of histograms in one summed pass.

        Integer addition is exact and order-free, so the aggregate is
        identical to calling :meth:`update` once per histogram.
        """
        stack = [np.asarray(h, dtype=np.int64) for h in hists]
        if not stack:
            return self
        for arr in stack:
            if arr.shape != self._agg.shape:
                raise DetectionError(
                    f"histogram shape {arr.shape} does not match "
                    f"{self._agg.shape}"
                )
        self._agg += np.sum(stack, axis=0)
        self.windows += len(stack)
        self._cached = None
        return self

    def analysis(self) -> BurstAnalysis:
        if self._cached is None:
            self._cached = analyze_histogram(self._agg, self.lr_threshold)
        return self._cached


def analyze_histogram(
    hist: np.ndarray,
    lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
) -> BurstAnalysis:
    """Run steps 3-4 on a density histogram.

    Splits the histogram at the threshold density, computes the likelihood
    ratio of the burst (right) distribution, and checks the paper's
    two-distribution condition: non-burst mean below 1.0, burst mean above
    1.0 events per Δt.
    """
    arr = np.asarray(hist, dtype=np.int64)
    if arr.size < 3:
        raise DetectionError(
            f"density histogram needs at least 3 bins, got {arr.size}"
        )
    if arr.min() < 0:
        raise DetectionError("histogram frequencies cannot be negative")
    threshold = find_threshold_bin(arr)
    if threshold is None:
        return BurstAnalysis(
            hist=arr,
            threshold_bin=None,
            likelihood_ratio=0.0,
            nonburst_mean=histogram_mean(arr),
            burst_mean=0.0,
            has_bursts=False,
            significant=False,
        )
    nonburst = arr.copy()
    nonburst[threshold:] = 0
    burst = arr.copy()
    burst[:threshold] = 0
    nonburst_mean = histogram_mean(nonburst)
    burst_mean = histogram_mean(burst)
    lr = likelihood_ratio(arr, threshold)
    has_bursts = burst.sum() > 0 and burst_mean > 1.0 and nonburst_mean < 1.0
    return BurstAnalysis(
        hist=arr,
        threshold_bin=threshold,
        likelihood_ratio=lr,
        nonburst_mean=nonburst_mean,
        burst_mean=burst_mean,
        has_bursts=has_bursts,
        significant=bool(has_bursts and lr >= lr_threshold),
    )
