"""Δt selection and event-density histograms (Section IV-B, steps 1-2).

Step 1 picks the observation interval Δt as ``α × (1 / average event
rate)``: wide enough that benign densities do not degenerate to a Poisson
spike at 0/1, narrow enough that they do not blur into a normal
distribution. The paper's calibrated values are 100 000 cycles for the
memory bus and 500 cycles for the integer divider; those are this module's
defaults, with the α rule available for other resources.

Step 2 counts events per Δt window and histograms the counts into the
CC-auditor's 128-entry buffer format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.config import DIVIDER_DELTA_T_CYCLES, MEMBUS_DELTA_T_CYCLES
from repro.errors import DetectionError
from repro.util.dtypes import ensure_int64
from repro.util.stats import sample_counts_to_histogram


class DensitySource(Protocol):
    """Anything that can report event counts per Δt window.

    Satisfied by :class:`~repro.core.event_train.EventTrain`, by the sim's
    sparse :class:`~repro.sim.events.EventTap`, and by the dense
    :class:`~repro.sim.events.RateSegmentTap`.
    """

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray: ...


def choose_delta_t(
    mean_rate_per_cycle: float,
    alpha: float,
    min_dt: int = 16,
    max_dt: int = 10_000_000,
) -> int:
    """Pick Δt = α / mean event rate, clamped to a sane cycle range.

    ``alpha`` is the empirical per-resource constant the paper derives from
    the maximum and minimum achievable channel bandwidths on that hardware;
    it tempers Δt away from the Poisson (too small) and normal (too large)
    regimes.
    """
    if mean_rate_per_cycle <= 0:
        raise DetectionError(
            f"mean event rate must be positive, got {mean_rate_per_cycle}"
        )
    if alpha <= 0:
        raise DetectionError(f"alpha must be positive, got {alpha}")
    dt = int(round(alpha / mean_rate_per_cycle))
    return max(min_dt, min(dt, max_dt))


@dataclass(frozen=True)
class DensityHistogram:
    """An event-density histogram over one observation window.

    ``hist[d]`` = number of Δt windows containing ``d`` events (d clamps at
    the last bin). This is exactly the content of one CC-auditor histogram
    buffer at an OS-quantum boundary.
    """

    hist: np.ndarray
    dt: int
    window_start: int
    window_end: int

    @property
    def n_windows(self) -> int:
        return int(self.hist.sum())

    @property
    def total_events_lower_bound(self) -> int:
        """Events implied by the histogram (clamped bins undercount)."""
        return int((self.hist * np.arange(self.hist.size)).sum())

    def nonzero_bins(self) -> np.ndarray:
        """Density values that occurred at least once."""
        return np.nonzero(self.hist)[0]

    def merged_with(self, other: "DensityHistogram") -> "DensityHistogram":
        """Combine two histograms of the same Δt (adjacent windows)."""
        if other.dt != self.dt:
            raise DetectionError(
                f"cannot merge histograms with Δt {self.dt} and {other.dt}"
            )
        if other.hist.size != self.hist.size:
            raise DetectionError("cannot merge histograms with different bins")
        return DensityHistogram(
            hist=self.hist + other.hist,
            dt=self.dt,
            window_start=min(self.window_start, other.window_start),
            window_end=max(self.window_end, other.window_end),
        )


def build_density_histogram(
    source: DensitySource,
    dt: int,
    t0: int,
    t1: int,
    n_bins: int = 128,
) -> DensityHistogram:
    """Histogram the event density of ``source`` over ``[t0, t1)``."""
    if t1 <= t0:
        raise DetectionError(f"empty observation window [{t0}, {t1})")
    counts = source.density_counts(dt, t0, t1)
    hist = sample_counts_to_histogram(counts, n_bins)
    return DensityHistogram(hist=hist, dt=dt, window_start=t0, window_end=t1)


class StreamingDensityHistogram:
    """Incremental density-histogram accumulation with bounded memory.

    The streaming counterpart of :func:`build_density_histogram` and of
    the CC-auditor's :class:`~repro.hardware.auditor.MonitorSlot`: event
    counts (or raw timestamps) arrive in arbitrary chunks and are folded
    straight into a fixed-size histogram. State is the histogram plus a
    single partial-window accumulator, so memory is O(n_bins) regardless
    of stream length, and the result is numerically identical to
    histogramming the whole window sequence at once.

    ``count_clamp`` / ``entry_max`` model the auditor's saturating
    accumulator and 16-bit histogram entries; ``None`` disables them.
    The ``ingest_window_counts`` / ``read_and_reset`` method pair matches
    ``MonitorSlot``, so either can back a pipeline burst analyzer.
    """

    def __init__(
        self,
        dt: int,
        n_bins: int = 128,
        origin: int = 0,
        count_clamp: Optional[int] = None,
        entry_max: Optional[int] = None,
    ):
        if dt <= 0:
            raise DetectionError(f"Δt must be positive, got {dt}")
        if n_bins < 1:
            raise DetectionError(f"need at least 1 bin, got {n_bins}")
        self.dt = int(dt)
        self.n_bins = int(n_bins)
        self.count_clamp = count_clamp
        self.entry_max = entry_max
        self._hist = np.zeros(self.n_bins, dtype=np.int64)
        self._pending = 0
        self._cursor = int(origin)
        self._window_start = int(origin)
        self.windows_recorded = 0
        self.events_seen = 0
        #: Windows whose raw count exceeded ``count_clamp`` (cumulative,
        #: never reset — the auditor-fidelity signal operators watch).
        self.clamp_events = 0
        #: Histogram entries that hit ``entry_max`` saturation (cumulative).
        self.entry_saturations = 0

    def _fold(self, counts: np.ndarray) -> None:
        if self.count_clamp is not None:
            over = counts > self.count_clamp
            if over.any():
                self.clamp_events += int(over.sum())
                counts = np.minimum(counts, self.count_clamp)
        bins = np.minimum(counts, self.n_bins - 1)
        self._hist += np.bincount(bins, minlength=self.n_bins)
        if self.entry_max is not None:
            over_entries = self._hist > self.entry_max
            if over_entries.any():
                self.entry_saturations += int(over_entries.sum())
                np.minimum(self._hist, self.entry_max, out=self._hist)
        self.windows_recorded += int(counts.size)

    def ingest_window_counts(self, counts: np.ndarray) -> None:
        """Fold per-Δt-window event counts (whole windows) into the histogram.

        This is the vectorized batch kernel of the estimator (one
        ``bincount`` folds any number of windows); float columns are
        rejected loudly rather than silently truncated.
        """
        arr = ensure_int64(counts, "window counts").ravel()
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise DetectionError("window counts cannot be negative")
        if self._pending:
            raise DetectionError(
                "cannot ingest whole-window counts while a timestamp window "
                "is open; call flush() first"
            )
        self.events_seen += int(arr.sum())
        self._fold(arr)
        self._cursor += arr.size * self.dt
        self._window_start = self._cursor

    push_counts = ingest_window_counts
    #: Batch kernel alias, matching the other streaming estimators.
    push_batch = ingest_window_counts

    def push(self, count: int) -> None:
        """Per-window adapter over :meth:`push_batch` (one window's count)."""
        self.ingest_window_counts(np.array([count]))

    def push_times(self, times: np.ndarray, up_to: int) -> None:
        """Consume event timestamps covering ``[cursor, up_to)``.

        ``times`` is any (sorted or not) chunk of event times in that
        range; windows whose end falls at or before ``up_to`` are closed
        into the histogram, and the trailing partial window is carried as
        a single pending count for the next chunk.
        """
        up_to = int(up_to)
        if up_to < self._cursor:
            raise DetectionError(
                f"stream cursor already at {self._cursor}, cannot rewind to {up_to}"
            )
        t = ensure_int64(times, "event timestamps").ravel()
        if t.size and (t.min() < self._window_start or t.max() >= up_to):
            raise DetectionError(
                f"timestamps outside the open range [{self._window_start}, {up_to})"
            )
        n_complete = (up_to - self._window_start) // self.dt
        counts = np.bincount(
            (t - self._window_start) // self.dt, minlength=n_complete + 1
        )
        counts[0] += self._pending
        self.events_seen += int(t.size)
        if n_complete:
            self._fold(counts[:n_complete])
        self._pending = int(counts[n_complete:].sum())
        self._window_start += n_complete * self.dt
        self._cursor = up_to

    def flush(self) -> None:
        """Close the open partial window, if one has started accruing."""
        if self._cursor > self._window_start:
            self._fold(np.array([self._pending], dtype=np.int64))
            self._pending = 0
            self._window_start = self._cursor

    def histogram(self) -> np.ndarray:
        """A copy of the current histogram (closed windows only)."""
        return self._hist.copy()

    def read_and_reset(self) -> np.ndarray:
        """Atomically read the histogram and clear it (quantum boundary)."""
        hist = self._hist.copy()
        self._hist[:] = 0
        return hist


def default_delta_t(unit: str) -> int:
    """The paper's calibrated Δt for a named unit.

    The multiplier (the paper's cited Wang & Lee variant) fires wait
    events at half the divider's saturation rate in this model, so its
    default Δt doubles to keep the burst mode at a comparable bin.
    """
    table = {
        "membus": MEMBUS_DELTA_T_CYCLES,
        "divider": DIVIDER_DELTA_T_CYCLES,
        "multiplier": 2 * DIVIDER_DELTA_T_CYCLES,
    }
    if unit not in table:
        raise DetectionError(
            f"no default Δt for unit {unit!r}; choose from {sorted(table)} "
            "or call choose_delta_t with a measured rate"
        )
    return table[unit]
