"""Autocorrelation of event trains (Section IV-D).

Given measurements ``X_1 .. X_N``, the autocorrelation coefficient at lag
``p`` with mean ``X̄`` is::

    r_p = sum_{i=1}^{n-p} (X_i - X̄)(X_{i+p} - X̄) / sum_{i=1}^{n} (X_i - X̄)^2

``r_1`` alone detects non-randomness; an *autocorrelogram* (r_p over a lag
range) reveals periodicity: a cache covert channel's conflict-miss
identifier sequence repeats with a wavelength near the number of cache
sets used for transmission, producing high peaks at that lag and its
multiples.

The full correlogram is computed with an FFT-based convolution, which is
exactly the paper's estimator (the same sums, evaluated in O(n log n)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError


def autocorrelation(x: np.ndarray, lag: int) -> float:
    """The paper's r_p at a single lag. O(n); use autocorrelogram for sweeps."""
    arr = np.asarray(x, dtype=np.float64)
    n = arr.size
    if n < 2:
        raise DetectionError("autocorrelation needs at least 2 samples")
    if not 0 <= lag < n:
        raise DetectionError(f"lag {lag} outside 0..{n - 1}")
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        # A constant series: perfectly self-similar at every lag.
        return 1.0
    if lag == 0:
        return 1.0
    num = float(np.dot(centered[: n - lag], centered[lag:]))
    return num / denom


def autocorrelogram(x: np.ndarray, max_lag: int) -> np.ndarray:
    """r_p for p = 0 .. max_lag (inclusive), as a float array.

    ``max_lag`` is clipped to ``len(x) - 1``. For a constant series the
    correlogram is all ones (see :func:`autocorrelation`).
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.size
    if n < 2:
        raise DetectionError("autocorrelogram needs at least 2 samples")
    if max_lag < 0:
        raise DetectionError(f"max_lag must be non-negative, got {max_lag}")
    max_lag = min(max_lag, n - 1)
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return np.ones(max_lag + 1, dtype=np.float64)
    # FFT-based autocovariance: pad to avoid circular wrap-around.
    size = 1
    while size < 2 * n:
        size <<= 1
    spectrum = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[: max_lag + 1]
    return acov / denom


class RunningAutocorrelogram:
    """Incrementally maintained autocorrelogram (running-sums estimator).

    The streaming counterpart of :func:`autocorrelogram`: the series
    arrives in arbitrary chunks and only *running sums* are kept — Σx,
    the lagged cross products ``C_p = Σ_i x_i · x_{i-p}``, and the first
    and last ``max_lag`` values (for the end-correction terms of the
    paper's r_p). Appending ``m`` values costs one C-level sliding
    correlation — O(max_lag · m) however the series is chunked,
    independent of how long it already is; ``correlogram()`` reads the
    current r_0..r_max_lag in
    O(max_lag). Memory is O(max_lag) no matter how many events stream in.

    For integer-valued series (the detector's 0/1 identifier trains)
    every running sum is exact, so the result matches the batch FFT
    estimator to floating-point round-off; the FFT path stays available
    as the batch cross-check.
    """

    def __init__(self, max_lag: int):
        if max_lag < 0:
            raise DetectionError(f"max_lag must be non-negative, got {max_lag}")
        self.max_lag = max_lag
        self._n = 0
        self._sum = 0.0
        #: cross[p] = Σ_{i > p} x_i · x_{i-p}; cross[0] = Σ x_i².
        self._cross = np.zeros(max_lag + 1, dtype=np.float64)
        self._head = np.zeros(0, dtype=np.float64)
        self._tail = np.zeros(0, dtype=np.float64)

    @property
    def n(self) -> int:
        """Number of samples consumed so far."""
        return self._n

    def _advance_window(self, y: np.ndarray, y_sum: float) -> None:
        """Slide the head/tail windows and running sums past chunk ``y``.

        The single shared implementation of the end-correction window
        bookkeeping: both :meth:`push` and :meth:`push_batch` delegate
        here after updating the cross products, so the two entry points
        cannot drift apart (the property tests additionally pin both to
        the O(n·lags) reference estimator).
        """
        m = y.size
        self._sum += y_sum
        self._n += m
        if self._head.size < self.max_lag:
            need = self.max_lag - self._head.size
            self._head = np.concatenate([self._head, y[:need]])
        if not self.max_lag:
            return
        t = self._tail.size
        if t == self.max_lag and m == 1:
            # Full tail, one sample: shift in place, no reallocation.
            self._tail[:-1] = self._tail[1:]
            self._tail[-1] = y[0]
            return
        z = np.concatenate([self._tail, y])
        self._tail = z[z.size - min(self._n, self.max_lag) :]

    def push(self, value: float) -> None:
        """Append a single sample.

        Thin adapter over the same state transitions as
        :meth:`push_batch`: for one sample the sliding correlation
        collapses to ``ΔC_p = v · tail[t − p]``, a single vector
        multiply-accumulate. Arithmetic is identical (the same products,
        added once), so results match ``push_batch([value])`` bit for
        bit; the window slide is shared code.
        """
        v = float(value)
        t = self._tail.size
        k = t if t < self.max_lag else self.max_lag
        self._cross[0] += v * v
        if k:
            self._cross[1 : k + 1] += v * self._tail[t - k :][::-1]
        self._advance_window(np.array([v], dtype=np.float64), v)

    def push_batch(self, values: np.ndarray) -> None:
        """Append a chunk of samples (order is the series order)."""
        y = np.asarray(values, dtype=np.float64).ravel()
        if y.size == 0:
            return
        m = y.size
        t = self._tail.size
        z = np.concatenate([self._tail, y])
        p_hi = min(self.max_lag, m - 1 + t)
        if m <= 4 * (self.max_lag + 1):
            # ΔC_p = Σ_j y[j] · z[t + j − p]: one sliding correlation
            # covers every lag at once. np.correlate(z, y, 'full')[k] =
            # Σ_j z[j + k − (m−1)] y[j], so lag p lives at index
            # k = m − 1 + t − p.
            c = np.correlate(z, y, mode="full")
            self._cross[: p_hi + 1] += c[m - 1 + t - p_hi : m + t][::-1]
        else:
            # Chunk much longer than the lag range: the full correlation
            # would cost O(m²); the max_lag + 1 needed lags cost O(m)
            # each as direct dot products (same products, same sums).
            for p in range(p_hi + 1):
                lo = p - t
                if lo <= 0:
                    self._cross[p] += np.dot(y, z[t - p : t - p + m])
                else:
                    self._cross[p] += np.dot(y[lo:], z[: m - lo])
        self._advance_window(y, float(y.sum()))

    #: Backwards-compatible name for the batch kernel.
    extend = push_batch

    def correlogram(self) -> np.ndarray:
        """Current r_p for p = 0 .. min(max_lag, n−1), as in the batch path.

        Expanding ``Σ (x_i − x̄)(x_{i+p} − x̄)`` gives
        ``C_p − x̄·(2Σx − head_p − tail_p) + (n−p)·x̄²`` where ``head_p`` /
        ``tail_p`` are the sums of the first/last ``p`` samples — all held
        as running state, so no sample replay is needed.
        """
        n = self._n
        if n < 2:
            raise DetectionError("autocorrelogram needs at least 2 samples")
        max_lag = min(self.max_lag, n - 1)
        mean = self._sum / n
        denom = float(self._cross[0]) - n * mean * mean
        if denom <= 0.0:
            # Constant series: perfectly self-similar at every lag.
            return np.ones(max_lag + 1, dtype=np.float64)
        p = np.arange(max_lag + 1)
        head_p = np.concatenate(([0.0], np.cumsum(self._head)))[p]
        tail_p = np.concatenate(([0.0], np.cumsum(self._tail[::-1])))[p]
        num = (
            self._cross[: max_lag + 1]
            - mean * (2.0 * self._sum - head_p - tail_p)
            + (n - p) * mean * mean
        )
        return num / denom


def dominant_lag(acf: np.ndarray, min_lag: int = 1) -> int:
    """Lag (>= min_lag) with the highest autocorrelation coefficient."""
    arr = np.asarray(acf, dtype=np.float64)
    if arr.size <= min_lag:
        raise DetectionError(
            f"correlogram of length {arr.size} has no lags >= {min_lag}"
        )
    return int(min_lag + np.argmax(arr[min_lag:]))
