"""Autocorrelation of event trains (Section IV-D).

Given measurements ``X_1 .. X_N``, the autocorrelation coefficient at lag
``p`` with mean ``X̄`` is::

    r_p = sum_{i=1}^{n-p} (X_i - X̄)(X_{i+p} - X̄) / sum_{i=1}^{n} (X_i - X̄)^2

``r_1`` alone detects non-randomness; an *autocorrelogram* (r_p over a lag
range) reveals periodicity: a cache covert channel's conflict-miss
identifier sequence repeats with a wavelength near the number of cache
sets used for transmission, producing high peaks at that lag and its
multiples.

The full correlogram is computed with an FFT-based convolution, which is
exactly the paper's estimator (the same sums, evaluated in O(n log n)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError


def autocorrelation(x: np.ndarray, lag: int) -> float:
    """The paper's r_p at a single lag. O(n); use autocorrelogram for sweeps."""
    arr = np.asarray(x, dtype=np.float64)
    n = arr.size
    if n < 2:
        raise DetectionError("autocorrelation needs at least 2 samples")
    if not 0 <= lag < n:
        raise DetectionError(f"lag {lag} outside 0..{n - 1}")
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        # A constant series: perfectly self-similar at every lag.
        return 1.0
    if lag == 0:
        return 1.0
    num = float(np.dot(centered[: n - lag], centered[lag:]))
    return num / denom


def autocorrelogram(x: np.ndarray, max_lag: int) -> np.ndarray:
    """r_p for p = 0 .. max_lag (inclusive), as a float array.

    ``max_lag`` is clipped to ``len(x) - 1``. For a constant series the
    correlogram is all ones (see :func:`autocorrelation`).
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.size
    if n < 2:
        raise DetectionError("autocorrelogram needs at least 2 samples")
    if max_lag < 0:
        raise DetectionError(f"max_lag must be non-negative, got {max_lag}")
    max_lag = min(max_lag, n - 1)
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return np.ones(max_lag + 1, dtype=np.float64)
    # FFT-based autocovariance: pad to avoid circular wrap-around.
    size = 1
    while size < 2 * n:
        size <<= 1
    spectrum = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[: max_lag + 1]
    return acov / denom


def dominant_lag(acf: np.ndarray, min_lag: int = 1) -> int:
    """Lag (>= min_lag) with the highest autocorrelation coefficient."""
    arr = np.asarray(acf, dtype=np.float64)
    if arr.size <= min_lag:
        raise DetectionError(
            f"correlogram of length {arr.size} has no lags >= {min_lag}"
        )
    return int(min_lag + np.argmax(arr[min_lag:]))
